//! Minimal datetime parsing/formatting for SQL literals.
//!
//! Timestamp literals in the paper's queries look like
//! `'2020-11-11 00:00:00'`. This module converts them to/from epoch
//! milliseconds (UTC) using Howard Hinnant's days-from-civil algorithm —
//! no external time crate needed.

use logstore_types::{Error, Result};

/// Days from 1970-01-01 to `y-m-d` (proleptic Gregorian, UTC).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = u64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + u64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = ((mp + 2) % 12 + 1) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parses `YYYY-MM-DD[ HH:MM:SS[.mmm]]` into epoch milliseconds (UTC).
pub fn parse_datetime(s: &str) -> Result<i64> {
    let bad = || Error::Parse(format!("invalid datetime literal '{s}'"));
    let (date, time) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dp = date.split('-');
    let y: i64 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let m: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if dp.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    let mut millis = days_from_civil(y, m, d) * 86_400_000;
    if let Some(t) = time {
        let (hms, frac) = match t.split_once('.') {
            Some((a, b)) => (a, Some(b)),
            None => (t, None),
        };
        let mut tp = hms.split(':');
        let h: i64 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let mi: i64 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let sec: i64 = tp.next().unwrap_or("0").parse().map_err(|_| bad())?;
        if tp.next().is_some()
            || !(0..24).contains(&h)
            || !(0..60).contains(&mi)
            || !(0..60).contains(&sec)
        {
            return Err(bad());
        }
        millis += ((h * 60 + mi) * 60 + sec) * 1000;
        if let Some(f) = frac {
            if f.is_empty() || f.len() > 3 || !f.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let scale = 10i64.pow(3 - f.len() as u32);
            millis += f.parse::<i64>().map_err(|_| bad())? * scale;
        }
    }
    Ok(millis)
}

/// Formats epoch milliseconds as `YYYY-MM-DD HH:MM:SS.mmm` (UTC).
pub fn format_datetime(millis: i64) -> String {
    let days = millis.div_euclid(86_400_000);
    let rem = millis.rem_euclid(86_400_000);
    let (y, m, d) = civil_from_days(days);
    let ms = rem % 1000;
    let secs = rem / 1000;
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}.{ms:03}",
        secs / 3600,
        secs / 60 % 60,
        secs % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_epochs() {
        assert_eq!(parse_datetime("1970-01-01").unwrap(), 0);
        assert_eq!(parse_datetime("1970-01-01 00:00:01").unwrap(), 1000);
        assert_eq!(parse_datetime("1970-01-02").unwrap(), 86_400_000);
        // 2020-11-11 00:00:00 UTC = 1605052800.
        assert_eq!(parse_datetime("2020-11-11 00:00:00").unwrap(), 1_605_052_800_000);
        assert_eq!(parse_datetime("2020-11-11 01:00:00.500").unwrap(), 1_605_056_400_500);
        // Pre-epoch.
        assert_eq!(parse_datetime("1969-12-31 23:59:59").unwrap(), -1000);
    }

    #[test]
    fn invalid_literals_rejected() {
        for s in [
            "",
            "2020",
            "2020-13-01",
            "2020-00-10",
            "2020-01-32",
            "2020-1-1-1",
            "2020-01-01 25:00:00",
            "2020-01-01 00:61:00",
            "2020-01-01 00:00:00.abcd",
            "2020-01-01 00:00:00.",
            "x-y-z",
        ] {
            assert!(parse_datetime(s).is_err(), "'{s}' should be rejected");
        }
    }

    #[test]
    fn format_roundtrip_examples() {
        assert_eq!(format_datetime(0), "1970-01-01 00:00:00.000");
        assert_eq!(format_datetime(1_605_052_800_000), "2020-11-11 00:00:00.000");
    }

    proptest! {
        #[test]
        fn prop_parse_format_roundtrip(ms in -4_000_000_000_000i64..8_000_000_000_000) {
            let s = format_datetime(ms);
            prop_assert_eq!(parse_datetime(&s).unwrap(), ms);
        }
    }
}
