//! The query layer: SQL parsing, scope analysis and execution.
//!
//! LogStore exposes a SQL protocol (paper Fig 3). The evaluation workload
//! is single-tenant log retrieval with per-field filters plus lightweight
//! aggregations ("which IP addresses frequently accessed this API in the
//! past day?"), so this crate implements exactly that dialect:
//!
//! ```sql
//! SELECT log FROM request_log
//! WHERE tenant_id = 12276
//!   AND ts >= '2020-11-11 00:00:00' AND ts <= '2020-11-11 01:00:00'
//!   AND ip = '192.168.0.1' AND latency >= 100 AND fail = false
//!   AND log CONTAINS 'timeout'
//! LIMIT 100
//! ```
//!
//! plus `SELECT <col>, COUNT(*) ... GROUP BY <col> ORDER BY COUNT(*) DESC
//! LIMIT k` for the BI-style queries.
//!
//! * [`lexer`] / [`parser`] — hand-written tokenizer and recursive-descent
//!   parser (no external parser dependencies).
//! * [`ast`] — the query representation handed to brokers.
//! * [`analyze`] — extracts the routing scope (tenant, time range) that
//!   drives LogBlock-map pruning (Fig 8 ①).
//! * [`exec`] — evaluation over LogBlocks (via the data-skipping scanner)
//!   and over real-time-store records, plus partial-result merging.
//! * [`plan`] — the physical [`plan::ScanPlan`]: aggregation pushdown into
//!   the scan layer (or the row-transport baseline), vectorized predicate
//!   batches, and the per-source `LIMIT` early-out.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod datetime;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use analyze::QueryScope;
pub use ast::{GroupKey, OrderBy, OrderKey, Query, SelectItem};
pub use exec::{QueryResult, QueryStats};
pub use parser::parse_query;
pub use plan::{partial_approx_bytes, AggSpec, ExecutionCounters, RowCollector, ScanPlan};
