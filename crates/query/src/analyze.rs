//! Query analysis: literal binding and routing-scope extraction.
//!
//! Two jobs happen before a query fans out:
//!
//! 1. **Binding** — literals are coerced to their column types against the
//!    table schema (datetime strings on the `ts` column become epoch
//!    millis, integer literals on unsigned columns become `U64`, ...).
//! 2. **Scope extraction** — the `tenant_id = N` equality and the `ts`
//!    bounds are lifted out, because they drive broker routing and the
//!    LogBlock-map pruning of Fig 8 ①.

use crate::ast::{GroupKey, Query, SelectItem};
use crate::datetime::parse_datetime;
use logstore_types::{
    CmpOp, DataType, Error, Result, TableSchema, TenantId, TimeRange, Timestamp, Value,
};

/// Coerces predicate literals to their column types. Fails on unknown
/// columns or impossible coercions.
pub fn bind(query: &Query, schema: &TableSchema) -> Result<Query> {
    let mut bound = query.clone();
    for p in &mut bound.predicates {
        let col = schema
            .column(&p.column)
            .ok_or_else(|| Error::Query(format!("unknown column '{}'", p.column)))?;
        p.value = coerce(&p.value, col.data_type, &p.column)?;
        if p.op == CmpOp::Contains && col.data_type != DataType::String {
            return Err(Error::Query(format!(
                "CONTAINS requires a string column, '{}' is {}",
                p.column, col.data_type
            )));
        }
    }
    // Projection and grouping columns must exist.
    for name in bound.projected_columns() {
        if schema.column(&name).is_none() {
            return Err(Error::Query(format!("unknown column '{name}'")));
        }
    }
    // Aggregate arguments must exist and fit the function.
    for (func, col) in bound.aggregate_items() {
        if let Some(col) = col {
            let c = schema
                .column(&col)
                .ok_or_else(|| Error::Query(format!("unknown column '{col}'")))?;
            if func.requires_numeric() && !c.data_type.is_numeric() {
                return Err(Error::Query(format!(
                    "{}({col}) requires a numeric column, '{col}' is {}",
                    func.name(),
                    c.data_type
                )));
            }
        }
    }
    if let Some(g) = &bound.group_by {
        let col = schema
            .column(g.column())
            .ok_or_else(|| Error::Query(format!("unknown column '{}'", g.column())))?;
        if let GroupKey::TimeBucket { column, width_ms } = g {
            if col.data_type != DataType::Int64 {
                return Err(Error::Query(format!(
                    "TIMEBUCKET requires an INT64 column, '{column}' is {}",
                    col.data_type
                )));
            }
            if *width_ms <= 0 {
                return Err(Error::Query("TIMEBUCKET width must be positive".into()));
            }
        }
    }
    // A projected TIMEBUCKET is only meaningful as the group key.
    for item in &bound.projection {
        if let SelectItem::TimeBucket { column, width_ms } = item {
            let matches_group = matches!(
                &bound.group_by,
                Some(GroupKey::TimeBucket { column: gc, width_ms: gw })
                    if gc == column && gw == width_ms
            );
            if !matches_group {
                return Err(Error::Query(
                    "TIMEBUCKET in the projection must match the GROUP BY time bucket".into(),
                ));
            }
        }
    }
    // Aggregation shape checks.
    match (&bound.group_by, bound.is_aggregate()) {
        (Some(_), false) => {
            return Err(Error::Query("GROUP BY requires COUNT(*) in the projection".into()))
        }
        (Some(g), true) => {
            let group_col_ok = |c: &String| matches!(g, GroupKey::Column(gc) if gc == c);
            if !bound.projected_columns().iter().all(group_col_ok) {
                return Err(Error::Query(
                    "grouped queries may only project the GROUP BY key and aggregates".into(),
                ));
            }
        }
        (None, true) => {
            if !bound.projected_columns().is_empty() {
                return Err(Error::Query(
                    "COUNT(*) without GROUP BY cannot project columns".into(),
                ));
            }
        }
        (None, false) => {}
    }
    Ok(bound)
}

fn coerce(value: &Value, target: DataType, column: &str) -> Result<Value> {
    let fail = || {
        Error::Query(format!(
            "literal {value} not compatible with column '{column}' of type {target}"
        ))
    };
    Ok(match (value, target) {
        (Value::Null, _) => Value::Null,
        (Value::I64(_), DataType::Int64) => value.clone(),
        (Value::U64(_), DataType::UInt64) => value.clone(),
        (Value::I64(v), DataType::UInt64) => {
            // Keep negative literals as-is: the scanner resolves them to
            // always-true/false range semantics on unsigned columns.
            if *v >= 0 {
                Value::U64(*v as u64)
            } else {
                value.clone()
            }
        }
        (Value::U64(v), DataType::Int64) => Value::I64(i64::try_from(*v).map_err(|_| fail())?),
        (Value::Str(s), DataType::Int64) => Value::I64(parse_datetime(s).map_err(|_| fail())?),
        (Value::Str(s), DataType::Bool) => match s.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => return Err(fail()),
        },
        (Value::Str(_), DataType::String) => value.clone(),
        (Value::Bool(_), DataType::Bool) => value.clone(),
        _ => return Err(fail()),
    })
}

/// The routing scope of a bound query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryScope {
    /// The single tenant targeted by `tenant_id = N`, if present.
    pub tenant: Option<TenantId>,
    /// The time window implied by the `ts` conjuncts.
    pub range: TimeRange,
    /// True when the `ts` bounds contradict each other (no row can match).
    pub contradictory: bool,
}

impl QueryScope {
    /// Extracts tenant and time bounds from a bound query's predicates.
    pub fn extract(query: &Query) -> QueryScope {
        let mut tenant = None;
        let mut start = Timestamp::MIN;
        let mut end = Timestamp::MAX;
        for p in &query.predicates {
            if p.column == "tenant_id" && p.op == CmpOp::Eq {
                if let Some(t) = p.value.as_u64() {
                    tenant = Some(TenantId(t));
                }
            }
            if p.column == "ts" {
                if let Some(ts) = p.value.as_i64() {
                    match p.op {
                        CmpOp::Ge => start = start.max(Timestamp(ts)),
                        CmpOp::Gt => start = start.max(Timestamp(ts.saturating_add(1))),
                        CmpOp::Le => end = end.min(Timestamp(ts)),
                        CmpOp::Lt => end = end.min(Timestamp(ts.saturating_sub(1))),
                        CmpOp::Eq => {
                            start = start.max(Timestamp(ts));
                            end = end.min(Timestamp(ts));
                        }
                        _ => {}
                    }
                }
            }
        }
        let contradictory = start > end;
        let range =
            if contradictory { TimeRange::new(start, start) } else { TimeRange::new(start, end) };
        QueryScope { tenant, range, contradictory }
    }

    /// True if no row can satisfy the `ts` bounds.
    pub fn is_empty_window(&self) -> bool {
        self.contradictory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn bound(sql: &str) -> Query {
        bind(&parse_query(sql).unwrap(), &TableSchema::request_log()).unwrap()
    }

    #[test]
    fn binds_datetime_and_unsigned_literals() {
        let q = bound(
            "SELECT log FROM request_log WHERE tenant_id = 7 \
             AND ts >= '1970-01-01 00:00:01' AND fail = 'true'",
        );
        assert_eq!(q.predicates[0].value, Value::U64(7));
        assert_eq!(q.predicates[1].value, Value::I64(1000));
        assert_eq!(q.predicates[2].value, Value::Bool(true));
    }

    #[test]
    fn rejects_unknown_columns_and_bad_coercions() {
        let schema = TableSchema::request_log();
        assert!(bind(&parse_query("SELECT ghost FROM t").unwrap(), &schema).is_err());
        assert!(bind(&parse_query("SELECT log FROM t WHERE ghost = 1").unwrap(), &schema).is_err());
        assert!(bind(
            &parse_query("SELECT log FROM t WHERE latency = 'not-a-date'").unwrap(),
            &schema
        )
        .is_err());
        assert!(bind(
            &parse_query("SELECT log FROM t WHERE latency CONTAINS 'x'").unwrap(),
            &schema
        )
        .is_err());
        assert!(bind(&parse_query("SELECT log FROM t GROUP BY ghost").unwrap(), &schema).is_err());
    }

    #[test]
    fn scope_extraction() {
        let q = bound(
            "SELECT log FROM request_log WHERE tenant_id = 42 \
             AND ts >= '1970-01-01 00:00:01' AND ts < '1970-01-01 00:00:02'",
        );
        let scope = QueryScope::extract(&q);
        assert_eq!(scope.tenant, Some(TenantId(42)));
        assert_eq!(scope.range.start, Timestamp(1000));
        assert_eq!(scope.range.end, Timestamp(1999));
        assert!(!scope.is_empty_window());
    }

    #[test]
    fn scope_without_tenant_or_ts() {
        let q = bound("SELECT log FROM request_log WHERE latency > 5");
        let scope = QueryScope::extract(&q);
        assert_eq!(scope.tenant, None);
        assert_eq!(scope.range, TimeRange::all());
    }

    #[test]
    fn contradictory_window_detected() {
        let q = bound("SELECT log FROM request_log WHERE ts > '1970-01-02' AND ts < '1970-01-01'");
        let scope = QueryScope::extract(&q);
        assert!(scope.is_empty_window());
    }

    #[test]
    fn time_bucket_validation() {
        // Valid: bucketed ts grouping projected alongside aggregates.
        bound(
            "SELECT TIMEBUCKET(ts, 60000), COUNT(*) FROM request_log \
             GROUP BY TIMEBUCKET(ts, 60000)",
        );
        let schema = TableSchema::request_log();
        // Bucket on a non-INT64 column.
        for sql in [
            "SELECT COUNT(*) FROM t GROUP BY TIMEBUCKET(ip, 1000)",
            "SELECT COUNT(*) FROM t GROUP BY TIMEBUCKET(tenant_id, 1000)",
            // Projected bucket must match the GROUP BY bucket.
            "SELECT TIMEBUCKET(ts, 1000), COUNT(*) FROM t GROUP BY TIMEBUCKET(ts, 2000)",
            "SELECT TIMEBUCKET(ts, 1000), COUNT(*) FROM t GROUP BY ip",
            "SELECT TIMEBUCKET(ts, 1000) FROM t",
            // Plain column projection under a bucketed group.
            "SELECT ts, COUNT(*) FROM t GROUP BY TIMEBUCKET(ts, 1000)",
        ] {
            assert!(bind(&parse_query(sql).unwrap(), &schema).is_err(), "'{sql}' should fail");
        }
    }

    #[test]
    fn negative_literal_on_unsigned_survives_binding() {
        let q = bound("SELECT log FROM request_log WHERE tenant_id >= -1");
        assert_eq!(q.predicates[0].value, Value::I64(-1));
    }
}
