//! Query execution: per-source collection, partial-result merging and
//! finalization.
//!
//! A LogStore query runs against several sources at once — the real-time
//! row store on each routed shard plus every pruned-in LogBlock on OSS.
//! Each source yields a [`Partial`]; the broker merges partials and
//! finalizes (ordering, limiting, header construction) once.
//!
//! Aggregation supports the paper's "lightweight BI" surface: `COUNT(*)`,
//! `COUNT/SUM/MIN/MAX/AVG(col)`, optionally per `GROUP BY` group, with
//! `ORDER BY COUNT(*)` top-k.

use crate::ast::{AggFunc, GroupKey, OrderKey, Query, SelectItem};
use logstore_logblock::pack::RangeSource;
use logstore_logblock::reader::LogBlockReader;
use logstore_logblock::scan::{evaluate_predicates, fetch_rows, ScanStats};
use logstore_types::{Error, Result, TableSchema, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// `Value` wrapper ordered by [`Value::total_cmp`], usable as a BTreeMap key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Accumulator for one aggregate item. One state tracks everything the five
/// functions need; `finalize` extracts the requested statistic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggState {
    /// Rows counted (non-null values for `FUNC(col)`, all rows for
    /// `COUNT(*)`).
    pub count: u64,
    /// Numeric sum (i128 so mixes of extreme i64/u64 cannot overflow).
    pub sum: i128,
    /// Smallest value seen.
    pub min: Option<OrdValue>,
    /// Largest value seen.
    pub max: Option<OrdValue>,
}

impl AggState {
    /// Folds one cell in. `None` means the item is `COUNT(*)` (row-counted).
    pub fn update(&mut self, cell: Option<&Value>) {
        let Some(v) = cell else {
            self.count += 1;
            return;
        };
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(n) = v.as_i64() {
            self.sum += i128::from(n);
        } else if let Some(n) = v.as_u64() {
            self.sum += i128::from(n);
        }
        let wrapped = OrdValue(v.clone());
        if self.min.as_ref().is_none_or(|m| wrapped < *m) {
            self.min = Some(wrapped.clone());
        }
        if self.max.as_ref().is_none_or(|m| wrapped > *m) {
            self.max = Some(wrapped);
        }
    }

    /// Merges a peer accumulator (cross-source combination).
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = &other.min {
            if self.min.as_ref().is_none_or(|cur| m < cur) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().is_none_or(|cur| m > cur) {
                self.max = Some(m.clone());
            }
        }
    }

    /// Extracts the requested statistic.
    pub fn finalize(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::U64(self.count),
            AggFunc::Sum => {
                Value::I64(self.sum.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64)
            }
            AggFunc::Min => self.min.clone().map_or(Value::Null, |v| v.0),
            AggFunc::Max => self.max.clone().map_or(Value::Null, |v| v.0),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::I64((self.sum / i128::from(self.count)) as i64)
                }
            }
        }
    }
}

/// A source's contribution to a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Partial {
    /// Non-aggregate: materialized rows in internal-column layout.
    Rows(Vec<Vec<Value>>),
    /// `GROUP BY g`: per-group accumulators, one per aggregate item.
    Groups(BTreeMap<OrdValue, Vec<AggState>>),
    /// Global aggregate (no GROUP BY): one accumulator per aggregate item.
    Agg(Vec<AggState>),
}

/// Execution counters aggregated across sources.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// Data-skipping scanner counters.
    pub scan: ScanStats,
    /// LogBlocks visited (after LogBlock-map pruning).
    pub blocks_visited: u64,
    /// Real-time rows scanned.
    pub realtime_rows_scanned: u64,
    /// Prefetch block fetches that failed (non-fatal: the scan falls back
    /// to demand reads; only demand-read failures abort a query).
    pub prefetch_errors: u64,
}

impl QueryStats {
    /// Accumulates another source's counters into this one. Every field is
    /// a sum, so merging is commutative — parallel scatter/gather merges
    /// per-source stats in any completion order and still reports exactly
    /// the totals a sequential run would.
    pub fn merge(&mut self, other: &QueryStats) {
        self.scan.merge(&other.scan);
        self.blocks_visited += other.blocks_visited;
        self.realtime_rows_scanned += other.realtime_rows_scanned;
        self.prefetch_errors += other.prefetch_errors;
    }
}

/// A finalized result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

/// The identity partial for a query's shape.
pub fn empty_partial(query: &Query) -> Partial {
    if query.is_aggregate() {
        if query.group_by.is_some() {
            Partial::Groups(BTreeMap::new())
        } else {
            Partial::Agg(vec![AggState::default(); query.aggregate_items().len()])
        }
    } else {
        Partial::Rows(Vec::new())
    }
}

/// The columns a source must materialize for a non-aggregate query:
/// expanded projection plus (if needed) the ORDER BY column appended at
/// the end. Returns `(names, order_col_extra)` where `order_col_extra`
/// flags that the last column exists only for sorting and is stripped at
/// finalize.
pub(crate) fn internal_columns(query: &Query, schema: &TableSchema) -> Result<(Vec<String>, bool)> {
    let mut cols: Vec<String> = Vec::new();
    for item in &query.projection {
        match item {
            SelectItem::AllColumns => cols.extend(schema.columns.iter().map(|c| c.name.clone())),
            SelectItem::Column(c) => cols.push(c.clone()),
            SelectItem::CountStar | SelectItem::Agg(..) | SelectItem::TimeBucket { .. } => {}
        }
    }
    let mut extra = false;
    if let Some(order) = &query.order_by {
        if let OrderKey::Column(c) = &order.key {
            if !cols.contains(c) {
                if schema.column(c).is_none() {
                    return Err(Error::Query(format!("unknown ORDER BY column '{c}'")));
                }
                cols.push(c.clone());
                extra = true;
            }
        }
    }
    Ok((cols, extra))
}

/// The distinct columns aggregation must read: group column first (if
/// any), then each aggregate argument. Returns `(column names,
/// per-agg-item index into the names, group key)`.
pub(crate) fn agg_columns(query: &Query) -> (Vec<String>, Vec<Option<usize>>, Option<GroupKey>) {
    let mut cols: Vec<String> = Vec::new();
    let mut push = |name: &str| -> usize {
        if let Some(i) = cols.iter().position(|c| c == name) {
            i
        } else {
            cols.push(name.to_string());
            cols.len() - 1
        }
    };
    let group = query.group_by.clone();
    if let Some(g) = &group {
        push(g.column());
    }
    let mut item_cols = Vec::new();
    for (_, col) in query.aggregate_items() {
        item_cols.push(col.as_deref().map(&mut push));
    }
    (cols, item_cols, group)
}

/// Maps a raw group-column value to its grouping key: identity for plain
/// `GROUP BY col`, bucket start (`v.div_euclid(w) * w`) for `TIMEBUCKET`.
/// NULL cells (and non-Int64 cells in a bucketed group) key the NULL group.
pub(crate) fn group_key_value(group: &GroupKey, v: &Value) -> Value {
    match group {
        GroupKey::Column(_) => v.clone(),
        GroupKey::TimeBucket { width_ms, .. } => match v {
            // `width_ms > 0` is enforced at parse/bind time; saturate the
            // (pathological, ts near i64::MIN) bucket-start overflow.
            Value::I64(ts) => Value::I64(ts.div_euclid(*width_ms).saturating_mul(*width_ms)),
            _ => Value::Null,
        },
    }
}

pub(crate) fn update_states(states: &mut [AggState], row: &[Value], item_cols: &[Option<usize>]) {
    for (state, col) in states.iter_mut().zip(item_cols) {
        state.update(col.map(|c| &row[c]));
    }
}

/// Collects a [`Partial`] from one LogBlock through the data-skipping
/// scanner (Fig 8).
pub fn collect_from_block<S: RangeSource>(
    reader: &LogBlockReader<S>,
    query: &Query,
    use_skipping: bool,
    stats: &mut QueryStats,
) -> Result<Partial> {
    stats.blocks_visited += 1;
    let ids = evaluate_predicates(reader, &query.predicates, use_skipping, &mut stats.scan)?;
    if query.is_aggregate() {
        let (cols, item_cols, group) = agg_columns(query);
        let n_items = item_cols.len();
        // Fast path: COUNT(*)-only queries need no column data at all.
        if cols.is_empty() {
            let state = AggState { count: u64::from(ids.count()), ..AggState::default() };
            return Ok(Partial::Agg(vec![state; n_items]));
        }
        let rows = if ids.is_empty() { Vec::new() } else { fetch_rows(reader, &ids, &cols)? };
        if let Some(group) = group {
            let mut groups: BTreeMap<OrdValue, Vec<AggState>> = BTreeMap::new();
            for row in rows {
                let states = groups
                    .entry(OrdValue(group_key_value(&group, &row[0])))
                    .or_insert_with(|| vec![AggState::default(); n_items]);
                update_states(states, &row, &item_cols);
            }
            Ok(Partial::Groups(groups))
        } else {
            let mut states = vec![AggState::default(); n_items];
            for row in rows {
                update_states(&mut states, &row, &item_cols);
            }
            Ok(Partial::Agg(states))
        }
    } else {
        let (cols, _) = internal_columns(query, reader.schema())?;
        if ids.is_empty() {
            return Ok(Partial::Rows(Vec::new()));
        }
        Ok(Partial::Rows(fetch_rows(reader, &ids, &cols)?))
    }
}

/// Collects a [`Partial`] from full positional rows (the real-time store
/// path — predicates are applied here, mirroring the block scanner).
pub fn collect_from_rows<'a>(
    rows: impl Iterator<Item = &'a [Value]>,
    schema: &TableSchema,
    query: &Query,
    stats: &mut QueryStats,
) -> Result<Partial> {
    let pred_cols: Vec<usize> = query
        .predicates
        .iter()
        .map(|p| {
            schema
                .column_index(&p.column)
                .ok_or_else(|| Error::Query(format!("unknown column '{}'", p.column)))
        })
        .collect::<Result<_>>()?;
    let (cols, _) = internal_columns(query, schema)?;
    let out_cols: Vec<usize> = cols
        .iter()
        .map(|c| {
            schema.column_index(c).ok_or_else(|| Error::Query(format!("unknown column '{c}'")))
        })
        .collect::<Result<_>>()?;
    // Aggregate plumbing against full positional rows.
    let group = query.group_by.clone();
    let agg_item_cols: Vec<Option<usize>> = query
        .aggregate_items()
        .iter()
        .map(|(_, col)| col.as_ref().and_then(|c| schema.column_index(c)))
        .collect();
    let group_idx =
        match &group {
            Some(g) => Some(schema.column_index(g.column()).ok_or_else(|| {
                Error::Query(format!("unknown GROUP BY column '{}'", g.column()))
            })?),
            None => None,
        };
    let n_items = agg_item_cols.len();

    let mut out_rows = Vec::new();
    let mut groups: BTreeMap<OrdValue, Vec<AggState>> = BTreeMap::new();
    let mut global = vec![AggState::default(); n_items];
    for row in rows {
        stats.realtime_rows_scanned += 1;
        let matches = query.predicates.iter().zip(&pred_cols).all(|(p, &c)| p.matches(&row[c]));
        if !matches {
            continue;
        }
        if query.is_aggregate() {
            if let (Some(group), Some(g)) = (&group, group_idx) {
                let states = groups
                    .entry(OrdValue(group_key_value(group, &row[g])))
                    .or_insert_with(|| vec![AggState::default(); n_items]);
                update_states(states, row, &agg_item_cols);
            } else {
                update_states(&mut global, row, &agg_item_cols);
            }
        } else {
            out_rows.push(out_cols.iter().map(|&c| row[c].clone()).collect());
        }
    }
    if query.is_aggregate() {
        if group.is_some() {
            Ok(Partial::Groups(groups))
        } else {
            Ok(Partial::Agg(global))
        }
    } else {
        Ok(Partial::Rows(out_rows))
    }
}

/// Merges partials from multiple sources. All partials must share the
/// query's shape.
pub fn merge_partials(partials: Vec<Partial>) -> Result<Partial> {
    let mut iter = partials.into_iter();
    let Some(mut acc) = iter.next() else {
        return Ok(Partial::Rows(Vec::new()));
    };
    for p in iter {
        match (&mut acc, p) {
            (Partial::Rows(a), Partial::Rows(b)) => a.extend(b),
            (Partial::Agg(a), Partial::Agg(b)) => {
                if a.len() != b.len() {
                    return Err(Error::Internal("aggregate arity mismatch".into()));
                }
                for (x, y) in a.iter_mut().zip(&b) {
                    x.merge(y);
                }
            }
            (Partial::Groups(a), Partial::Groups(b)) => {
                for (k, states) in b {
                    match a.entry(k) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(states);
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            for (x, y) in e.get_mut().iter_mut().zip(&states) {
                                x.merge(y);
                            }
                        }
                    }
                }
            }
            _ => return Err(Error::Internal("mismatched partial shapes".into())),
        }
    }
    Ok(acc)
}

/// Output header names in projection order.
fn output_columns(query: &Query, schema: &TableSchema) -> Vec<String> {
    let mut out = Vec::new();
    for item in &query.projection {
        match item {
            SelectItem::AllColumns => out.extend(schema.columns.iter().map(|c| c.name.clone())),
            SelectItem::Column(c) => out.push(c.clone()),
            SelectItem::CountStar => out.push("COUNT(*)".to_string()),
            SelectItem::Agg(func, c) => out.push(format!("{}({c})", func.name())),
            SelectItem::TimeBucket { column, width_ms } => {
                out.push(format!("TIMEBUCKET({column}, {width_ms})"))
            }
        }
    }
    out
}

/// Builds one output row from a group key + its finalized states following
/// the projection order.
fn project_agg_row(query: &Query, group_key: Option<&Value>, states: &[AggState]) -> Vec<Value> {
    let items = query.aggregate_items();
    let mut agg_idx = 0;
    let mut row = Vec::with_capacity(query.projection.len());
    for item in &query.projection {
        match item {
            SelectItem::Column(_) | SelectItem::AllColumns | SelectItem::TimeBucket { .. } => {
                // The group key is already bucket-transformed where needed.
                row.push(group_key.cloned().unwrap_or(Value::Null));
            }
            SelectItem::CountStar | SelectItem::Agg(..) => {
                let (func, _) = items[agg_idx];
                row.push(states[agg_idx].finalize(func));
                agg_idx += 1;
            }
        }
    }
    row
}

/// Finalizes a merged partial: ordering, limit, output header.
pub fn finalize(partial: Partial, query: &Query, schema: &TableSchema) -> Result<QueryResult> {
    match partial {
        Partial::Agg(states) => Ok(QueryResult {
            columns: output_columns(query, schema),
            rows: vec![project_agg_row(query, None, &states)],
        }),
        Partial::Groups(groups) => {
            let mut entries: Vec<(OrdValue, Vec<AggState>)> = groups.into_iter().collect();
            if let Some(order) = &query.order_by {
                match &order.key {
                    OrderKey::CountStar => {
                        let items = query.aggregate_items();
                        let count_idx = items
                            .iter()
                            .position(|(f, c)| *f == AggFunc::Count && c.is_none())
                            .ok_or_else(|| {
                                Error::Query(
                                    "ORDER BY COUNT(*) requires COUNT(*) in the projection".into(),
                                )
                            })?;
                        entries.sort_by_key(|(_, s)| s[count_idx].count);
                    }
                    OrderKey::Column(_) => {} // BTreeMap is already key-ordered
                }
                if order.descending {
                    entries.reverse();
                }
            }
            if let Some(limit) = query.limit {
                entries.truncate(limit);
            }
            Ok(QueryResult {
                columns: output_columns(query, schema),
                rows: entries
                    .into_iter()
                    .map(|(k, states)| project_agg_row(query, Some(&k.0), &states))
                    .collect(),
            })
        }
        Partial::Rows(mut rows) => {
            let (cols, extra) = internal_columns(query, schema)?;
            if let Some(order) = &query.order_by {
                if let OrderKey::Column(c) = &order.key {
                    let idx = cols
                        .iter()
                        .position(|x| x == c)
                        .ok_or_else(|| Error::Internal("order column missing".into()))?;
                    rows.sort_by(|a, b| a[idx].total_cmp(&b[idx]));
                    if order.descending {
                        rows.reverse();
                    }
                } else {
                    return Err(Error::Query("ORDER BY COUNT(*) without aggregation".into()));
                }
            }
            if let Some(limit) = query.limit {
                rows.truncate(limit);
            }
            let mut columns = cols;
            if extra {
                columns.pop();
                for row in &mut rows {
                    row.pop();
                }
            }
            Ok(QueryResult { columns, rows })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::bind;
    use crate::parser::parse_query;
    use logstore_logblock::builder::LogBlockBuilder;
    use logstore_types::TableSchema;

    fn schema() -> TableSchema {
        TableSchema::request_log()
    }

    fn make_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::U64(i as u64 % 2),
                    Value::I64(1000 + i as i64),
                    Value::from(format!("ip{}", i % 3)),
                    Value::from("/api"),
                    if i % 9 == 0 { Value::Null } else { Value::I64((i as i64 * 13) % 100) },
                    Value::Bool(i % 4 == 0),
                    Value::from(format!("line {i}")),
                ]
            })
            .collect()
    }

    fn block(n: usize) -> LogBlockReader<Vec<u8>> {
        let mut b =
            LogBlockBuilder::with_options(schema(), logstore_codec::Compression::LzHigh, 16);
        for row in make_rows(n) {
            b.add_row(&row).unwrap();
        }
        LogBlockReader::open(b.finish().unwrap()).unwrap()
    }

    fn q(sql: &str) -> Query {
        bind(&parse_query(sql).unwrap(), &schema()).unwrap()
    }

    fn run(sql: &str, n: usize) -> QueryResult {
        let query = q(sql);
        let mut stats = QueryStats::default();
        let p = collect_from_block(&block(n), &query, true, &mut stats).unwrap();
        finalize(p, &query, &schema()).unwrap()
    }

    /// Naive oracle over the raw rows for one aggregate function.
    fn oracle<'a>(rows: impl Iterator<Item = &'a Vec<Value>>, col: usize, func: AggFunc) -> Value {
        let mut state = AggState::default();
        for row in rows {
            state.update(Some(&row[col]));
        }
        state.finalize(func)
    }

    #[test]
    fn block_and_rows_paths_agree() {
        let query = q("SELECT log, latency FROM request_log WHERE tenant_id = 1 AND latency < 50");
        let mut s1 = QueryStats::default();
        let from_block = collect_from_block(&block(60), &query, true, &mut s1).unwrap();
        let rows = make_rows(60);
        let mut s2 = QueryStats::default();
        let from_rows =
            collect_from_rows(rows.iter().map(|r| r.as_slice()), &schema(), &query, &mut s2)
                .unwrap();
        assert_eq!(from_block, from_rows);
        let Partial::Rows(r) = from_block else { panic!() };
        assert!(!r.is_empty());
        assert_eq!(s2.realtime_rows_scanned, 60);
    }

    #[test]
    fn count_star_merges_across_sources() {
        let query = q("SELECT COUNT(*) FROM request_log WHERE fail = true");
        let mut stats = QueryStats::default();
        let p1 = collect_from_block(&block(40), &query, true, &mut stats).unwrap();
        let p2 = collect_from_block(&block(40), &query, true, &mut stats).unwrap();
        let merged = merge_partials(vec![p1, p2]).unwrap();
        let result = finalize(merged, &query, &schema()).unwrap();
        assert_eq!(result.columns, vec!["COUNT(*)"]);
        assert_eq!(result.rows[0][0], Value::U64(20)); // 10 per block of 40
    }

    #[test]
    fn sum_min_max_avg_match_oracle() {
        let rows = make_rows(80);
        let latency = 4;
        let result = run(
            "SELECT SUM(latency), MIN(latency), MAX(latency), AVG(latency), COUNT(latency) \
             FROM request_log",
            80,
        );
        assert_eq!(
            result.columns,
            vec!["SUM(latency)", "MIN(latency)", "MAX(latency)", "AVG(latency)", "COUNT(latency)"]
        );
        let got = &result.rows[0];
        assert_eq!(got[0], oracle(rows.iter(), latency, AggFunc::Sum));
        assert_eq!(got[1], oracle(rows.iter(), latency, AggFunc::Min));
        assert_eq!(got[2], oracle(rows.iter(), latency, AggFunc::Max));
        assert_eq!(got[3], oracle(rows.iter(), latency, AggFunc::Avg));
        assert_eq!(got[4], oracle(rows.iter(), latency, AggFunc::Count));
        // NULLs (every 9th row) are excluded from COUNT(col).
        let non_null = rows.iter().filter(|r| !r[latency].is_null()).count() as u64;
        assert_eq!(got[4], Value::U64(non_null));
        assert!(non_null < 80);
    }

    #[test]
    fn grouped_aggregates_in_projection_order() {
        let result = run(
            "SELECT ip, COUNT(*), MAX(latency) FROM request_log \
             GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 2",
            60,
        );
        assert_eq!(result.columns, vec!["ip", "COUNT(*)", "MAX(latency)"]);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0][1], Value::U64(20)); // 60 rows over 3 ips
        assert!(matches!(result.rows[0][2], Value::I64(_)));
    }

    #[test]
    fn time_bucket_grouping_buckets_rows() {
        // make_rows assigns ts = 1000 + i, so 60 rows span buckets
        // [1000,1019] -> 1000, [1020,1039] -> 1020, [1040,1059] -> 1040.
        let result = run(
            "SELECT TIMEBUCKET(ts, 20), COUNT(*) FROM request_log GROUP BY TIMEBUCKET(ts, 20)",
            60,
        );
        assert_eq!(result.columns, vec!["TIMEBUCKET(ts, 20)", "COUNT(*)"]);
        assert_eq!(
            result.rows,
            vec![
                vec![Value::I64(1000), Value::U64(20)],
                vec![Value::I64(1020), Value::U64(20)],
                vec![Value::I64(1040), Value::U64(20)],
            ]
        );
        // Block path and rows path agree on bucketed grouping.
        let query = q(
            "SELECT TIMEBUCKET(ts, 32), MAX(latency) FROM request_log GROUP BY TIMEBUCKET(ts, 32)",
        );
        let mut s1 = QueryStats::default();
        let from_block = collect_from_block(&block(60), &query, true, &mut s1).unwrap();
        let rows = make_rows(60);
        let mut s2 = QueryStats::default();
        let from_rows =
            collect_from_rows(rows.iter().map(|r| r.as_slice()), &schema(), &query, &mut s2)
                .unwrap();
        assert_eq!(from_block, from_rows);
    }

    #[test]
    fn avg_of_nothing_is_null() {
        let result = run("SELECT AVG(latency) FROM request_log WHERE latency > 99999", 30);
        assert_eq!(result.rows[0][0], Value::Null);
    }

    #[test]
    fn group_by_with_order_and_limit() {
        let result = run(
            "SELECT ip, COUNT(*) FROM request_log GROUP BY ip \
             ORDER BY COUNT(*) DESC LIMIT 2",
            60,
        );
        assert_eq!(result.columns, vec!["ip", "COUNT(*)"]);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0][1], Value::U64(20));
    }

    #[test]
    fn order_by_non_projected_column_is_stripped() {
        let query = q("SELECT log FROM request_log ORDER BY latency DESC LIMIT 3");
        let mut stats = QueryStats::default();
        let p = collect_from_block(&block(30), &query, true, &mut stats).unwrap();
        let result = finalize(p, &query, &schema()).unwrap();
        assert_eq!(result.columns, vec!["log"]);
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.rows[0].len(), 1, "sort helper column must be stripped");
    }

    #[test]
    fn select_star_expands_schema() {
        let query = q("SELECT * FROM request_log LIMIT 1");
        let mut stats = QueryStats::default();
        let p = collect_from_block(&block(5), &query, true, &mut stats).unwrap();
        let result = finalize(p, &query, &schema()).unwrap();
        assert_eq!(result.columns.len(), 7);
        assert_eq!(result.rows.len(), 1);
    }

    #[test]
    fn mismatched_partials_rejected() {
        let r =
            merge_partials(vec![Partial::Agg(vec![AggState::default()]), Partial::Rows(vec![])]);
        assert!(r.is_err());
        assert_eq!(merge_partials(vec![]).unwrap(), Partial::Rows(vec![]));
    }

    #[test]
    fn skipping_off_gives_same_results() {
        let query = q("SELECT log FROM request_log WHERE latency >= 50 AND fail = false");
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let with = collect_from_block(&block(100), &query, true, &mut s1).unwrap();
        let without = collect_from_block(&block(100), &query, false, &mut s2).unwrap();
        assert_eq!(with, without);
        assert!(s1.scan.blocks_scanned <= s2.scan.blocks_scanned);
    }

    #[test]
    fn aggregate_states_merge_like_single_pass() {
        let rows = make_rows(90);
        let (a, b) = rows.split_at(40);
        let mut one = AggState::default();
        for r in &rows {
            one.update(Some(&r[4]));
        }
        let mut left = AggState::default();
        for r in a {
            left.update(Some(&r[4]));
        }
        let mut right = AggState::default();
        for r in b {
            right.update(Some(&r[4]));
        }
        left.merge(&right);
        assert_eq!(left, one);
    }
}
