//! SQL tokenizer.

use logstore_types::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (original case preserved).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// Integer literal.
    Number(i64),
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
}

impl Token {
    /// True if this is the keyword `kw` (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(Error::Parse("lone '!'".into()));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::Parse("unterminated string literal".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8 is copied verbatim.
                            let ch_start = i;
                            let ch_len = utf8_len(bytes[i]);
                            let end = ch_start + ch_len;
                            let chunk = input
                                .get(ch_start..end)
                                .ok_or_else(|| Error::Parse("invalid utf-8 in literal".into()))?;
                            s.push_str(chunk);
                            i = end;
                        }
                    }
                }
                tokens.push(Token::StringLit(s));
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                if text == "-" {
                    return Err(Error::Parse("lone '-'".into()));
                }
                let n = text
                    .parse::<i64>()
                    .map_err(|_| Error::Parse(format!("bad number '{text}'")))?;
                tokens.push(Token::Number(n));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(Error::Parse(format!("unexpected character '{}'", other as char))),
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let toks = tokenize(
            "SELECT log FROM request_log WHERE ts >= '2020-11-11 00:00:00' AND latency != 100",
        )
        .unwrap();
        assert!(toks[0].is_keyword("select"));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::StringLit("2020-11-11 00:00:00".into())));
        assert!(toks.contains(&Token::Number(100)));
    }

    #[test]
    fn operators_and_punctuation() {
        let toks = tokenize("= != <> < <= > >= ( ) , *").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Star
            ]
        );
    }

    #[test]
    fn string_escaping_and_unicode() {
        let toks = tokenize("'it''s' 'wörld'").unwrap();
        assert_eq!(toks, vec![Token::StringLit("it's".into()), Token::StringLit("wörld".into())]);
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(tokenize("-42").unwrap(), vec![Token::Number(-42)]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("- ").is_err());
        assert!(tokenize("99999999999999999999").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("SeLeCt").unwrap();
        assert!(toks[0].is_keyword("SELECT"));
        assert!(toks[0].is_keyword("select"));
        assert!(!toks[0].is_keyword("from"));
    }
}
