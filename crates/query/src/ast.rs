//! Query AST.

use logstore_types::ColumnPredicate;
use std::fmt;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)` (non-null count).
    Count,
    /// `SUM(col)` over non-null values (numeric columns).
    Sum,
    /// `MIN(col)` over non-null values.
    Min,
    /// `MAX(col)` over non-null values.
    Max,
    /// `AVG(col)` = SUM / non-null COUNT, rounded to an integer (LogStore
    /// columns are integral; there is no float type in the storage layer).
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// True when the function only makes sense on numeric columns.
    pub fn requires_numeric(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Avg)
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`
    AllColumns,
    /// A named column.
    Column(String),
    /// `COUNT(*)`
    CountStar,
    /// `FUNC(col)` — an aggregate over a column.
    Agg(AggFunc, String),
    /// `TIMEBUCKET(col, width_ms)` — the group key of a time-bucketed
    /// aggregation; only valid when it matches the `GROUP BY` key.
    TimeBucket {
        /// The bucketed (Int64 timestamp) column.
        column: String,
        /// Bucket width in the column's units (milliseconds for `ts`).
        width_ms: i64,
    },
}

/// A `GROUP BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupKey {
    /// Group by a column's value.
    Column(String),
    /// Group by `width_ms`-wide buckets of a timestamp column: bucket value
    /// is `v.div_euclid(width_ms) * width_ms` (the bucket's start).
    TimeBucket {
        /// The bucketed (Int64 timestamp) column.
        column: String,
        /// Bucket width in the column's units (milliseconds for `ts`).
        width_ms: i64,
    },
}

impl GroupKey {
    /// The column the key reads.
    pub fn column(&self) -> &str {
        match self {
            GroupKey::Column(c) | GroupKey::TimeBucket { column: c, .. } => c,
        }
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKey::Column(c) => write!(f, "{c}"),
            GroupKey::TimeBucket { column, width_ms } => {
                write!(f, "TIMEBUCKET({column}, {width_ms})")
            }
        }
    }
}

/// Ordering key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderKey {
    /// Order by a projected column.
    Column(String),
    /// Order by `COUNT(*)` (aggregate queries).
    CountStar,
}

/// `ORDER BY <key> [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// The sort key.
    pub key: OrderKey,
    /// True for descending.
    pub descending: bool,
}

/// A parsed query: conjunctive filters with optional grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// Target table.
    pub table: String,
    /// WHERE conjuncts.
    pub predicates: Vec<ColumnPredicate>,
    /// Optional `GROUP BY` key (column or time bucket).
    pub group_by: Option<GroupKey>,
    /// Optional ordering.
    pub order_by: Option<OrderBy>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

impl Query {
    /// True if the query aggregates (any aggregate item appears).
    pub fn is_aggregate(&self) -> bool {
        self.projection.iter().any(|s| matches!(s, SelectItem::CountStar | SelectItem::Agg(..)))
    }

    /// The aggregate items in projection order: `(function, column)`,
    /// where `None` is `COUNT(*)`.
    pub fn aggregate_items(&self) -> Vec<(AggFunc, Option<String>)> {
        self.projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::CountStar => Some((AggFunc::Count, None)),
                SelectItem::Agg(f, c) => Some((*f, Some(c.clone()))),
                _ => None,
            })
            .collect()
    }

    /// Column names the executor must materialize for projection (excludes
    /// `COUNT(*)`; `*` expands at execution time against the schema).
    pub fn projected_columns(&self) -> Vec<String> {
        self.projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Column(c) => Some(c.clone()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::AllColumns => write!(f, "*")?,
                SelectItem::Column(c) => write!(f, "{c}")?,
                SelectItem::CountStar => write!(f, "COUNT(*)")?,
                SelectItem::Agg(func, c) => write!(f, "{}({c})", func.name())?,
                SelectItem::TimeBucket { column, width_ms } => {
                    write!(f, "TIMEBUCKET({column}, {width_ms})")?
                }
            }
        }
        write!(f, " FROM {}", self.table)?;
        for (i, p) in self.predicates.iter().enumerate() {
            write!(f, " {} {p}", if i == 0 { "WHERE" } else { "AND" })?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        if let Some(o) = &self.order_by {
            let key = match &o.key {
                OrderKey::Column(c) => c.clone(),
                OrderKey::CountStar => "COUNT(*)".to_string(),
            };
            write!(f, " ORDER BY {key} {}", if o.descending { "DESC" } else { "ASC" })?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_types::{CmpOp, Value};

    #[test]
    fn display_reconstructs_sql_shape() {
        let q = Query {
            projection: vec![SelectItem::Column("ip".into()), SelectItem::CountStar],
            table: "request_log".into(),
            predicates: vec![ColumnPredicate::new("tenant_id", CmpOp::Eq, Value::U64(1))],
            group_by: Some(GroupKey::Column("ip".into())),
            order_by: Some(OrderBy { key: OrderKey::CountStar, descending: true }),
            limit: Some(10),
        };
        assert_eq!(
            q.to_string(),
            "SELECT ip, COUNT(*) FROM request_log WHERE tenant_id = 1 \
             GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 10"
        );
        assert!(q.is_aggregate());
        assert_eq!(q.projected_columns(), vec!["ip".to_string()]);
    }
}
