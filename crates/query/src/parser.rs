//! Recursive-descent parser for the LogStore SQL subset.

use crate::ast::{AggFunc, GroupKey, OrderBy, OrderKey, Query, SelectItem};
use crate::lexer::{tokenize, Token};
use logstore_types::{CmpOp, ColumnPredicate, Error, Result, Value};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses one SQL statement.
pub fn parse_query(sql: &str) -> Result<Query> {
    let mut p = Parser { tokens: tokenize(sql)?, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(Error::Parse(format!("trailing tokens after query: {:?}", p.peek())));
    }
    Ok(q)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_token(&mut self, token: &Token) -> Result<()> {
        let t = self.next()?;
        if &t == token {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {token:?}, found {t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let projection = self.select_list()?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            if self.peek().is_some_and(|t| t.is_keyword("TIMEBUCKET")) {
                self.pos += 1;
                let (column, width_ms) = self.time_bucket_args()?;
                Some(GroupKey::TimeBucket { column, width_ms })
            } else {
                Some(GroupKey::Column(self.ident()?))
            }
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let key = if self.peek().is_some_and(|t| t.is_keyword("COUNT")) {
                self.pos += 1;
                self.expect_token(&Token::LParen)?;
                self.expect_token(&Token::Star)?;
                self.expect_token(&Token::RParen)?;
                OrderKey::CountStar
            } else {
                OrderKey::Column(self.ident()?)
            };
            let descending = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            Some(OrderBy { key, descending })
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.next()? {
                Token::Number(n) if n >= 0 => Some(n as usize),
                other => return Err(Error::Parse(format!("bad LIMIT operand {other:?}"))),
            }
        } else {
            None
        };
        Ok(Query { projection, table, predicates, group_by, order_by, limit })
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        let up = name.to_ascii_uppercase();
        Some(match up.as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Parses `(col, width)` after a consumed `TIMEBUCKET` keyword.
    fn time_bucket_args(&mut self) -> Result<(String, i64)> {
        self.expect_token(&Token::LParen)?;
        let column = self.ident()?;
        self.expect_token(&Token::Comma)?;
        let width_ms = match self.next()? {
            Token::Number(n) if n > 0 => n,
            other => {
                return Err(Error::Parse(format!(
                    "TIMEBUCKET width must be a positive integer, found {other:?}"
                )))
            }
        };
        self.expect_token(&Token::RParen)?;
        Ok((column, width_ms))
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(vec![SelectItem::AllColumns]);
        }
        let mut items = Vec::new();
        loop {
            // A function call is an identifier immediately followed by `(`.
            if self.peek().is_some_and(|t| t.is_keyword("TIMEBUCKET"))
                && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
            {
                self.pos += 1;
                let (column, width_ms) = self.time_bucket_args()?;
                items.push(SelectItem::TimeBucket { column, width_ms });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    continue;
                }
                break;
            }
            let agg = match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(Token::Ident(name)), Some(Token::LParen)) => Self::agg_func(name),
                _ => None,
            };
            if let Some(func) = agg {
                self.pos += 1; // function name
                self.expect_token(&Token::LParen)?;
                if self.peek() == Some(&Token::Star) {
                    if func != AggFunc::Count {
                        return Err(Error::Parse(format!(
                            "{}(*) is not supported; name a column",
                            func.name()
                        )));
                    }
                    self.pos += 1;
                    self.expect_token(&Token::RParen)?;
                    items.push(SelectItem::CountStar);
                } else {
                    let col = self.ident()?;
                    self.expect_token(&Token::RParen)?;
                    items.push(SelectItem::Agg(func, col));
                }
            } else {
                items.push(SelectItem::Column(self.ident()?));
            }
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn predicate(&mut self) -> Result<ColumnPredicate> {
        let column = self.ident()?;
        let op = match self.next()? {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            Token::Ident(kw) if kw.eq_ignore_ascii_case("CONTAINS") => CmpOp::Contains,
            other => return Err(Error::Parse(format!("expected operator, found {other:?}"))),
        };
        let value = self.literal()?;
        Ok(ColumnPredicate { column, op, value })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Number(n) => Ok(Value::I64(n)),
            Token::StringLit(s) => Ok(Value::Str(s)),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            other => Err(Error::Parse(format!("expected literal, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse_query(
            "SELECT log FROM request_log WHERE tenant_id = 0 \
             AND ts >= '2020-11-11 00:00:00' AND ts <= '2020-11-11 01:00:00' \
             AND ip = '192.168.0.1' AND latency >= 100 AND fail = false",
        )
        .unwrap();
        assert_eq!(q.table, "request_log");
        assert_eq!(q.projection, vec![SelectItem::Column("log".into())]);
        assert_eq!(q.predicates.len(), 6);
        assert_eq!(q.predicates[0], ColumnPredicate::new("tenant_id", CmpOp::Eq, 0i64));
        assert_eq!(q.predicates[5], ColumnPredicate::new("fail", CmpOp::Eq, false));
        assert_eq!(q.limit, None);
    }

    #[test]
    fn parses_aggregation() {
        let q = parse_query(
            "SELECT ip, COUNT(*) FROM request_log WHERE api = '/v1' \
             GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 5",
        )
        .unwrap();
        assert!(q.is_aggregate());
        assert_eq!(q.group_by, Some(GroupKey::Column("ip".into())));
        let ob = q.order_by.unwrap();
        assert_eq!(ob.key, OrderKey::CountStar);
        assert!(ob.descending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parses_time_bucket() {
        let q = parse_query(
            "SELECT TIMEBUCKET(ts, 60000), COUNT(*) FROM request_log \
             GROUP BY TIMEBUCKET(ts, 60000)",
        )
        .unwrap();
        assert_eq!(
            q.projection[0],
            SelectItem::TimeBucket { column: "ts".into(), width_ms: 60000 }
        );
        assert_eq!(q.group_by, Some(GroupKey::TimeBucket { column: "ts".into(), width_ms: 60000 }));
        // Display round-trip.
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn rejects_bad_time_bucket() {
        for sql in [
            "SELECT TIMEBUCKET(ts) FROM t GROUP BY TIMEBUCKET(ts)",
            "SELECT TIMEBUCKET(ts, 0), COUNT(*) FROM t GROUP BY TIMEBUCKET(ts, 0)",
            "SELECT TIMEBUCKET(ts, 'x'), COUNT(*) FROM t GROUP BY TIMEBUCKET(ts, 'x')",
            "SELECT COUNT(*) FROM t GROUP BY TIMEBUCKET(ts 60000)",
        ] {
            assert!(parse_query(sql).is_err(), "'{sql}' should fail");
        }
    }

    #[test]
    fn parses_star_and_contains() {
        let q = parse_query("SELECT * FROM t WHERE log CONTAINS 'timeout'").unwrap();
        assert_eq!(q.projection, vec![SelectItem::AllColumns]);
        assert_eq!(q.predicates[0].op, CmpOp::Contains);
    }

    #[test]
    fn order_by_column_asc_default() {
        let q = parse_query("SELECT a FROM t ORDER BY a").unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.key, OrderKey::Column("a".into()));
        assert!(!ob.descending);
    }

    #[test]
    fn no_where_clause() {
        let q = parse_query("SELECT * FROM t LIMIT 3").unwrap();
        assert!(q.predicates.is_empty());
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn rejects_malformed() {
        for sql in [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a =",
            "SELECT * FROM t WHERE a LIKE 'x'",
            "SELECT * FROM t LIMIT -1",
            "SELECT * FROM t GARBAGE",
            "SELECT * FROM t ORDER BY",
            "SELECT SUM(*) FROM t",
            "SELECT COUNT( FROM t",
        ] {
            assert!(parse_query(sql).is_err(), "'{sql}' should fail");
        }
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser must never panic, whatever bytes arrive.
            #[test]
            fn prop_parser_never_panics(input in ".{0,120}") {
                let _ = parse_query(&input);
            }

            /// SQL-looking garbage exercises deeper parser paths.
            #[test]
            fn prop_sqlish_never_panics(
                parts in proptest::collection::vec(
                    prop_oneof![
                        Just("SELECT".to_string()),
                        Just("FROM".to_string()),
                        Just("WHERE".to_string()),
                        Just("AND".to_string()),
                        Just("GROUP BY".to_string()),
                        Just("ORDER BY".to_string()),
                        Just("LIMIT".to_string()),
                        Just("COUNT(*)".to_string()),
                        Just("*".to_string()),
                        Just("=".to_string()),
                        Just("<=".to_string()),
                        Just("CONTAINS".to_string()),
                        Just("'lit'".to_string()),
                        Just("42".to_string()),
                        Just("col".to_string()),
                    ],
                    0..12,
                )
            ) {
                let sql = parts.join(" ");
                let _ = parse_query(&sql);
            }

            /// Anything that parses can be displayed and re-parsed to the
            /// same AST (display round-trip).
            #[test]
            fn prop_display_roundtrip(input in "[ a-zA-Z0-9_='<>,()*]{0,80}") {
                if let Ok(q) = parse_query(&input) {
                    let sql = q.to_string();
                    let q2 = parse_query(&sql)
                        .unwrap_or_else(|e| panic!("'{sql}' failed to re-parse: {e}"));
                    prop_assert_eq!(q, q2);
                }
            }
        }
    }

    #[test]
    fn boolean_and_null_literals() {
        let q = parse_query("SELECT * FROM t WHERE a = TRUE AND b != NULL").unwrap();
        assert_eq!(q.predicates[0].value, Value::Bool(true));
        assert_eq!(q.predicates[1].value, Value::Null);
    }
}
