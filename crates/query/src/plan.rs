//! Physical scan planning: aggregation pushdown and row-transport baseline.
//!
//! A bound [`Query`] compiles into one [`ScanPlan`] that every scattered
//! source task executes — one plan, two modes:
//!
//! * **Pushdown on** (`QueryOptions::use_pushdown`, the default): each
//!   LogBlock scan and each real-time shard scan evaluates predicates with
//!   the vectorized batch path and returns a *partial aggregate state*
//!   ([`Partial::Agg`] / [`Partial::Groups`]) instead of matched rows.
//!   Pure `COUNT(*)` queries skip column materialization entirely; unordered
//!   non-aggregate queries stop materializing after `LIMIT` rows per source.
//! * **Pushdown off**: sources ship [`Partial::Rows`] of the aggregate-input
//!   columns (the row-materializing baseline) and the executor aggregates
//!   once after the deterministic merge, via [`ScanPlan::finish_partial`].
//!
//! Both modes fold partials in submission order over commutative,
//! associative accumulators, so results are bit-identical to each other and
//! at every `parallelism` setting.

use crate::ast::{AggFunc, GroupKey, Query};
use crate::exec::{
    agg_columns, group_key_value, internal_columns, update_states, AggState, OrdValue, Partial,
    QueryStats,
};
use logstore_logblock::pack::RangeSource;
use logstore_logblock::reader::LogBlockReader;
use logstore_logblock::scan::{
    evaluate_predicates, evaluate_predicates_vec, DecodeStats, ScanStats,
};
use logstore_types::{ColumnPredicate, Error, LogRecord, Result, TableSchema, Value};
use std::collections::BTreeMap;

/// The aggregation half of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate items in projection order; `None` column is `COUNT(*)`.
    pub items: Vec<(AggFunc, Option<String>)>,
    /// Per item, the index of its argument inside [`ScanPlan::columns`].
    pub item_cols: Vec<Option<usize>>,
    /// Optional group key; its column is always `columns[0]`.
    pub group: Option<GroupKey>,
}

/// The physical plan shipped to every source task of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    /// Bound WHERE conjuncts.
    pub predicates: Vec<ColumnPredicate>,
    /// Columns a source must read: aggregate inputs (group key first) for
    /// aggregate queries, the internal projection otherwise. Empty for pure
    /// `COUNT(*)` — no column data is touched at all.
    pub columns: Vec<String>,
    /// Aggregation spec, `None` for row-returning queries.
    pub agg: Option<AggSpec>,
    /// True: sources return partial aggregate states. False: sources ship
    /// matched rows and aggregation is deferred to [`ScanPlan::finish_partial`].
    pub pushdown: bool,
    /// For unordered non-aggregate queries, the query's `LIMIT`: each source
    /// may stop after this many matches, because `finalize` truncates the
    /// submission-ordered concatenation to the same prefix.
    pub limit_hint: Option<usize>,
}

impl ScanPlan {
    /// Compiles a bound query against the table schema.
    pub fn new(query: &Query, schema: &TableSchema, use_pushdown: bool) -> Result<ScanPlan> {
        if query.is_aggregate() {
            let (columns, item_cols, group) = agg_columns(query);
            Ok(ScanPlan {
                predicates: query.predicates.clone(),
                columns,
                agg: Some(AggSpec { items: query.aggregate_items(), item_cols, group }),
                pushdown: use_pushdown,
                limit_hint: None,
            })
        } else {
            let (columns, _) = internal_columns(query, schema)?;
            Ok(ScanPlan {
                predicates: query.predicates.clone(),
                columns,
                agg: None,
                pushdown: use_pushdown,
                // ORDER BY needs every match before sorting; plain LIMIT is a
                // prefix of the deterministic concatenation, safe to cut
                // per source.
                limit_hint: if query.order_by.is_none() { query.limit } else { None },
            })
        }
    }

    /// Number of aggregate items (0 for row-returning queries).
    fn n_items(&self) -> usize {
        self.agg.as_ref().map_or(0, |a| a.items.len())
    }

    /// Collects this plan's [`Partial`] from one LogBlock.
    ///
    /// Pushdown on: vectorized predicate evaluation (decode volume recorded
    /// in `decode`), then per-block aggregation — or, for pure `COUNT(*)`,
    /// no column fetch at all. Pushdown off: row-at-a-time oracle evaluation
    /// and row transport.
    pub fn collect_block<S: RangeSource>(
        &self,
        reader: &LogBlockReader<S>,
        use_skipping: bool,
        stats: &mut QueryStats,
        decode: &mut DecodeStats,
    ) -> Result<Partial> {
        stats.blocks_visited += 1;
        let ids = if self.pushdown {
            evaluate_predicates_vec(
                reader,
                &self.predicates,
                use_skipping,
                &mut stats.scan,
                decode,
            )?
        } else {
            evaluate_predicates(reader, &self.predicates, use_skipping, &mut stats.scan)?
        };

        let Some(agg) = &self.agg else {
            // Row-returning query: materialize only the referenced columns,
            // cut to the limit hint before touching column data.
            let mut idv = ids.to_vec();
            if let Some(limit) = self.limit_hint {
                idv.truncate(limit);
            }
            if idv.is_empty() {
                return Ok(Partial::Rows(Vec::new()));
            }
            let cols = self.resolve_columns(|name| reader.schema().column_index(name))?;
            return Ok(Partial::Rows(reader.read_rows(&idv, &cols)?));
        };

        if !self.pushdown {
            // Baseline: ship the matched rows of the aggregate-input columns
            // (empty-width rows for pure COUNT(*) — the row markers still
            // travel to the executor).
            let idv = ids.to_vec();
            let rows = if self.columns.is_empty() {
                vec![Vec::new(); idv.len()]
            } else if idv.is_empty() {
                Vec::new()
            } else {
                let cols = self.resolve_columns(|name| reader.schema().column_index(name))?;
                reader.read_rows(&idv, &cols)?
            };
            return Ok(Partial::Rows(rows));
        }

        // Pushdown: aggregate inside the scan.
        let n_items = self.n_items();
        if self.columns.is_empty() {
            // Pure COUNT(*): the row-id set is the whole answer.
            let state = AggState { count: u64::from(ids.count()), ..AggState::default() };
            return Ok(Partial::Agg(vec![state; n_items]));
        }
        let idv = ids.to_vec();
        let rows = if idv.is_empty() {
            Vec::new()
        } else {
            let cols = self.resolve_columns(|name| reader.schema().column_index(name))?;
            reader.read_rows(&idv, &cols)?
        };
        if let Some(group) = &agg.group {
            let mut groups: BTreeMap<OrdValue, Vec<AggState>> = BTreeMap::new();
            for row in rows {
                let states = groups
                    .entry(OrdValue(group_key_value(group, &row[0])))
                    .or_insert_with(|| vec![AggState::default(); n_items]);
                update_states(states, &row, &agg.item_cols);
            }
            Ok(Partial::Groups(groups))
        } else {
            let mut states = vec![AggState::default(); n_items];
            for row in rows {
                update_states(&mut states, &row, &agg.item_cols);
            }
            Ok(Partial::Agg(states))
        }
    }

    /// Resolves [`ScanPlan::columns`] through a name→index lookup.
    fn resolve_columns(&self, lookup: impl Fn(&str) -> Option<usize>) -> Result<Vec<usize>> {
        self.columns
            .iter()
            .map(|name| {
                lookup(name).ok_or_else(|| Error::Query(format!("unknown column '{name}'")))
            })
            .collect()
    }

    /// Completes the executor side of the plan after the deterministic
    /// merge: with pushdown off, aggregate queries arrive as transported
    /// rows and are aggregated here; everything else passes through.
    pub fn finish_partial(&self, merged: Partial) -> Result<Partial> {
        let Some(agg) = &self.agg else { return Ok(merged) };
        if self.pushdown {
            return Ok(merged);
        }
        let Partial::Rows(rows) = merged else {
            return Err(Error::Internal("pushdown-off aggregate expects row transport".into()));
        };
        let n_items = self.n_items();
        if let Some(group) = &agg.group {
            let mut groups: BTreeMap<OrdValue, Vec<AggState>> = BTreeMap::new();
            for row in &rows {
                let states = groups
                    .entry(OrdValue(group_key_value(group, &row[0])))
                    .or_insert_with(|| vec![AggState::default(); n_items]);
                update_states(states, row, &agg.item_cols);
            }
            Ok(Partial::Groups(groups))
        } else {
            let mut states = vec![AggState::default(); n_items];
            for row in &rows {
                update_states(&mut states, row, &agg.item_cols);
            }
            Ok(Partial::Agg(states))
        }
    }
}

const NULL_VALUE: Value = Value::Null;

/// Streaming collector for the real-time row store: the plan's predicates,
/// projection and (with pushdown) aggregation applied record by record,
/// without materializing a positional row per record.
#[derive(Debug)]
pub struct RowCollector {
    pushdown: bool,
    limit_hint: Option<usize>,
    /// `(schema column index, predicate)` pairs.
    preds: Vec<(usize, ColumnPredicate)>,
    /// Schema indices of [`ScanPlan::columns`].
    out_cols: Vec<usize>,
    agg: Option<AggSpec>,
    /// Schema indices of the aggregate items' argument columns.
    agg_item_cols: Vec<Option<usize>>,
    /// Schema index of the group column.
    group_idx: Option<usize>,
    rows: Vec<Vec<Value>>,
    groups: BTreeMap<OrdValue, Vec<AggState>>,
    global: Vec<AggState>,
    rows_scanned: u64,
}

impl RowCollector {
    /// Builds a collector for one real-time source task.
    pub fn new(plan: &ScanPlan, schema: &TableSchema) -> Result<RowCollector> {
        let col = |name: &str| {
            schema
                .column_index(name)
                .ok_or_else(|| Error::Query(format!("unknown column '{name}'")))
        };
        let preds = plan
            .predicates
            .iter()
            .map(|p| Ok((col(&p.column)?, p.clone())))
            .collect::<Result<_>>()?;
        let out_cols = plan.resolve_columns(|name| schema.column_index(name))?;
        let (agg_item_cols, group_idx) = match &plan.agg {
            Some(a) => {
                let items = a
                    .items
                    .iter()
                    .map(|(_, c)| c.as_deref().map(col).transpose())
                    .collect::<Result<Vec<_>>>()?;
                let group = a.group.as_ref().map(|g| col(g.column())).transpose()?;
                (items, group)
            }
            None => (Vec::new(), None),
        };
        let n_items = plan.n_items();
        Ok(RowCollector {
            pushdown: plan.pushdown,
            limit_hint: plan.limit_hint,
            preds,
            out_cols,
            agg: plan.agg.clone(),
            agg_item_cols,
            group_idx,
            rows: Vec::new(),
            groups: BTreeMap::new(),
            global: vec![AggState::default(); n_items],
            rows_scanned: 0,
        })
    }

    /// Feeds one record. Returns `false` when the source may stop early
    /// (unordered `LIMIT` satisfied) — the caller should end its scan.
    pub fn push_record(&mut self, record: &LogRecord) -> bool {
        self.rows_scanned += 1;
        // Positional cell access without building `to_row()`: columns 0 and
        // 1 are the record's keys, the rest live in `fields`.
        let tenant = Value::U64(record.tenant_id.raw());
        let ts = Value::I64(record.ts.millis());
        let cell = |idx: usize| -> &Value {
            match idx {
                0 => &tenant,
                1 => &ts,
                i => record.fields.get(i - 2).unwrap_or(&NULL_VALUE),
            }
        };
        if !self.preds.iter().all(|(c, p)| p.matches(cell(*c))) {
            return true;
        }
        match (&self.agg, self.pushdown) {
            (Some(agg), true) => {
                let states = if let (Some(group), Some(g)) = (&agg.group, self.group_idx) {
                    self.groups
                        .entry(OrdValue(group_key_value(group, cell(g))))
                        .or_insert_with(|| vec![AggState::default(); self.global.len()])
                } else {
                    &mut self.global
                };
                for (state, c) in states.iter_mut().zip(&self.agg_item_cols) {
                    state.update(c.map(&cell));
                }
                true
            }
            _ => {
                // Row transport (non-aggregate, or the pushdown-off baseline).
                self.rows.push(self.out_cols.iter().map(|&c| cell(c).clone()).collect());
                match self.limit_hint {
                    Some(limit) => self.rows.len() < limit,
                    None => true,
                }
            }
        }
    }

    /// Finishes the source: folds the scan counter into `stats` and returns
    /// the partial in the plan's shape.
    pub fn finish(self, stats: &mut QueryStats) -> Partial {
        stats.realtime_rows_scanned += self.rows_scanned;
        match (&self.agg, self.pushdown) {
            (Some(agg), true) => {
                if agg.group.is_some() {
                    Partial::Groups(self.groups)
                } else {
                    Partial::Agg(self.global)
                }
            }
            _ => Partial::Rows(self.rows),
        }
    }
}

/// Approximate size (bytes) of a partial as shipped from a source task to
/// the gather step — the "bytes leaving the scan layer" metric behind the
/// pushdown-vs-materialization comparison in `BENCH_query.json`.
pub fn partial_approx_bytes(partial: &Partial) -> u64 {
    fn state_bytes(s: &AggState) -> u64 {
        let opt = |v: &Option<OrdValue>| v.as_ref().map_or(1, |o| o.0.approx_size() as u64);
        8 + 16 + opt(&s.min) + opt(&s.max)
    }
    match partial {
        Partial::Rows(rows) => {
            rows.iter().map(|r| 8 + r.iter().map(|v| v.approx_size() as u64).sum::<u64>()).sum()
        }
        Partial::Agg(states) => states.iter().map(state_bytes).sum(),
        Partial::Groups(groups) => groups
            .iter()
            .map(|(k, states)| {
                k.0.approx_size() as u64 + states.iter().map(state_bytes).sum::<u64>()
            })
            .sum(),
    }
}

/// Decode/transport counters for one query execution, reported on
/// `QueryExecution` (engine-observability: excluded from the bit-identical
/// `QueryStats` contract, though in practice these are deterministic too).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecutionCounters {
    /// Vectorized-decode volume across all block scans.
    pub decode: DecodeStats,
    /// Approximate bytes the source tasks shipped to the gather step.
    pub partial_bytes: u64,
}

impl ExecutionCounters {
    /// Accumulates one source task's contribution.
    pub fn absorb(&mut self, decode: &DecodeStats, partial: &Partial) {
        self.decode.merge(decode);
        self.partial_bytes += partial_approx_bytes(partial);
    }
}

/// Re-exported so broker code can hold scan stats without importing the
/// logblock crate directly.
pub type BlockScanStats = ScanStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::bind;
    use crate::exec::{collect_from_block, collect_from_rows, finalize, merge_partials};
    use crate::parser::parse_query;
    use logstore_logblock::builder::LogBlockBuilder;
    use logstore_types::{TenantId, Timestamp};

    fn schema() -> TableSchema {
        TableSchema::request_log()
    }

    fn make_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::U64(i as u64 % 2),
                    Value::I64(1000 + i as i64),
                    Value::from(format!("ip{}", i % 3)),
                    Value::from("/api"),
                    if i % 9 == 0 { Value::Null } else { Value::I64((i as i64 * 13) % 100) },
                    Value::Bool(i % 4 == 0),
                    Value::from(format!("line {i}")),
                ]
            })
            .collect()
    }

    fn block(n: usize) -> LogBlockReader<Vec<u8>> {
        let mut b =
            LogBlockBuilder::with_options(schema(), logstore_codec::Compression::LzHigh, 16);
        for row in make_rows(n) {
            b.add_row(&row).unwrap();
        }
        LogBlockReader::open(b.finish().unwrap()).unwrap()
    }

    fn records(n: usize) -> Vec<LogRecord> {
        make_rows(n)
            .into_iter()
            .map(|row| {
                LogRecord::new(
                    TenantId(row[0].as_u64().unwrap()),
                    Timestamp(row[1].as_i64().unwrap()),
                    row[2..].to_vec(),
                )
            })
            .collect()
    }

    fn q(sql: &str) -> Query {
        bind(&parse_query(sql).unwrap(), &schema()).unwrap()
    }

    const SHAPES: &[&str] = &[
        "SELECT log, latency FROM request_log WHERE tenant_id = 1 AND latency < 50",
        "SELECT COUNT(*) FROM request_log WHERE fail = true",
        "SELECT SUM(latency), MIN(latency), MAX(latency), AVG(latency) FROM request_log",
        "SELECT ip, COUNT(*), MAX(latency) FROM request_log GROUP BY ip",
        "SELECT TIMEBUCKET(ts, 20), COUNT(*) FROM request_log GROUP BY TIMEBUCKET(ts, 20)",
        "SELECT log FROM request_log WHERE latency >= 10 LIMIT 3",
        "SELECT log FROM request_log ORDER BY latency DESC LIMIT 3",
    ];

    /// Pushdown on, pushdown off, and the pre-plan collectors all finalize
    /// to the same result, from blocks and from the real-time path alike.
    #[test]
    fn plan_modes_agree_with_legacy_collectors() {
        for sql in SHAPES {
            for use_skipping in [true, false] {
                let query = q(sql);
                let reader = block(60);
                let recs = records(60);

                let mut results = Vec::new();
                for pushdown in [true, false] {
                    let plan = ScanPlan::new(&query, &schema(), pushdown).unwrap();
                    let mut stats = QueryStats::default();
                    let mut decode = DecodeStats::default();
                    let from_block =
                        plan.collect_block(&reader, use_skipping, &mut stats, &mut decode).unwrap();
                    let mut collector = RowCollector::new(&plan, &schema()).unwrap();
                    for r in &recs {
                        if !collector.push_record(r) {
                            break;
                        }
                    }
                    let from_rt = collector.finish(&mut stats);
                    let merged = merge_partials(vec![from_block, from_rt]).unwrap();
                    let done = plan.finish_partial(merged).unwrap();
                    results.push(finalize(done, &query, &schema()).unwrap());
                    if plan.limit_hint.is_none() {
                        assert_eq!(stats.realtime_rows_scanned, 60, "{sql}");
                    }
                }

                // Legacy (pre-plan) collectors as the oracle.
                let mut stats = QueryStats::default();
                let from_block =
                    collect_from_block(&reader, &query, use_skipping, &mut stats).unwrap();
                let rows = make_rows(60);
                let from_rt = collect_from_rows(
                    rows.iter().map(|r| r.as_slice()),
                    &schema(),
                    &query,
                    &mut stats,
                )
                .unwrap();
                let oracle =
                    finalize(merge_partials(vec![from_block, from_rt]).unwrap(), &query, &schema())
                        .unwrap();

                assert_eq!(results[0], oracle, "pushdown-on diverges for {sql}");
                assert_eq!(results[1], oracle, "pushdown-off diverges for {sql}");
            }
        }
    }

    #[test]
    fn pure_count_skips_column_materialization() {
        let query = q("SELECT COUNT(*) FROM request_log WHERE latency < 50");
        let plan = ScanPlan::new(&query, &schema(), true).unwrap();
        assert!(plan.columns.is_empty());
        let mut stats = QueryStats::default();
        let mut decode = DecodeStats::default();
        let p = plan.collect_block(&block(60), true, &mut stats, &mut decode).unwrap();
        // Only the predicate column was decoded; the count came from the
        // row-id set alone.
        let Partial::Agg(states) = &p else { panic!("expected Agg") };
        assert!(states[0].count > 0);
    }

    #[test]
    fn limit_hint_cuts_per_source_work() {
        let query = q("SELECT log FROM request_log LIMIT 2");
        let plan = ScanPlan::new(&query, &schema(), true).unwrap();
        assert_eq!(plan.limit_hint, Some(2));
        let mut stats = QueryStats::default();
        let mut decode = DecodeStats::default();
        let Partial::Rows(rows) =
            plan.collect_block(&block(60), true, &mut stats, &mut decode).unwrap()
        else {
            panic!("expected Rows")
        };
        assert_eq!(rows.len(), 2, "block source must stop at the limit");

        let mut collector = RowCollector::new(&plan, &schema()).unwrap();
        let mut fed = 0;
        for r in records(60) {
            fed += 1;
            if !collector.push_record(&r) {
                break;
            }
        }
        assert_eq!(fed, 2, "realtime source must stop at the limit");

        // ORDER BY disables the early-out.
        let ordered = q("SELECT log FROM request_log ORDER BY latency ASC LIMIT 2");
        assert_eq!(ScanPlan::new(&ordered, &schema(), true).unwrap().limit_hint, None);
    }

    #[test]
    fn pushdown_ships_fewer_bytes_than_row_transport() {
        let query = q("SELECT ip, COUNT(*), SUM(latency) FROM request_log GROUP BY ip");
        let reader = block(200);
        let mut sizes = Vec::new();
        for pushdown in [true, false] {
            let plan = ScanPlan::new(&query, &schema(), pushdown).unwrap();
            let mut stats = QueryStats::default();
            let mut decode = DecodeStats::default();
            let p = plan.collect_block(&reader, true, &mut stats, &mut decode).unwrap();
            sizes.push(partial_approx_bytes(&p));
        }
        assert!(
            sizes[0] * 4 < sizes[1],
            "aggregated partial ({}) should be far smaller than row transport ({})",
            sizes[0],
            sizes[1]
        );
    }

    #[test]
    fn execution_counters_absorb_sources() {
        let query = q("SELECT COUNT(*) FROM request_log WHERE latency < 50");
        let plan = ScanPlan::new(&query, &schema(), true).unwrap();
        let mut stats = QueryStats::default();
        let mut counters = ExecutionCounters::default();
        let mut decode = DecodeStats::default();
        let p = plan.collect_block(&block(60), true, &mut stats, &mut decode).unwrap();
        counters.absorb(&decode, &p);
        assert!(counters.decode.batches_evaluated > 0);
        assert!(counters.partial_bytes > 0);
    }

    #[test]
    fn finish_partial_rejects_shape_mismatch() {
        let query = q("SELECT COUNT(*) FROM request_log");
        let plan = ScanPlan::new(&query, &schema(), false).unwrap();
        assert!(plan.finish_partial(Partial::Agg(vec![AggState::default()])).is_err());
    }
}
