//! LEB128 variable-length integers and zigzag transforms.
//!
//! These are the workhorse encodings of every on-disk structure in LogStore:
//! posting lists, delta-coded numeric columns, string length prefixes and
//! the LogBlock section offsets all use them.

use logstore_types::{Error, Result};

/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` to `buf` in LEB128 format.
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Appends a zigzag-encoded `i64`.
#[inline]
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag_encode(v));
}

/// Reads a varint from `buf` starting at `*pos`, advancing `*pos`.
#[inline]
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| Error::corruption("varint truncated"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(Error::corruption("varint overflows u64"));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::corruption("varint too long"));
        }
    }
}

/// Reads a zigzag-encoded `i64`.
#[inline]
pub fn read_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(zigzag_decode(read_uvarint(buf, pos)?))
}

/// Maps signed to unsigned so that small-magnitude values encode short.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes [`put_uvarint`] would emit for `v`.
#[inline]
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Appends a fixed-width little-endian `u32` (used where random access
/// matters more than size, e.g. section tables).
#[inline]
pub fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a fixed-width little-endian `u32`.
#[inline]
pub fn read_u32_le(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = *pos + 4;
    let bytes = buf.get(*pos..end).ok_or_else(|| Error::corruption("u32 truncated"))?;
    *pos = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("slice is 4 bytes")))
}

/// Appends a fixed-width little-endian `u64`.
#[inline]
pub fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a fixed-width little-endian `u64`.
#[inline]
pub fn read_u64_le(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = *pos + 8;
    let bytes = buf.get(*pos..end).ok_or_else(|| Error::corruption("u64 truncated"))?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("slice is 8 bytes")))
}

/// Appends a length-prefixed byte slice.
pub fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_uvarint(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

/// Reads a length-prefixed byte slice.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let len = read_uvarint(buf, pos)? as usize;
    let end =
        pos.checked_add(len).ok_or_else(|| Error::corruption("byte slice length overflow"))?;
    let out = buf.get(*pos..end).ok_or_else(|| Error::corruption("byte slice truncated"))?;
    *pos = end;
    Ok(out)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn read_str<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a str> {
    let bytes = read_bytes(buf, pos)?;
    std::str::from_utf8(bytes).map_err(|_| Error::corruption("invalid utf-8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uvarint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf.len(), uvarint_len(v));
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_uvarint(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_varint_is_error() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_uvarint(&buf, &mut pos).is_err());
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 0xdead_beef);
        put_u64_le(&mut buf, 0x0123_4567_89ab_cdef);
        let mut pos = 0;
        assert_eq!(read_u32_le(&buf, &mut pos).unwrap(), 0xdead_beef);
        assert_eq!(read_u64_le(&buf, &mut pos).unwrap(), 0x0123_4567_89ab_cdef);
        assert!(read_u32_le(&buf, &mut pos).is_err());
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "hello");
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut pos = 0;
        assert!(read_str(&buf, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn prop_uvarint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_ivarint_roundtrip(v in any::<i64>()) {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }

        #[test]
        fn prop_uvarint_len_matches(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            prop_assert_eq!(buf.len(), uvarint_len(v));
        }
    }
}
