//! Compression and encoding primitives for LogStore.
//!
//! The paper compresses LogBlock column data with ZSTD by default (high
//! ratio, more CPU) and also supports LZ4 and Snappy (faster, lower ratio).
//! Those libraries are outside this workspace's allowed dependency set, so
//! this crate implements the same design space from scratch:
//!
//! * `lz::compress_fast` — greedy LZ77, small search effort: the "LZ4/Snappy"
//!   point of the trade-off curve.
//! * `lz::compress_high` — lazy-matching LZ77 with hash chains: the "ZSTD" point
//!   (better ratio, more CPU). This is LogStore's default.
//! * [`rle`] — run-length encoding for low-cardinality byte streams.
//! * [`delta`] — delta + zigzag + varint for sorted/clustered numerics
//!   (timestamps compress extremely well).
//!
//! Plus the supporting primitives every storage format needs:
//! [`varint`] (LEB128 + zigzag) and [`crc`] (CRC32C).

#![forbid(unsafe_code)]

pub mod batch;
pub mod crc;
pub mod delta;
pub mod frame;
pub mod lz;
pub mod rle;
pub mod valser;
pub mod varint;

pub use frame::{compress, decompress, Compression};
