//! CRC32C (Castagnoli) checksums.
//!
//! Used to frame WAL records and to protect LogBlock sections against
//! corruption on (simulated) object storage. Table-driven, one table built
//! at first use.

/// The CRC32C (Castagnoli) polynomial, reversed representation.
const POLY: u32 = 0x82f6_3b78;

#[cfg(test)]
fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Table computed at compile time.
static TABLE: [u32; 256] = {
    // `make_table` is const-evaluable because it only uses integer ops.
    const fn build() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut j = 0;
            while j < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                j += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    build()
};

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continues a CRC computation: `crc32c_append(crc32c(a), b) == crc32c(a ++ b)`.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// A masked CRC in the style of LevelDB/RocksDB: storing a CRC of data that
/// itself contains CRCs can produce pathological collisions, so stored CRCs
/// are rotated and offset.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(0xa282_ead8)
}

/// Inverse of [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(0xa282_ead8).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32C test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
    }

    #[test]
    fn runtime_table_matches_const_table() {
        assert_eq!(make_table(), TABLE);
    }

    #[test]
    fn append_is_concatenation() {
        let a = b"hello ";
        let b = b"world";
        let whole = crc32c(b"hello world");
        assert_eq!(crc32c_append(crc32c(a), b), whole);
    }

    #[test]
    fn single_bit_flip_detected() {
        let data = b"the quick brown fox";
        let base = crc32c(data);
        let mut corrupted = data.to_vec();
        corrupted[3] ^= 0x01;
        assert_ne!(crc32c(&corrupted), base);
    }

    proptest! {
        #[test]
        fn prop_mask_roundtrip(v in any::<u32>()) {
            prop_assert_eq!(unmask(mask(v)), v);
        }

        #[test]
        fn prop_append_split(data in proptest::collection::vec(any::<u8>(), 0..256),
                             split in 0usize..256) {
            let split = split.min(data.len());
            let (a, b) = data.split_at(split);
            prop_assert_eq!(crc32c_append(crc32c(a), b), crc32c(&data));
        }
    }
}
