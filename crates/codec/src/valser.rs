//! Compact binary serialization of [`Value`]s.
//!
//! Used by the WAL (row payloads) and by LogBlock metadata (SMA min/max
//! values). One tag byte followed by a varint/length-prefixed payload.

use crate::varint::{put_ivarint, put_str, put_uvarint, read_ivarint, read_str, read_uvarint};
use logstore_types::{Error, Result, Value};

const TAG_NULL: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Appends a serialized value.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::I64(x) => {
            buf.push(TAG_I64);
            put_ivarint(buf, *x);
        }
        Value::U64(x) => {
            buf.push(TAG_U64);
            put_uvarint(buf, *x);
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_str(buf, s);
        }
        Value::Bool(false) => buf.push(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.push(TAG_BOOL_TRUE),
    }
}

/// Reads a value written by [`put_value`].
pub fn read_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf.get(*pos).ok_or_else(|| Error::corruption("value tag truncated"))?;
    *pos += 1;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_I64 => Value::I64(read_ivarint(buf, pos)?),
        TAG_U64 => Value::U64(read_uvarint(buf, pos)?),
        TAG_STR => Value::Str(read_str(buf, pos)?.to_string()),
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        other => return Err(Error::corruption(format!("unknown value tag {other}"))),
    })
}

/// Serializes a row (a slice of values) with a leading arity.
pub fn put_row(buf: &mut Vec<u8>, row: &[Value]) {
    put_uvarint(buf, row.len() as u64);
    for v in row {
        put_value(buf, v);
    }
}

/// Reads a row written by [`put_row`].
pub fn read_row(buf: &[u8], pos: &mut usize) -> Result<Vec<Value>> {
    let n = read_uvarint(buf, pos)? as usize;
    if n > 1 << 20 {
        return Err(Error::corruption("row arity implausibly large"));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(read_value(buf, pos)?);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut pos = 0;
        assert_eq!(&read_value(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::I64(i64::MIN));
        roundtrip(&Value::I64(i64::MAX));
        roundtrip(&Value::U64(u64::MAX));
        roundtrip(&Value::from(""));
        roundtrip(&Value::from("héllo wörld"));
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![Value::U64(7), Value::I64(-1), Value::from("x"), Value::Null];
        let mut buf = Vec::new();
        put_row(&mut buf, &row);
        let mut pos = 0;
        assert_eq!(read_row(&buf, &mut pos).unwrap(), row);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut pos = 0;
        assert!(read_value(&[200], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_value(&[], &mut pos).is_err());
    }

    #[test]
    fn huge_arity_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(read_row(&buf, &mut pos).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::I64),
            any::<u64>().prop_map(Value::U64),
            ".{0,32}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        #[test]
        fn prop_value_roundtrip(v in arb_value()) {
            roundtrip(&v);
        }

        #[test]
        fn prop_row_roundtrip(row in proptest::collection::vec(arb_value(), 0..16)) {
            let mut buf = Vec::new();
            put_row(&mut buf, &row);
            let mut pos = 0;
            prop_assert_eq!(read_row(&buf, &mut pos).unwrap(), row);
            prop_assert_eq!(pos, buf.len());
        }
    }
}
