//! Byte-level run-length encoding.
//!
//! Effective for low-cardinality columns (booleans, null bitsets, repeated
//! enum-like strings after dictionary encoding). The format is a sequence of
//! tokens:
//!
//! ```text
//! token := repeat | literal
//! repeat  := varint(2*run_len + 1)  byte        // run_len >= MIN_RUN
//! literal := varint(2*lit_len)      byte^lit_len
//! ```
//!
//! The low bit of the leading varint distinguishes token kinds, so the
//! stream is self-describing and resynchronises without padding.

use crate::varint::{put_uvarint, read_uvarint};
use logstore_types::{Error, Result};

/// Runs shorter than this are cheaper as literals.
const MIN_RUN: usize = 3;

/// Compresses `input` with RLE.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 8);
    let mut i = 0;
    let mut lit_start = 0;
    while i < input.len() {
        // Measure the run starting at i.
        let b = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literal(&mut out, &input[lit_start..i]);
            put_uvarint(&mut out, (run as u64) * 2 + 1);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literal(&mut out, &input[lit_start..]);
    out
}

fn flush_literal(out: &mut Vec<u8>, lit: &[u8]) {
    if !lit.is_empty() {
        put_uvarint(out, (lit.len() as u64) * 2);
        out.extend_from_slice(lit);
    }
}

/// Decompresses an RLE stream produced by [`compress`].
///
/// `max_len` bounds the output size to protect against decompression bombs
/// from corrupted inputs.
pub fn decompress(input: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let head = read_uvarint(input, &mut pos)?;
        let len = (head / 2) as usize;
        if out.len() + len > max_len {
            return Err(Error::corruption("rle output exceeds declared length"));
        }
        if head & 1 == 1 {
            // Repeat run.
            let b = *input.get(pos).ok_or_else(|| Error::corruption("rle repeat truncated"))?;
            pos += 1;
            out.resize(out.len() + len, b);
        } else {
            let end = pos + len;
            let lit =
                input.get(pos..end).ok_or_else(|| Error::corruption("rle literal truncated"))?;
            out.extend_from_slice(lit);
            pos = end;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[]);
        roundtrip(&[7]);
        roundtrip(&[1, 2]);
    }

    #[test]
    fn long_runs_shrink() {
        let data = vec![0u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 10, "10k zero bytes should compress to a few bytes");
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_survives() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        roundtrip(&data);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = Vec::new();
        data.extend_from_slice(b"abc");
        data.extend(std::iter::repeat_n(b'x', 50));
        data.extend_from_slice(b"defgh");
        data.extend(std::iter::repeat_n(b'y', 3));
        roundtrip(&data);
    }

    #[test]
    fn bomb_protection() {
        let mut c = Vec::new();
        put_uvarint(&mut c, 1_000_000u64 * 2 + 1);
        c.push(0);
        assert!(decompress(&c, 100).is_err());
    }

    #[test]
    fn truncated_streams_error() {
        let c = compress(&[9u8; 100]);
        assert!(decompress(&c[..c.len() - 1], 100).is_err());
        let mut lit = Vec::new();
        put_uvarint(&mut lit, 10 * 2);
        lit.extend_from_slice(&[1, 2, 3]); // claims 10, has 3
        assert!(decompress(&lit, 100).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            roundtrip(&data);
        }

        #[test]
        fn prop_roundtrip_low_cardinality(
            data in proptest::collection::vec(0u8..4, 0..2048)
        ) {
            roundtrip(&data);
        }
    }
}
