//! Delta + zigzag + varint encoding for `i64`/`u64` sequences.
//!
//! Numeric log columns are strongly clustered: timestamps are nearly sorted,
//! latencies are small, tenant ids repeat. Storing the zigzag-encoded
//! difference between consecutive values as varints exploits all of that.

use crate::varint::{put_ivarint, put_uvarint, read_ivarint, read_uvarint};
use logstore_types::{Error, Result};

/// Encodes a sequence of `i64` values.
pub fn encode_i64(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2 + 8);
    put_uvarint(&mut out, values.len() as u64);
    let mut prev = 0i64;
    for &v in values {
        put_ivarint(&mut out, v.wrapping_sub(prev));
        prev = v;
    }
    out
}

/// Decodes a sequence produced by [`encode_i64`].
pub fn decode_i64(buf: &[u8], max_len: usize) -> Result<Vec<i64>> {
    let mut out = Vec::new();
    decode_i64_into(buf, max_len, &mut out)?;
    Ok(out)
}

/// Decodes into a caller-owned buffer so batch scans can reuse allocations.
/// `out` is cleared first.
pub fn decode_i64_into(buf: &[u8], max_len: usize, out: &mut Vec<i64>) -> Result<()> {
    let mut pos = 0;
    let n = read_uvarint(buf, &mut pos)? as usize;
    if n > max_len {
        return Err(Error::corruption("delta stream longer than declared"));
    }
    out.clear();
    out.reserve(n);
    let mut prev = 0i64;
    for _ in 0..n {
        prev = prev.wrapping_add(read_ivarint(buf, &mut pos)?);
        out.push(prev);
    }
    if pos != buf.len() {
        return Err(Error::corruption("trailing bytes after delta stream"));
    }
    Ok(())
}

/// Encodes a sequence of `u64` values (delta via wrapping i64 arithmetic).
pub fn encode_u64(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2 + 8);
    put_uvarint(&mut out, values.len() as u64);
    let mut prev = 0u64;
    for &v in values {
        put_ivarint(&mut out, v.wrapping_sub(prev) as i64);
        prev = v;
    }
    out
}

/// Decodes a sequence produced by [`encode_u64`].
pub fn decode_u64(buf: &[u8], max_len: usize) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    decode_u64_into(buf, max_len, &mut out)?;
    Ok(out)
}

/// Decodes into a caller-owned buffer so batch scans can reuse allocations.
/// `out` is cleared first.
pub fn decode_u64_into(buf: &[u8], max_len: usize, out: &mut Vec<u64>) -> Result<()> {
    let mut pos = 0;
    let n = read_uvarint(buf, &mut pos)? as usize;
    if n > max_len {
        return Err(Error::corruption("delta stream longer than declared"));
    }
    out.clear();
    out.reserve(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev.wrapping_add(read_ivarint(buf, &mut pos)? as u64);
        out.push(prev);
    }
    if pos != buf.len() {
        return Err(Error::corruption("trailing bytes after delta stream"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorted_timestamps_compress_tightly() {
        let ts: Vec<i64> = (0..10_000).map(|i| 1_600_000_000_000 + i * 3).collect();
        let enc = encode_i64(&ts);
        // Each delta is 3 → one byte each plus the count prefix.
        assert!(enc.len() < ts.len() + 16, "encoded {} bytes", enc.len());
        assert_eq!(decode_i64(&enc, ts.len()).unwrap(), ts);
    }

    #[test]
    fn extremes_roundtrip() {
        let vs = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX];
        assert_eq!(decode_i64(&encode_i64(&vs), vs.len()).unwrap(), vs);
        let us = vec![u64::MAX, 0, u64::MAX / 2, 1];
        assert_eq!(decode_u64(&encode_u64(&us), us.len()).unwrap(), us);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(decode_i64(&encode_i64(&[]), 0).unwrap().is_empty());
        assert!(decode_u64(&encode_u64(&[]), 0).unwrap().is_empty());
    }

    #[test]
    fn length_guard() {
        let enc = encode_i64(&[1, 2, 3]);
        assert!(decode_i64(&enc, 2).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_i64(&[1, 2, 3]);
        enc.push(0);
        assert!(decode_i64(&enc, 3).is_err());
    }

    proptest! {
        #[test]
        fn prop_i64_roundtrip(vs in proptest::collection::vec(any::<i64>(), 0..512)) {
            prop_assert_eq!(decode_i64(&encode_i64(&vs), vs.len()).unwrap(), vs);
        }

        #[test]
        fn prop_u64_roundtrip(vs in proptest::collection::vec(any::<u64>(), 0..512)) {
            prop_assert_eq!(decode_u64(&encode_u64(&vs), vs.len()).unwrap(), vs);
        }
    }
}
