//! Self-describing compression frames.
//!
//! A frame is `[compression tag: u8][payload]`; the payload of the LZ
//! codecs already carries its own uncompressed length, and the RLE/None
//! payloads are bounded by the caller-supplied limit. LogBlock column blocks
//! and WAL segments store these frames.

use crate::{lz, rle};
use logstore_types::{Error, Result};
use std::fmt;
use std::str::FromStr;

/// The compression menu (paper §3.2: Snappy, LZ4, ZSTD — ZSTD default).
///
/// `LzFast` stands in for LZ4/Snappy; `LzHigh` stands in for ZSTD. See the
/// crate docs for the substitution rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// Store bytes verbatim.
    None,
    /// Run-length encoding.
    Rle,
    /// Greedy LZ77 ("LZ4-class": fastest, lower ratio).
    LzFast,
    /// Lazy hash-chain LZ77 ("ZSTD-class": slower, best ratio). Default,
    /// matching the paper's choice of ZSTD.
    #[default]
    LzHigh,
}

impl Compression {
    /// Stable one-byte tag used in frames.
    pub fn tag(self) -> u8 {
        match self {
            Compression::None => 0,
            Compression::Rle => 1,
            Compression::LzFast => 2,
            Compression::LzHigh => 3,
        }
    }

    /// Inverse of [`Compression::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Compression::None,
            1 => Compression::Rle,
            2 => Compression::LzFast,
            3 => Compression::LzHigh,
            _ => return None,
        })
    }

    /// All supported codecs (useful for benchmarks).
    pub fn all() -> [Compression; 4] {
        [Compression::None, Compression::Rle, Compression::LzFast, Compression::LzHigh]
    }
}

impl fmt::Display for Compression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Compression::None => "none",
            Compression::Rle => "rle",
            Compression::LzFast => "lz-fast",
            Compression::LzHigh => "lz-high",
        };
        f.write_str(s)
    }
}

impl FromStr for Compression {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "none" => Ok(Compression::None),
            "rle" => Ok(Compression::Rle),
            "lz-fast" | "fast" => Ok(Compression::LzFast),
            "lz-high" | "high" => Ok(Compression::LzHigh),
            other => Err(Error::invalid(format!("unknown compression '{other}'"))),
        }
    }
}

/// Compresses `data` into a self-describing frame.
pub fn compress(compression: Compression, data: &[u8]) -> Vec<u8> {
    let mut payload = match compression {
        Compression::None => data.to_vec(),
        Compression::Rle => rle::compress(data),
        Compression::LzFast => lz::compress_fast(data),
        Compression::LzHigh => lz::compress_high(data),
    };
    // If a codec expands the data (incompressible input), fall back to the
    // raw representation — the frame tag records what actually happened.
    let (tag, payload) = if compression != Compression::None && payload.len() >= data.len() {
        (Compression::None.tag(), data.to_vec())
    } else {
        (compression.tag(), std::mem::take(&mut payload))
    };
    let mut out = Vec::with_capacity(payload.len() + 1);
    out.push(tag);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a frame produced by [`compress`].
///
/// `max_len` bounds the decoded size (bomb guard).
pub fn decompress(frame: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let (&tag, payload) =
        frame.split_first().ok_or_else(|| Error::corruption("empty compression frame"))?;
    let compression = Compression::from_tag(tag)
        .ok_or_else(|| Error::corruption(format!("unknown compression tag {tag}")))?;
    match compression {
        Compression::None => {
            if payload.len() > max_len {
                return Err(Error::corruption("raw frame exceeds limit"));
            }
            Ok(payload.to_vec())
        }
        Compression::Rle => rle::decompress(payload, max_len),
        Compression::LzFast | Compression::LzHigh => lz::decompress(payload, max_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn every_codec_roundtrips() {
        let data: Vec<u8> =
            b"api=/v1/users status=200 ".iter().copied().cycle().take(4096).collect();
        for c in Compression::all() {
            let f = compress(c, &data);
            assert_eq!(decompress(&f, data.len()).unwrap(), data, "codec {c}");
        }
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        // 16 random-ish distinct bytes cannot be LZ/RLE compressed.
        let data: Vec<u8> = (0..16u8).collect();
        let f = compress(Compression::LzHigh, &data);
        assert_eq!(f[0], Compression::None.tag());
        assert_eq!(decompress(&f, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_frame_rejected() {
        assert!(decompress(&[], 10).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(decompress(&[99, 1, 2], 10).is_err());
    }

    #[test]
    fn parse_and_display_names() {
        for c in Compression::all() {
            assert_eq!(c.to_string().parse::<Compression>().unwrap(), c);
        }
        assert!("zstd".parse::<Compression>().is_err());
    }

    #[test]
    fn default_is_high_ratio() {
        assert_eq!(Compression::default(), Compression::LzHigh);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_frames_roundtrip(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            tag in 0u8..4,
        ) {
            let c = Compression::from_tag(tag).unwrap();
            let f = compress(c, &data);
            prop_assert_eq!(decompress(&f, data.len()).unwrap(), data);
        }
    }
}
