//! Shared record-batch payload codec.
//!
//! Both durable paths that carry whole batches — the per-shard WAL and the
//! Raft replication log — use the same wire format: a leading uvarint
//! record count followed by that many serialized rows ([`crate::valser`]).
//! Centralizing the pair here keeps the two paths byte-compatible and gives
//! both the same corruption guards: an implausible record count cannot
//! trigger an unbounded allocation, and a payload with trailing bytes after
//! the last record is rejected instead of silently dropping a suffix.

use crate::valser::{put_row, read_row};
use crate::varint::{put_uvarint, read_uvarint};
use logstore_types::{Error, LogRecord, Result};

/// Serializes records into a WAL/Raft batch payload.
pub fn encode_batch(records: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, records.len() as u64);
    for r in records {
        put_row(&mut out, &r.to_row());
    }
    out
}

/// Decodes a payload written by [`encode_batch`].
pub fn decode_batch(payload: &[u8]) -> Result<Vec<LogRecord>> {
    let mut pos = 0;
    let n = read_uvarint(payload, &mut pos)? as usize;
    // Every record costs at least one byte on the wire, so a count larger
    // than the remaining payload is corrupt — and must not size-hint an
    // allocation.
    if n > payload.len() {
        return Err(Error::corruption("batch count implausible"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let row = read_row(payload, &mut pos)?;
        out.push(LogRecord::from_row(&row)?);
    }
    if pos != payload.len() {
        return Err(Error::corruption("trailing bytes after batch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_types::{TenantId, Timestamp, Value};

    fn rec(t: u64, ts: i64) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![Value::from("ip"), Value::I64(7), Value::Bool(true), Value::from("line")],
        )
    }

    #[test]
    fn roundtrip() {
        let records = vec![rec(1, 5), rec(2, 6), rec(1, 7)];
        let payload = encode_batch(&records);
        assert_eq!(decode_batch(&payload).unwrap(), records);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let payload = encode_batch(&[]);
        assert!(decode_batch(&payload).unwrap().is_empty());
    }

    #[test]
    fn implausible_count_rejected_without_allocation() {
        let mut payload = Vec::new();
        put_uvarint(&mut payload, u64::MAX);
        let err = decode_batch(&payload).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = encode_batch(&[rec(1, 1)]);
        payload.push(0);
        let err = decode_batch(&payload).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn truncated_payload_rejected() {
        let payload = encode_batch(&[rec(1, 1), rec(2, 2)]);
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn value_strategy() -> BoxedStrategy<Value> {
            prop_oneof![
                Just(Value::Null),
                any::<i64>().prop_map(Value::I64),
                any::<u64>().prop_map(Value::U64),
                ".{0,24}".prop_map(Value::Str),
                any::<bool>().prop_map(Value::Bool),
            ]
            .boxed()
        }

        fn batch_strategy() -> BoxedStrategy<Vec<LogRecord>> {
            let record = (any::<u64>(), any::<i64>(), collection::vec(value_strategy(), 0..6))
                .prop_map(|(t, ts, fields)| LogRecord::new(TenantId(t), Timestamp(ts), fields));
            collection::vec(record, 0..12).boxed()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_batches_roundtrip(batch in batch_strategy()) {
                let payload = encode_batch(&batch);
                prop_assert_eq!(decode_batch(&payload).unwrap(), batch);
            }

            // Any strict truncation must surface as corruption — never a
            // panic, and never a silently shorter batch (the leading count
            // pins the expected record total).
            #[test]
            fn prop_truncation_is_detected(batch in batch_strategy(), cut in 1usize..32) {
                let payload = encode_batch(&batch);
                let cut = cut.min(payload.len());
                prop_assert!(decode_batch(&payload[..payload.len() - cut]).is_err());
            }
        }
    }
}
