//! LZ77 compression with two effort profiles.
//!
//! The stream format is LZ4-flavoured (but not LZ4-compatible): a sequence
//! of tokens, each carrying a literal run followed by a back-reference:
//!
//! ```text
//! sequence := token  ext_lit*  literal^lit_len  offset_u16_le  ext_match*
//! token    := (lit_len_nibble << 4) | match_len_nibble
//! ```
//!
//! A nibble of 15 means the length continues in extension bytes (each
//! 0..=255; 255 continues). Match lengths are stored minus [`MIN_MATCH`].
//! The final sequence carries only literals (no offset / match).
//!
//! * [`compress_fast`] — greedy parse with a single-probe hash table. Mirrors
//!   the CPU/ratio point of LZ4/Snappy in the paper's compression menu.
//! * [`compress_high`] — hash-chain match finder with lazy evaluation.
//!   Better ratio at more CPU; stands in for ZSTD, LogStore's default.

use crate::varint::{put_uvarint, read_uvarint};
use logstore_types::{Error, Result};

/// Minimum match length worth encoding (shorter is cheaper as literals).
pub const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (offset is a u16).
pub const MAX_OFFSET: usize = u16::MAX as usize;

const FAST_HASH_BITS: u32 = 15;
const HIGH_HASH_BITS: u32 = 16;
/// How many chain links the high-effort match finder follows.
const HIGH_CHAIN_DEPTH: usize = 64;

#[inline]
fn read4(input: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(input[pos..pos + 4].try_into().expect("4 bytes available"))
}

#[inline]
fn hash(v: u32, bits: u32) -> usize {
    (v.wrapping_mul(2654435761) >> (32 - bits)) as usize
}

/// Length of the common prefix of `input[a..]` and `input[b..]` (bounded by
/// the input end).
#[inline]
fn common_len(input: &[u8], mut a: usize, mut b: usize) -> usize {
    let start = b;
    while b < input.len() && input[a] == input[b] {
        a += 1;
        b += 1;
    }
    b - start
}

fn put_len_nibble(out: &mut Vec<u8>, len: usize) {
    // Extension bytes after a nibble of 15.
    let mut rest = len - 15;
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    debug_assert!(match_len >= MIN_MATCH);
    debug_assert!((1..=MAX_OFFSET).contains(&offset));
    let ml = match_len - MIN_MATCH;
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = ml.min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        put_len_nibble(out, literals.len());
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if ml >= 15 {
        put_len_nibble(out, ml);
    }
}

fn emit_final(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_nibble = literals.len().min(15) as u8;
    out.push(lit_nibble << 4);
    if literals.len() >= 15 {
        put_len_nibble(out, literals.len());
    }
    out.extend_from_slice(literals);
}

/// Greedy single-probe compression (the "fast" profile).
pub fn compress_fast(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_uvarint(&mut out, input.len() as u64);
    if input.len() < MIN_MATCH {
        emit_final(&mut out, input);
        return out;
    }
    // table[h] stores position + 1; 0 means empty.
    let mut table = vec![0u32; 1 << FAST_HASH_BITS];
    let mut i = 0;
    let mut anchor = 0;
    let limit = input.len() - MIN_MATCH;
    while i <= limit {
        let h = hash(read4(input, i), FAST_HASH_BITS);
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let c = cand - 1;
            if i - c <= MAX_OFFSET && read4(input, c) == read4(input, i) {
                let mlen = MIN_MATCH + common_len(input, c + MIN_MATCH, i + MIN_MATCH);
                emit_sequence(&mut out, &input[anchor..i], i - c, mlen);
                i += mlen;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit_final(&mut out, &input[anchor..]);
    out
}

struct ChainFinder {
    head: Vec<u32>,
    prev: Vec<u32>,
}

impl ChainFinder {
    fn new(len: usize) -> Self {
        ChainFinder { head: vec![u32::MAX; 1 << HIGH_HASH_BITS], prev: vec![u32::MAX; len] }
    }

    #[inline]
    fn insert(&mut self, input: &[u8], pos: usize) {
        let h = hash(read4(input, pos), HIGH_HASH_BITS);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as u32;
    }

    /// Longest match ending no further than [`MAX_OFFSET`] back from `pos`.
    fn find(&self, input: &[u8], pos: usize) -> Option<(usize, usize)> {
        let h = hash(read4(input, pos), HIGH_HASH_BITS);
        let mut cand = self.head[h];
        let mut best: Option<(usize, usize)> = None;
        let mut depth = 0;
        while cand != u32::MAX && depth < HIGH_CHAIN_DEPTH {
            let c = cand as usize;
            if c >= pos {
                // `pos` (or a later position) may already be inserted when
                // the lazy path probes ahead; a position cannot match itself.
                cand = self.prev[c];
                continue;
            }
            if pos - c > MAX_OFFSET {
                break; // chain positions only get older
            }
            // Cheap reject: check the byte just past the current best.
            let best_len = best.map_or(MIN_MATCH - 1, |(_, l)| l);
            if pos + best_len < input.len()
                && c + best_len < input.len()
                && input[c + best_len] == input[pos + best_len]
                && read4(input, c) == read4(input, pos)
            {
                let len = MIN_MATCH + common_len(input, c + MIN_MATCH, pos + MIN_MATCH);
                if len > best_len {
                    best = Some((pos - c, len));
                }
            }
            cand = self.prev[c];
            depth += 1;
        }
        best
    }
}

/// Hash-chain compression with lazy matching (the "high" profile).
pub fn compress_high(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_uvarint(&mut out, input.len() as u64);
    if input.len() < MIN_MATCH {
        emit_final(&mut out, input);
        return out;
    }
    let mut finder = ChainFinder::new(input.len());
    let mut i = 0;
    let mut anchor = 0;
    let limit = input.len() - MIN_MATCH;
    while i <= limit {
        finder.insert(input, i);
        let Some((offset, len)) = finder.find(input, i) else {
            i += 1;
            continue;
        };
        // Lazy evaluation: if the match starting at i+1 is strictly longer,
        // emit input[i] as a literal and take the later match instead.
        let (mut offset, mut len) = (offset, len);
        if i < limit {
            finder.insert(input, i + 1);
            if let Some((o2, l2)) = finder.find(input, i + 1) {
                if l2 > len + 1 {
                    i += 1;
                    offset = o2;
                    len = l2;
                }
            }
        }
        emit_sequence(&mut out, &input[anchor..i], offset, len);
        // Index the positions covered by the match so later data can
        // reference into it (skip ones already inserted).
        let match_end = (i + len).min(limit + 1);
        let mut p = i + 1;
        while p < match_end {
            if finder.prev[p] == u32::MAX {
                let h = hash(read4(input, p), HIGH_HASH_BITS);
                if finder.head[h] != p as u32 {
                    finder.insert(input, p);
                }
            }
            p += 1;
        }
        i += len;
        anchor = i;
    }
    emit_final(&mut out, &input[anchor..]);
    out
}

fn read_len_nibble(input: &[u8], pos: &mut usize, nibble: usize) -> Result<usize> {
    if nibble < 15 {
        return Ok(nibble);
    }
    let mut len = 15;
    loop {
        let b =
            *input.get(*pos).ok_or_else(|| Error::corruption("lz length extension truncated"))?;
        *pos += 1;
        len += b as usize;
        if b != 255 {
            return Ok(len);
        }
    }
}

/// Decompresses a stream produced by [`compress_fast`] or [`compress_high`].
///
/// `max_len` bounds the output (decompression-bomb guard); the stream's own
/// declared length must not exceed it.
pub fn decompress(input: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let mut pos = 0;
    let declared = read_uvarint(input, &mut pos)? as usize;
    if declared > max_len {
        return Err(Error::corruption("lz declared length exceeds limit"));
    }
    let mut out = Vec::with_capacity(declared);
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let lit_len = read_len_nibble(input, &mut pos, (token >> 4) as usize)?;
        let lit_end = pos + lit_len;
        let lits =
            input.get(pos..lit_end).ok_or_else(|| Error::corruption("lz literals truncated"))?;
        out.extend_from_slice(lits);
        pos = lit_end;
        if pos == input.len() {
            break; // final literal-only sequence
        }
        let off_bytes =
            input.get(pos..pos + 2).ok_or_else(|| Error::corruption("lz offset truncated"))?;
        let offset = u16::from_le_bytes(off_bytes.try_into().expect("2 bytes")) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(Error::corruption("lz offset out of range"));
        }
        let match_len = MIN_MATCH + read_len_nibble(input, &mut pos, (token & 0x0f) as usize)?;
        if out.len() + match_len > declared {
            return Err(Error::corruption("lz output exceeds declared length"));
        }
        // Byte-wise copy: offsets may overlap the output tail.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != declared {
        return Err(Error::corruption(format!(
            "lz output length {} != declared {}",
            out.len(),
            declared
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip_both(data: &[u8]) {
        for compressed in [compress_fast(data), compress_high(data)] {
            let d = decompress(&compressed, data.len()).unwrap();
            assert_eq!(d, data);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip_both(&[]);
        roundtrip_both(b"a");
        roundtrip_both(b"abc");
        roundtrip_both(b"abcd");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data: Vec<u8> =
            b"GET /api/v1/users 200 12ms ".iter().copied().cycle().take(50_000).collect();
        let fast = compress_fast(&data);
        let high = compress_high(&data);
        assert!(fast.len() < data.len() / 4, "fast ratio too poor: {}", fast.len());
        assert!(high.len() <= fast.len(), "high should not be worse than fast");
        roundtrip_both(&data);
    }

    #[test]
    fn log_like_data_high_beats_fast() {
        // Semi-repetitive log lines with varying numbers.
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(
                format!(
                    "2020-11-11 00:{:02}:{:02} INFO request id={} latency={}ms\n",
                    i / 60 % 60,
                    i % 60,
                    i * 7,
                    i % 300
                )
                .as_bytes(),
            );
        }
        let fast = compress_fast(&data);
        let high = compress_high(&data);
        assert!(high.len() < fast.len(), "high {} !< fast {}", high.len(), fast.len());
        roundtrip_both(&data);
    }

    #[test]
    fn random_data_survives() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        roundtrip_both(&data);
    }

    #[test]
    fn long_run_matches() {
        let mut data = vec![0u8; 100_000];
        data.extend_from_slice(b"tail");
        roundtrip_both(&data);
    }

    #[test]
    fn far_matches_beyond_window_are_not_used() {
        // A 4-byte pattern repeated with > 64KiB gap; must still roundtrip.
        let mut data = b"MAGIC".to_vec();
        data.extend(std::iter::repeat_n(1u8, 70_000));
        data.extend_from_slice(b"MAGIC");
        roundtrip_both(&data);
    }

    #[test]
    fn zero_offset_rejected() {
        // Hand-crafted stream: declared len 4, one sequence with no
        // literals and offset 0 — a back-reference into nothing.
        let mut stream = Vec::new();
        put_uvarint(&mut stream, 4);
        stream.push(0x00); // token: 0 literals, match nibble 0 (len 4)
        stream.extend_from_slice(&0u16.to_le_bytes());
        assert!(decompress(&stream, 16).is_err());
    }

    #[test]
    fn out_of_range_offset_rejected() {
        let mut stream = Vec::new();
        put_uvarint(&mut stream, 8);
        stream.push(0x10); // 1 literal, match len 4
        stream.push(b'a');
        stream.extend_from_slice(&100u16.to_le_bytes()); // only 1 byte out
        assert!(decompress(&stream, 16).is_err());
    }

    #[test]
    fn bomb_guard() {
        let data = vec![7u8; 4096];
        let c = compress_fast(&data);
        assert!(decompress(&c, 16).is_err());
    }

    #[test]
    fn declared_length_mismatch_rejected() {
        let data = b"hello world hello world hello world";
        let c = compress_fast(data);
        // Claim a longer payload than the stream produces.
        let mut forged = Vec::new();
        put_uvarint(&mut forged, 1000);
        forged.extend_from_slice(&c[1..]); // original length fit in 1 byte
        assert!(decompress(&forged, 2000).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip_fast(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress_fast(&data);
            prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_high(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress_high(&data);
            prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_textlike(
            words in proptest::collection::vec("[a-e]{1,6}", 0..400)
        ) {
            let data = words.join(" ").into_bytes();
            let c = compress_high(&data);
            prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
        }

        #[test]
        fn prop_decompress_never_panics(
            garbage in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            let _ = decompress(&garbage, 1 << 16);
        }
    }
}
