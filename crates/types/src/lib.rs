//! Core domain types shared across every LogStore crate.
//!
//! This crate is dependency-light on purpose: it defines the vocabulary of
//! the system — values, schemas, log records, identifiers, errors and time
//! helpers — so that substrate crates (codec, index, logblock, ...) can
//! interoperate without depending on each other.

#![forbid(unsafe_code)]

pub mod archive;
pub mod error;
pub mod ids;
pub mod predicate;
pub mod record;
pub mod schema;
pub mod time;
pub mod value;

pub use archive::{partition_into_chunks, ArchiveChunk};
pub use error::{Error, Result};
pub use ids::{BrokerId, NodeId, ShardId, TenantId, WorkerId};
pub use predicate::{CmpOp, ColumnPredicate};
pub use record::{LogRecord, RecordBatch};
pub use schema::{ColumnSchema, IndexKind, TableSchema};
pub use time::{TimeRange, Timestamp};
pub use value::{DataType, Value};
