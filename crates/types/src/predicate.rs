//! Scalar comparison predicates.
//!
//! These are the atoms shared between the query layer (WHERE clauses) and
//! the storage layer (SMA pruning, index lookup, block scanning). The query
//! crate builds a richer expression AST on top; the storage crates only ever
//! see conjunctions of [`ColumnPredicate`]s.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Full-text term containment (string columns with inverted indexes).
    Contains,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` on concrete values. NULL never matches
    /// (SQL three-valued logic collapsed to false, which is what log
    /// retrieval wants).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() || rhs.is_null() {
            return false;
        }
        match self {
            CmpOp::Contains => match (lhs, rhs) {
                (Value::Str(h), Value::Str(n)) => contains_term(h, n),
                _ => false,
            },
            _ => {
                let ord = lhs.total_cmp(rhs);
                match self {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    CmpOp::Contains => unreachable!(),
                }
            }
        }
    }

    /// True for operators that a min/max SMA can prune on.
    pub fn sma_prunable(self) -> bool {
        !matches!(self, CmpOp::Ne | CmpOp::Contains)
    }
}

/// Case-insensitive whole-term containment, matching the tokenizer rules of
/// the inverted index (alphanumeric runs are terms).
pub fn contains_term(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let needle = needle.to_ascii_lowercase();
    haystack
        .split(|c: char| !c.is_ascii_alphanumeric())
        .any(|tok| tok.eq_ignore_ascii_case(&needle))
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "CONTAINS",
        };
        f.write_str(s)
    }
}

/// One `column op literal` atom.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Literal operand.
    pub value: Value,
}

impl ColumnPredicate {
    /// Constructs a predicate.
    pub fn new(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        ColumnPredicate { column: column.into(), op, value: value.into() }
    }

    /// Evaluates the predicate against a cell value from this column.
    pub fn matches(&self, cell: &Value) -> bool {
        self.op.eval(cell, &self.value)
    }
}

impl fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_operators() {
        let five = Value::I64(5);
        assert!(CmpOp::Eq.eval(&five, &Value::I64(5)));
        assert!(CmpOp::Ne.eval(&five, &Value::I64(6)));
        assert!(CmpOp::Lt.eval(&five, &Value::I64(6)));
        assert!(CmpOp::Le.eval(&five, &Value::I64(5)));
        assert!(CmpOp::Gt.eval(&five, &Value::I64(4)));
        assert!(CmpOp::Ge.eval(&five, &Value::I64(5)));
        assert!(!CmpOp::Gt.eval(&five, &Value::I64(5)));
    }

    #[test]
    fn null_never_matches() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Contains] {
            assert!(!op.eval(&Value::Null, &Value::I64(1)));
            assert!(!op.eval(&Value::I64(1), &Value::Null));
        }
    }

    #[test]
    fn contains_tokenizes() {
        let log = Value::from("GET /api/v1/users?id=42 HTTP/1.1 status=200");
        assert!(CmpOp::Contains.eval(&log, &Value::from("users")));
        assert!(CmpOp::Contains.eval(&log, &Value::from("USERS")));
        assert!(CmpOp::Contains.eval(&log, &Value::from("200")));
        assert!(!CmpOp::Contains.eval(&log, &Value::from("user")));
        assert!(!CmpOp::Contains.eval(&log, &Value::from("")));
    }

    #[test]
    fn predicate_display_and_match() {
        let p = ColumnPredicate::new("latency", CmpOp::Ge, 100i64);
        assert_eq!(p.to_string(), "latency >= 100");
        assert!(p.matches(&Value::I64(150)));
        assert!(!p.matches(&Value::I64(50)));
    }

    #[test]
    fn sma_prunable_classification() {
        assert!(CmpOp::Eq.sma_prunable());
        assert!(CmpOp::Le.sma_prunable());
        assert!(!CmpOp::Ne.sma_prunable());
        assert!(!CmpOp::Contains.sma_prunable());
    }
}
