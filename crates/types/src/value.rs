//! Dynamic values and their types.
//!
//! LogStore columns are typed; individual cells are [`Value`]s. The type
//! system is deliberately small — logs are integers, strings, booleans and
//! timestamps — which keeps the columnar format and the index structures
//! simple and fast.

use std::cmp::Ordering;
use std::fmt;

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer. Timestamps are stored as `Int64` milliseconds.
    Int64,
    /// 64-bit unsigned integer (tenant ids, counters).
    UInt64,
    /// UTF-8 string. Eligible for inverted (full-text) indexing.
    String,
    /// Boolean flag.
    Bool,
}

impl DataType {
    /// True for types indexed with the BKD tree (numeric point index).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::UInt64)
    }

    /// Stable one-byte tag used by on-disk formats.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::UInt64 => 1,
            DataType::String => 2,
            DataType::Bool => 3,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => DataType::Int64,
            1 => DataType::UInt64,
            2 => DataType::String,
            3 => DataType::Bool,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::UInt64 => "UINT64",
            DataType::String => "STRING",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single dynamically-typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit unsigned integer.
    U64(u64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns the value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::I64(_) => Some(DataType::Int64),
            Value::U64(_) => Some(DataType::UInt64),
            Value::Str(_) => Some(DataType::String),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts an `i64`, coercing `U64` when it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Extracts a `u64`, coercing non-negative `I64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering used by SMA computation and predicate evaluation.
    ///
    /// NULL sorts before everything; values of different types compare by
    /// type tag (mixed-type comparisons only arise from malformed queries and
    /// are rejected earlier by the planner, but a total order keeps sorting
    /// infallible). Numeric values compare numerically across `I64`/`U64`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (I64(a), I64(b)) => a.cmp(b),
            (U64(a), U64(b)) => a.cmp(b),
            (I64(a), U64(b)) => cmp_i64_u64(*a, *b),
            (U64(a), I64(b)) => cmp_i64_u64(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Approximate in-memory footprint in bytes, used for cache accounting
    /// and backpressure-by-size.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

fn cmp_i64_u64(a: i64, b: u64) -> Ordering {
    if a < 0 {
        Ordering::Less
    } else {
        (a as u64).cmp(&b)
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::I64(_) | Value::U64(_) => 1,
        Value::Str(_) => 2,
        Value::Bool(_) => 3,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_tags_roundtrip() {
        for dt in [DataType::Int64, DataType::UInt64, DataType::String, DataType::Bool] {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(200), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I64(-5).as_i64(), Some(-5));
        assert_eq!(Value::U64(5).as_i64(), Some(5));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(Value::I64(-1).total_cmp(&Value::U64(0)), Ordering::Less);
        assert_eq!(Value::U64(10).total_cmp(&Value::I64(10)), Ordering::Equal);
        assert_eq!(Value::U64(u64::MAX).total_cmp(&Value::I64(i64::MAX)), Ordering::Greater);
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::I64(1), Value::Null, Value::I64(-3)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::I64(-3));
    }

    #[test]
    fn display_quoting() {
        assert_eq!(Value::from("x").to_string(), "'x'");
        assert_eq!(Value::I64(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn approx_size_counts_string_payload() {
        let small = Value::I64(1).approx_size();
        let big = Value::from("0123456789").approx_size();
        assert_eq!(big, small + 10);
    }
}
