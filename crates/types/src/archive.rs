//! Deterministic partitioning of drained rows into archive chunks.
//!
//! The archive pipeline identifies what a drain produced by a *chunk
//! index*, not by object paths: the data builder uploads one LogBlock per
//! chunk and commits "the first `k` chunks of drain X are durable", and
//! WAL replay re-derives the same chunk sequence to decide which rows of a
//! replayed drain intent are already on OSS. That only works if both sides
//! partition identically, so the partition function lives here, shared.
//!
//! The order is fully determined by the input multiset: tenants ascending,
//! each tenant's rows stable-sorted by timestamp (ties keep arrival
//! order), then split into chunks of at most `chunk_rows` rows. Because a
//! failed upload stops the builder at the first bad chunk, the committed
//! set is always a prefix of this global chunk sequence.

use crate::ids::TenantId;
use crate::record::LogRecord;
use std::collections::BTreeMap;

/// One archive chunk: all rows become a single LogBlock of `tenant`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveChunk {
    /// The tenant every row in this chunk belongs to.
    pub tenant: TenantId,
    /// The chunk's rows, sorted by timestamp.
    pub rows: Vec<LogRecord>,
}

/// Splits drained rows into the canonical chunk sequence.
///
/// `chunk_rows` is the LogBlock row cap (`max_rows_per_logblock`); values
/// below 1 are treated as 1. Chunks come back ordered by
/// `(tenant, chunk index)` and every chunk holds at least one row.
pub fn partition_into_chunks(rows: Vec<LogRecord>, chunk_rows: usize) -> Vec<ArchiveChunk> {
    let chunk_rows = chunk_rows.max(1);
    let mut by_tenant: BTreeMap<TenantId, Vec<LogRecord>> = BTreeMap::new();
    for r in rows {
        by_tenant.entry(r.tenant_id).or_default().push(r);
    }
    let mut chunks = Vec::new();
    for (tenant, mut records) in by_tenant {
        records.sort_by_key(|r| r.ts);
        let mut rest = records;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(chunk_rows));
            chunks.push(ArchiveChunk { tenant, rows: rest });
            rest = tail;
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::value::Value;

    fn rec(t: u64, ts: i64, tag: i64) -> LogRecord {
        LogRecord::new(TenantId(t), Timestamp(ts), vec![Value::I64(tag)])
    }

    #[test]
    fn chunks_are_tenant_ordered_and_ts_sorted() {
        let rows = vec![rec(2, 5, 0), rec(1, 9, 1), rec(1, 3, 2), rec(2, 1, 3)];
        let chunks = partition_into_chunks(rows, 10);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].tenant, TenantId(1));
        assert_eq!(chunks[0].rows[0].ts, Timestamp(3));
        assert_eq!(chunks[0].rows[1].ts, Timestamp(9));
        assert_eq!(chunks[1].tenant, TenantId(2));
        assert_eq!(chunks[1].rows[0].ts, Timestamp(1));
    }

    #[test]
    fn oversized_tenants_split_at_the_cap() {
        let rows: Vec<LogRecord> = (0..7).map(|i| rec(1, i, i)).collect();
        let chunks = partition_into_chunks(rows, 3);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.rows.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn ties_keep_arrival_order() {
        // Stable sort: equal timestamps must not be reordered, or replay
        // could disagree with the builder about chunk membership.
        let rows = vec![rec(1, 7, 10), rec(1, 7, 11), rec(1, 7, 12)];
        let chunks = partition_into_chunks(rows, 2);
        assert_eq!(chunks[0].rows[0].fields[0], Value::I64(10));
        assert_eq!(chunks[0].rows[1].fields[0], Value::I64(11));
        assert_eq!(chunks[1].rows[0].fields[0], Value::I64(12));
    }

    #[test]
    fn zero_cap_is_clamped() {
        let chunks = partition_into_chunks(vec![rec(1, 1, 0), rec(1, 2, 1)], 0);
        assert_eq!(chunks.len(), 2);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// Rows with globally distinct timestamps: with no ties, the chunk
        /// sequence must be a pure function of the row *set*, independent
        /// of arrival order (the property WAL replay relies on).
        fn distinct_rows() -> BoxedStrategy<Vec<LogRecord>> {
            (1usize..40, 1u64..5)
                .prop_map(|(n, tenants)| {
                    (0..n)
                        .map(|i| rec(1 + i as u64 % tenants, i as i64, i as i64))
                        .collect::<Vec<_>>()
                })
                .boxed()
        }

        fn shuffled(mut rows: Vec<LogRecord>, seed: u64) -> Vec<LogRecord> {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..rows.len()).rev() {
                rows.swap(i, rng.gen_range(0..=i));
            }
            rows
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_partition_ignores_arrival_order(
                rows in distinct_rows(),
                seed in any::<u64>(),
                cap in 1usize..9,
            ) {
                let canonical = partition_into_chunks(rows.clone(), cap);
                let permuted = partition_into_chunks(shuffled(rows, seed), cap);
                prop_assert_eq!(canonical, permuted);
            }

            #[test]
            fn prop_chunks_are_well_formed(
                rows in distinct_rows(),
                seed in any::<u64>(),
                cap in 1usize..9,
            ) {
                let rows = shuffled(rows, seed);
                let total = rows.len();
                let chunks = partition_into_chunks(rows, cap);
                let mut seen = 0;
                let mut prev_tenant = None;
                for chunk in &chunks {
                    prop_assert!(!chunk.rows.is_empty());
                    prop_assert!(chunk.rows.len() <= cap);
                    prop_assert!(chunk.rows.iter().all(|r| r.tenant_id == chunk.tenant));
                    prop_assert!(chunk.rows.windows(2).all(|w| w[0].ts <= w[1].ts));
                    // Tenants appear as contiguous ascending runs.
                    if let Some(prev) = prev_tenant {
                        prop_assert!(chunk.tenant >= prev);
                    }
                    prev_tenant = Some(chunk.tenant);
                    seen += chunk.rows.len();
                }
                prop_assert_eq!(seen, total, "no row lost or duplicated");
            }
        }
    }
}
