//! Strongly-typed identifiers for cluster entities.
//!
//! Newtypes over `u64`/`u32` prevent accidental mixing of tenant, shard and
//! worker identifiers in the flow-control and routing code, where all three
//! appear side by side.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw numeric value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies one tenant (customer) of the log service.
    TenantId, u64, "tenant-"
);
id_type!(
    /// Identifies one shard (a horizontal partition of the ingest table).
    ShardId, u32, "shard-"
);
id_type!(
    /// Identifies one worker node in the execution layer.
    WorkerId, u32, "worker-"
);
id_type!(
    /// Identifies one broker in the distributed query layer.
    BrokerId, u32, "broker-"
);
id_type!(
    /// Identifies a participant of a Raft group.
    NodeId, u32, "node-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TenantId(42).to_string(), "tenant-42");
        assert_eq!(ShardId(7).to_string(), "shard-7");
        assert_eq!(WorkerId(0).to_string(), "worker-0");
        assert_eq!(BrokerId(3).to_string(), "broker-3");
        assert_eq!(NodeId(1).to_string(), "node-1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TenantId(1));
        set.insert(TenantId(1));
        set.insert(TenantId(2));
        assert_eq!(set.len(), 2);
        assert!(ShardId(1) < ShardId(2));
    }

    #[test]
    fn from_raw_roundtrip() {
        let t: TenantId = 9u64.into();
        assert_eq!(t.raw(), 9);
    }
}
