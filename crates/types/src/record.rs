//! Log records and batches — the unit of ingestion.

use crate::ids::TenantId;
use crate::schema::TableSchema;
use crate::time::Timestamp;
use crate::value::Value;
use crate::{Error, Result};

/// One log entry as received by the ingest path.
///
/// `tenant_id` and `ts` are first-class (they drive routing and LogBlock
/// partitioning); the remaining columns are positional values matching the
/// table schema minus its two leading key columns.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Owning tenant.
    pub tenant_id: TenantId,
    /// Event time in epoch milliseconds.
    pub ts: Timestamp,
    /// Values for schema columns `2..` (everything after `tenant_id`, `ts`).
    pub fields: Vec<Value>,
}

impl LogRecord {
    /// Constructs a record.
    pub fn new(tenant_id: TenantId, ts: Timestamp, fields: Vec<Value>) -> Self {
        LogRecord { tenant_id, ts, fields }
    }

    /// Expands to a full positional row `[tenant_id, ts, fields...]`.
    pub fn to_row(&self) -> Vec<Value> {
        let mut row = Vec::with_capacity(self.fields.len() + 2);
        row.push(Value::U64(self.tenant_id.raw()));
        row.push(Value::I64(self.ts.millis()));
        row.extend(self.fields.iter().cloned());
        row
    }

    /// Rebuilds a record from a full positional row.
    pub fn from_row(row: &[Value]) -> Result<Self> {
        if row.len() < 2 {
            return Err(Error::invalid("row shorter than the two key columns"));
        }
        let tenant_id =
            row[0].as_u64().ok_or_else(|| Error::invalid("tenant_id column must be UInt64"))?;
        let ts = row[1].as_i64().ok_or_else(|| Error::invalid("ts column must be Int64"))?;
        Ok(LogRecord {
            tenant_id: TenantId(tenant_id),
            ts: Timestamp(ts),
            fields: row[2..].to_vec(),
        })
    }

    /// Validates the record against `schema` (which must include the two
    /// leading key columns).
    pub fn validate(&self, schema: &TableSchema) -> Result<()> {
        schema.check_row(&self.to_row())
    }

    /// Approximate wire size, used for traffic accounting and backpressure.
    pub fn approx_size(&self) -> usize {
        16 + self.fields.iter().map(Value::approx_size).sum::<usize>()
    }
}

/// A batch of records ingested together (the paper's write-latency
/// measurements use batches of 1000 entries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordBatch {
    /// The records.
    pub records: Vec<LogRecord>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch { records: Vec::new() }
    }

    /// Wraps a vector of records.
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        RecordBatch { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total approximate size in bytes.
    pub fn approx_size(&self) -> usize {
        self.records.iter().map(LogRecord::approx_size).sum()
    }

    /// Minimum and maximum timestamps, if non-empty.
    pub fn ts_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        let mut it = self.records.iter().map(|r| r.ts);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for t in it {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        Some((lo, hi))
    }
}

impl FromIterator<LogRecord> for RecordBatch {
    fn from_iter<I: IntoIterator<Item = LogRecord>>(iter: I) -> Self {
        RecordBatch { records: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn sample(t: u64, ts: i64) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![
                Value::from("10.0.0.1"),
                Value::from("/api/v1"),
                Value::I64(12),
                Value::Bool(false),
                Value::from("GET /api/v1 ok"),
            ],
        )
    }

    #[test]
    fn row_roundtrip() {
        let r = sample(7, 1234);
        let row = r.to_row();
        assert_eq!(row[0], Value::U64(7));
        assert_eq!(row[1], Value::I64(1234));
        assert_eq!(LogRecord::from_row(&row).unwrap(), r);
    }

    #[test]
    fn from_row_rejects_bad_keys() {
        assert!(LogRecord::from_row(&[Value::I64(1)]).is_err());
        assert!(LogRecord::from_row(&[Value::from("x"), Value::I64(1)]).is_err());
        assert!(LogRecord::from_row(&[Value::U64(1), Value::from("x")]).is_err());
    }

    #[test]
    fn validates_against_request_log_schema() {
        let schema = TableSchema::request_log();
        assert!(sample(1, 1).validate(&schema).is_ok());
        let mut bad = sample(1, 1);
        bad.fields.pop();
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn batch_bounds_and_size() {
        let b = RecordBatch::from_records(vec![sample(1, 5), sample(1, 2), sample(2, 9)]);
        assert_eq!(b.ts_bounds(), Some((Timestamp(2), Timestamp(9))));
        assert_eq!(b.len(), 3);
        assert!(b.approx_size() > 0);
        assert_eq!(RecordBatch::new().ts_bounds(), None);
    }
}
