//! Table and column schemas.
//!
//! Every LogBlock is *self-contained* (paper §3.2): it embeds its full
//! [`TableSchema`] so a block can be parsed after being renamed or moved.
//! Schemas are small and cloned freely behind `Arc` at higher layers.

use crate::value::{DataType, Value};
use crate::{Error, Result};

/// Which secondary index is built for a column inside a LogBlock.
///
/// The paper indexes *all* columns ("Full-column indexed and Skippable"):
/// strings get an inverted index, numerics a BKD tree. `None` is supported to
/// reproduce the paper's data-skipping example where a column (e.g.
/// `latency`) is left un-indexed and must fall back to SMA + scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No per-column index; only SMA-based block skipping applies.
    None,
    /// Inverted (term → row ids) index with whole-value exact terms AND
    /// tokens; requires a string column. Right for keyword-like fields
    /// (ip, api) that are queried with equality.
    Inverted,
    /// Block KD-tree point index; requires a numeric column.
    Bkd,
    /// Inverted index with tokens only (no whole-value exact terms); right
    /// for free-text fields (log lines) where equality queries are rare
    /// and exact terms would duplicate the column inside the dictionary —
    /// the Lucene keyword-vs-text distinction.
    FullText,
}

impl IndexKind {
    /// Stable one-byte tag for on-disk formats.
    pub fn tag(self) -> u8 {
        match self {
            IndexKind::None => 0,
            IndexKind::Inverted => 1,
            IndexKind::Bkd => 2,
            IndexKind::FullText => 3,
        }
    }

    /// Inverse of [`IndexKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => IndexKind::None,
            1 => IndexKind::Inverted,
            2 => IndexKind::Bkd,
            3 => IndexKind::FullText,
            _ => return None,
        })
    }

    /// The default index for a data type, mirroring the paper's
    /// "inverted index and BKD tree index, corresponding to string type and
    /// numerical type respectively".
    pub fn default_for(dt: DataType) -> Self {
        match dt {
            DataType::String => IndexKind::Inverted,
            DataType::Int64 | DataType::UInt64 => IndexKind::Bkd,
            DataType::Bool => IndexKind::None,
        }
    }
}

/// Schema of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSchema {
    /// Column name; unique within a table, case-sensitive.
    pub name: String,
    /// Physical type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
    /// Index built inside each LogBlock for this column.
    pub index: IndexKind,
}

impl ColumnSchema {
    /// Creates a column with the default index for its type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnSchema {
            name: name.into(),
            data_type,
            nullable: true,
            index: IndexKind::default_for(data_type),
        }
    }

    /// Disables indexing on this column.
    pub fn without_index(mut self) -> Self {
        self.index = IndexKind::None;
        self
    }

    /// Marks a string column as free text: tokens are indexed for CONTAINS
    /// but no whole-value exact terms are stored.
    pub fn full_text(mut self) -> Self {
        self.index = IndexKind::FullText;
        self
    }

    /// Marks the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Validates that `v` may be stored in this column.
    pub fn check_value(&self, v: &Value) -> Result<()> {
        match v.data_type() {
            None if self.nullable => Ok(()),
            None => Err(Error::invalid(format!("column '{}' is NOT NULL", self.name))),
            Some(dt) if dt == self.data_type => Ok(()),
            Some(dt) => Err(Error::invalid(format!(
                "column '{}' expects {} but got {}",
                self.name, self.data_type, dt
            ))),
        }
    }
}

/// Schema of a log table.
///
/// By convention the first two columns of every LogStore table are
/// `tenant_id: UInt64` and `ts: Int64` — the partition keys that organise
/// LogBlocks on object storage (paper §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnSchema>,
}

impl TableSchema {
    /// Creates a schema, validating column-name uniqueness.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSchema>) -> Result<Self> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::invalid(format!("duplicate column '{}'", c.name)));
            }
        }
        Ok(TableSchema { name, columns })
    }

    /// The standard application-log table used throughout the paper's
    /// evaluation: `tenant_id, ts, ip, api, latency, fail, log`.
    ///
    /// `latency` is left un-indexed to reproduce the paper's Figure 8
    /// data-skipping walk-through, where an un-indexed column is pruned via
    /// per-block SMA and otherwise scanned.
    pub fn request_log() -> Self {
        TableSchema::new(
            "request_log",
            vec![
                ColumnSchema::new("tenant_id", DataType::UInt64).not_null(),
                ColumnSchema::new("ts", DataType::Int64).not_null(),
                ColumnSchema::new("ip", DataType::String),
                ColumnSchema::new("api", DataType::String),
                ColumnSchema::new("latency", DataType::Int64).without_index(),
                ColumnSchema::new("fail", DataType::Bool),
                ColumnSchema::new("log", DataType::String).full_text(),
            ],
        )
        .expect("static schema is valid")
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Finds a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Finds a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnSchema> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Validates a full row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::invalid(format!(
                "row has {} values, table '{}' has {} columns",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(row) {
            col.check_value(v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_log_shape() {
        let s = TableSchema::request_log();
        assert_eq!(s.width(), 7);
        assert_eq!(s.columns[0].name, "tenant_id");
        assert_eq!(s.columns[1].name, "ts");
        assert_eq!(s.column("latency").unwrap().index, IndexKind::None);
        assert_eq!(s.column("ip").unwrap().index, IndexKind::Inverted);
        assert_eq!(s.column("ts").unwrap().index, IndexKind::Bkd);
        assert_eq!(s.column("log").unwrap().index, IndexKind::FullText);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = TableSchema::new(
            "t",
            vec![ColumnSchema::new("a", DataType::Int64), ColumnSchema::new("a", DataType::String)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn check_row_validates_types_and_arity() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnSchema::new("a", DataType::Int64).not_null(),
                ColumnSchema::new("b", DataType::String),
            ],
        )
        .unwrap();
        assert!(s.check_row(&[Value::I64(1), Value::from("x")]).is_ok());
        assert!(s.check_row(&[Value::I64(1), Value::Null]).is_ok());
        assert!(s.check_row(&[Value::Null, Value::Null]).is_err()); // NOT NULL
        assert!(s.check_row(&[Value::from("x"), Value::Null]).is_err()); // type
        assert!(s.check_row(&[Value::I64(1)]).is_err()); // arity
    }

    #[test]
    fn index_kind_tags_roundtrip() {
        for k in [IndexKind::None, IndexKind::Inverted, IndexKind::Bkd, IndexKind::FullText] {
            assert_eq!(IndexKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(IndexKind::from_tag(9), None);
    }
}
