//! Timestamp helpers.
//!
//! LogStore orders and partitions data by time; timestamps are milliseconds
//! since the Unix epoch stored as `i64` (matching the `ts` column type).

use std::fmt;
use std::ops::{Add, Sub};
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Current wall-clock time.
    pub fn now() -> Self {
        let ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as i64).unwrap_or(0);
        Timestamp(ms)
    }

    /// Constructs from raw milliseconds.
    #[inline]
    pub fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Raw milliseconds.
    #[inline]
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Saturating addition of a millisecond delta.
    pub fn saturating_add_millis(self, delta: i64) -> Self {
        Timestamp(self.0.saturating_add(delta))
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// An inclusive time range `[start, end]` used for LogBlock pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Inclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// Constructs a range; `start` must not exceed `end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(start <= end, "inverted time range");
        TimeRange { start, end }
    }

    /// The unbounded range.
    pub fn all() -> Self {
        TimeRange { start: Timestamp::MIN, end: Timestamp::MAX }
    }

    /// True if `ts` lies inside the range.
    #[inline]
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.start <= ts && ts <= self.end
    }

    /// True if two ranges share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(TimeRange { start, end })
    }
}

impl Default for TimeRange {
    fn default() -> Self {
        TimeRange::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains_and_overlaps() {
        let r = TimeRange::new(Timestamp(10), Timestamp(20));
        assert!(r.contains(Timestamp(10)));
        assert!(r.contains(Timestamp(20)));
        assert!(!r.contains(Timestamp(21)));
        assert!(r.overlaps(&TimeRange::new(Timestamp(20), Timestamp(30))));
        assert!(!r.overlaps(&TimeRange::new(Timestamp(21), Timestamp(30))));
    }

    #[test]
    fn range_intersection() {
        let a = TimeRange::new(Timestamp(0), Timestamp(10));
        let b = TimeRange::new(Timestamp(5), Timestamp(15));
        assert_eq!(a.intersect(&b), Some(TimeRange::new(Timestamp(5), Timestamp(10))));
        let c = TimeRange::new(Timestamp(11), Timestamp(12));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t + 5, Timestamp(105));
        assert_eq!(Timestamp(105) - t, 5);
        assert_eq!(Timestamp::MAX.saturating_add_millis(10), Timestamp::MAX);
    }

    #[test]
    fn now_is_positive() {
        assert!(Timestamp::now().millis() > 0);
    }
}
