//! Unified error type for the LogStore workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// The error type shared by every LogStore crate.
///
/// Variants are grouped by subsystem. The type intentionally carries enough
/// structure for callers to react programmatically (e.g. retry on
/// [`Error::Backpressure`]) while keeping messages human-readable.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (local disk, simulated object storage, ...).
    Io(std::io::Error),
    /// A serialized structure failed validation (bad magic, short buffer,
    /// checksum mismatch, ...).
    Corruption(String),
    /// The request referenced an entity that does not exist.
    NotFound(String),
    /// The request is malformed or violates schema constraints.
    InvalidArgument(String),
    /// A SQL text could not be parsed.
    Parse(String),
    /// Plan-time or execution-time query failure.
    Query(String),
    /// The system is shedding load; the caller should throttle and retry.
    /// Produced by the backpressure flow-control (BFC) mechanism.
    Backpressure(String),
    /// Raft-layer failure (not leader, term change, lost quorum, ...).
    Raft(String),
    /// The caller raced a concurrent metadata change (a block it was
    /// reading was expired or compacted away mid-operation). The view it
    /// planned against is stale; re-planning against the current map is
    /// expected to succeed.
    Stale(String),
    /// Cluster-management failure (no such shard/worker, routing error, ...).
    Cluster(String),
    /// The component is shutting down.
    Shutdown,
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl Error {
    /// Short helper for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Short helper for invalid-argument errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Returns true if the operation may succeed when retried later.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Backpressure(_) | Error::Raft(_) | Error::Stale(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Backpressure(m) => write!(f, "backpressure: {m}"),
            Error::Raft(m) => write!(f, "raft: {m}"),
            Error::Stale(m) => write!(f, "stale metadata: {m}"),
            Error::Cluster(m) => write!(f, "cluster: {m}"),
            Error::Shutdown => write!(f, "component is shutting down"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_prefixed() {
        assert!(Error::corruption("bad magic").to_string().contains("corruption"));
        assert!(Error::invalid("x").to_string().contains("invalid argument"));
        assert!(Error::Shutdown.to_string().contains("shutting down"));
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let e: Error = std::io::Error::other("boom").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::Backpressure("q full".into()).is_retryable());
        assert!(Error::Raft("not leader".into()).is_retryable());
        assert!(Error::Stale("block gone".into()).is_retryable());
        assert!(!Error::corruption("x").is_retryable());
    }
}
