//! Fault injection for object storage.
//!
//! Production OSS fails: throttling (HTTP 503), transient network errors,
//! slow tails. [`FaultyStore`] wraps any backend with a deterministic
//! failure schedule so tests can verify that every layer above — pack
//! reads, cache fills, prefetch waves, queries — surfaces errors instead
//! of corrupting state, and that retries eventually succeed.

use crate::store::ObjectStore;
use logstore_types::{Error, Result};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which operations to inject failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Only reads (GET/range-GET/HEAD/LIST).
    Reads,
    /// Only writes (PUT/DELETE).
    Writes,
    /// Everything.
    All,
}

/// An [`ObjectStore`] decorator that fails operations on a schedule.
pub struct FaultyStore<S> {
    inner: S,
    scope: FaultScope,
    /// Probability of failing an in-scope op.
    probability: f64,
    rng: Mutex<StdRng>,
    /// Fail the next N in-scope operations unconditionally.
    fail_next: AtomicU64,
    injected: AtomicU64,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wraps `inner`, failing in-scope operations with `probability`
    /// (deterministic under `seed`).
    pub fn new(inner: S, scope: FaultScope, probability: f64, seed: u64) -> Self {
        FaultyStore {
            inner,
            scope,
            probability,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            fail_next: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Queues `n` unconditional failures for the next in-scope operations.
    pub fn fail_next(&self, n: u64) {
        self.fail_next.store(n, Ordering::SeqCst);
    }

    /// Clears any scheduled unconditional failures.
    pub fn clear_faults(&self) {
        self.fail_next.store(0, Ordering::SeqCst);
    }

    /// Number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn maybe_fail(&self, is_read: bool, op: &str) -> Result<()> {
        let in_scope = match self.scope {
            FaultScope::Reads => is_read,
            FaultScope::Writes => !is_read,
            FaultScope::All => true,
        };
        if !in_scope {
            return Ok(());
        }
        let scheduled = self
            .fail_next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        let random = self.probability > 0.0 && self.rng.lock().gen_bool(self.probability);
        if scheduled || random {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(Error::Io(std::io::Error::other(format!(
                "injected oss fault during {op} (simulated 503)"
            ))));
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        self.maybe_fail(false, "put")?;
        self.inner.put(path, data)
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        self.maybe_fail(true, "get")?;
        self.inner.get(path)
    }

    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.maybe_fail(true, "get_range")?;
        self.inner.get_range(path, offset, len)
    }

    fn head(&self, path: &str) -> Result<u64> {
        self.maybe_fail(true, "head")?;
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.maybe_fail(true, "list")?;
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.maybe_fail(false, "delete")?;
        self.inner.delete(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;

    #[test]
    fn scheduled_failures_hit_then_clear() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1);
        s.put("k", b"v").unwrap();
        s.fail_next(2);
        assert!(s.get("k").is_err());
        assert!(s.get("k").is_err());
        assert_eq!(s.get("k").unwrap(), b"v");
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn scope_limits_injection() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        s.fail_next(1);
        // Reads are out of scope: the scheduled failure waits for a write.
        assert!(matches!(s.get("missing"), Err(Error::NotFound(_))));
        assert!(s.put("k", b"v").is_err());
        assert!(s.put("k", b"v").is_ok());
    }

    #[test]
    fn probabilistic_failures_are_deterministic() {
        let a = FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.5, 9);
        let b = FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.5, 9);
        a.inner().put("k", b"v").unwrap();
        b.inner().put("k", b"v").unwrap();
        let pattern_a: Vec<bool> = (0..50).map(|_| a.get("k").is_ok()).collect();
        let pattern_b: Vec<bool> = (0..50).map(|_| b.get("k").is_ok()).collect();
        assert_eq!(pattern_a, pattern_b);
        assert!(pattern_a.iter().any(|ok| *ok));
        assert!(pattern_a.iter().any(|ok| !*ok));
    }

    #[test]
    fn state_never_corrupts_under_write_faults() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        s.put("stable", b"original").unwrap();
        s.fail_next(1);
        assert!(s.put("stable", b"replacement").is_err());
        // The failed PUT must not have partially applied.
        assert_eq!(s.get("stable").unwrap(), b"original");
        s.put("stable", b"replacement").unwrap();
        assert_eq!(s.get("stable").unwrap(), b"replacement");
    }
}
