//! Fault injection for object storage.
//!
//! Production OSS fails: throttling (HTTP 503), transient network errors,
//! slow tails. [`FaultyStore`] wraps any backend with a deterministic
//! failure schedule so tests can verify that every layer above — pack
//! reads, cache fills, prefetch waves, queries — surfaces errors instead
//! of corrupting state, and that retries eventually succeed.
//!
//! Three injection modes compose (any of them can fire an op):
//! * **probabilistic** — each in-scope op fails with probability `p`,
//!   deterministic under the seed;
//! * **countdown** — [`FaultyStore::fail_next`] fails the next `n`
//!   in-scope ops unconditionally;
//! * **op-indexed** — [`FaultyStore::fail_ops`] fails exact in-scope
//!   operation indexes (half-open ranges over the lifetime op counter),
//!   letting a simulation schedule say "ops 17..19 of this episode fail"
//!   and replay it exactly.
//!
//! Scope, probability and the op schedule are runtime-mutable so a
//! long-lived engine can move through fault windows mid-episode.

use crate::store::ObjectStore;
use logstore_sync::OrderedMutex;
use logstore_types::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which operations to inject failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Only reads (GET/range-GET/HEAD/LIST).
    Reads,
    /// Only writes (PUT/DELETE).
    Writes,
    /// Everything.
    All,
}

/// The mutable part of the failure schedule.
#[derive(Debug, Clone)]
struct FaultPlan {
    scope: FaultScope,
    /// Probability of failing an in-scope op.
    probability: f64,
    /// Exact in-scope op indexes to fail (half-open ranges).
    fail_ops: Vec<Range<u64>>,
}

/// An [`ObjectStore`] decorator that fails operations on a schedule.
pub struct FaultyStore<S> {
    inner: S,
    plan: OrderedMutex<FaultPlan>,
    rng: OrderedMutex<StdRng>,
    /// Fail the next N in-scope operations unconditionally.
    fail_next: AtomicU64,
    /// Lifetime count of in-scope operations (the index space of
    /// [`FaultyStore::fail_ops`]). Out-of-scope ops don't advance it, so
    /// a Writes-scoped schedule is immune to how many reads interleave.
    ops: AtomicU64,
    injected: AtomicU64,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wraps `inner`, failing in-scope operations with `probability`
    /// (deterministic under `seed`).
    pub fn new(inner: S, scope: FaultScope, probability: f64, seed: u64) -> Self {
        FaultyStore {
            inner,
            plan: OrderedMutex::new(
                "oss.fault.plan",
                FaultPlan { scope, probability, fail_ops: Vec::new() },
            ),
            rng: OrderedMutex::new("oss.fault.rng", StdRng::seed_from_u64(seed)),
            fail_next: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Queues `n` unconditional failures for the next in-scope operations.
    pub fn fail_next(&self, n: u64) {
        self.fail_next.store(n, Ordering::SeqCst);
    }

    /// Replaces the op-indexed failure schedule: in-scope operation number
    /// `i` (see [`FaultyStore::op_index`]) fails iff some range contains
    /// `i`. Deterministic by construction — no rng draw involved.
    pub fn fail_ops(&self, ranges: &[Range<u64>]) {
        self.plan.lock().fail_ops = ranges.to_vec();
    }

    /// Sets the probability applied to in-scope ops from now on.
    pub fn set_probability(&self, probability: f64) {
        self.plan.lock().probability = probability;
    }

    /// Sets which operations are in scope from now on.
    pub fn set_scope(&self, scope: FaultScope) {
        self.plan.lock().scope = scope;
    }

    /// Clears scheduled failures (countdown and op-indexed). Probability
    /// is left as-is; use [`FaultyStore::set_probability`] for that.
    pub fn clear_faults(&self) {
        self.fail_next.store(0, Ordering::SeqCst);
        self.plan.lock().fail_ops.clear();
    }

    /// Number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Lifetime count of in-scope operations seen — the next in-scope op
    /// gets this index. Lets a schedule target "the 3rd PUT from now":
    /// `fail_ops(&[op_index() + 2..op_index() + 3])`.
    pub fn op_index(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn maybe_fail(&self, is_read: bool, op: &str) -> Result<()> {
        logstore_sync::assert_no_locks_held("FaultyStore OSS request");
        let (in_scope, probability, op_scheduled) = {
            let plan = self.plan.lock();
            let in_scope = match plan.scope {
                FaultScope::Reads => is_read,
                FaultScope::Writes => !is_read,
                FaultScope::All => true,
            };
            if !in_scope {
                (false, 0.0, false)
            } else {
                // Claim this op's index while the plan is held so the
                // index check and the counter bump are one atomic step.
                let idx = self.ops.fetch_add(1, Ordering::SeqCst);
                (true, plan.probability, plan.fail_ops.iter().any(|r| r.contains(&idx)))
            }
        };
        if !in_scope {
            return Ok(());
        }
        // checked_sub makes the countdown claim atomic: n concurrent ops
        // racing a fail_next(n) consume exactly n failures, never more.
        let countdown = self
            .fail_next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        let random = probability > 0.0 && self.rng.lock().gen_bool(probability);
        if op_scheduled || countdown || random {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(Error::Io(std::io::Error::other(format!(
                "injected oss fault during {op} (simulated 503)"
            ))));
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        self.maybe_fail(false, "put")?;
        self.inner.put(path, data)
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        self.maybe_fail(true, "get")?;
        self.inner.get(path)
    }

    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.maybe_fail(true, "get_range")?;
        self.inner.get_range(path, offset, len)
    }

    fn head(&self, path: &str) -> Result<u64> {
        self.maybe_fail(true, "head")?;
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.maybe_fail(true, "list")?;
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.maybe_fail(false, "delete")?;
        self.inner.delete(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use std::sync::Arc;

    #[test]
    fn scheduled_failures_hit_then_clear() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1);
        s.put("k", b"v").unwrap();
        s.fail_next(2);
        assert!(s.get("k").is_err());
        assert!(s.get("k").is_err());
        assert_eq!(s.get("k").unwrap(), b"v");
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn scope_limits_injection() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        s.fail_next(1);
        // Reads are out of scope: the scheduled failure waits for a write.
        assert!(matches!(s.get("missing"), Err(Error::NotFound(_))));
        assert!(s.put("k", b"v").is_err());
        assert!(s.put("k", b"v").is_ok());
    }

    #[test]
    fn probabilistic_failures_are_deterministic() {
        let a = FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.5, 9);
        let b = FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.5, 9);
        a.inner().put("k", b"v").unwrap();
        b.inner().put("k", b"v").unwrap();
        let pattern_a: Vec<bool> = (0..50).map(|_| a.get("k").is_ok()).collect();
        let pattern_b: Vec<bool> = (0..50).map(|_| b.get("k").is_ok()).collect();
        assert_eq!(pattern_a, pattern_b);
        assert!(pattern_a.iter().any(|ok| *ok));
        assert!(pattern_a.iter().any(|ok| !*ok));
    }

    #[test]
    fn state_never_corrupts_under_write_faults() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        s.put("stable", b"original").unwrap();
        s.fail_next(1);
        assert!(s.put("stable", b"replacement").is_err());
        // The failed PUT must not have partially applied.
        assert_eq!(s.get("stable").unwrap(), b"original");
        s.put("stable", b"replacement").unwrap();
        assert_eq!(s.get("stable").unwrap(), b"replacement");
    }

    #[test]
    fn op_indexed_schedule_fails_exact_operations() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1);
        s.fail_ops(&[1..3, 5..6]);
        s.put("k", b"v").unwrap(); // op 0
        assert!(s.get("k").is_err()); // op 1
        assert!(s.get("k").is_err()); // op 2
        assert!(s.get("k").is_ok()); // op 3
        assert!(s.get("k").is_ok()); // op 4
        assert!(s.get("k").is_err()); // op 5
        assert!(s.get("k").is_ok()); // op 6
        assert_eq!(s.injected(), 3);
        assert_eq!(s.op_index(), 7);
    }

    #[test]
    fn op_index_ignores_out_of_scope_operations() {
        // A Writes schedule must be replayable regardless of how many
        // reads (queries, prefetch) interleave: reads don't advance the
        // counter.
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        s.fail_ops(&[1..2]);
        s.put("a", b"v").unwrap(); // write op 0
        for _ in 0..10 {
            let _ = s.get("a"); // out of scope, not counted
        }
        assert_eq!(s.op_index(), 1);
        assert!(s.put("b", b"v").is_err()); // write op 1
        assert!(s.put("c", b"v").is_ok()); // write op 2
    }

    #[test]
    fn runtime_setters_reshape_the_plan() {
        let s = FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 7);
        s.put("k", b"v").unwrap();
        s.set_probability(1.0);
        assert!(s.get("k").is_err());
        s.set_probability(0.0);
        assert!(s.get("k").is_ok());
        s.set_scope(FaultScope::Reads);
        s.fail_next(1);
        s.put("k", b"v").unwrap(); // writes now out of scope
        assert!(s.get("k").is_err());
        s.fail_ops(&[100..200]);
        s.clear_faults();
        assert!(s.get("k").is_ok());
    }

    #[test]
    fn concurrent_countdown_injects_exactly_n() {
        // Regression: fail_next must decrement atomically — 8 racing
        // readers against a countdown of 16 inject exactly 16 failures,
        // never more (a read-then-store would over-inject).
        let s = Arc::new(FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1));
        s.put("k", b"v").unwrap();
        s.fail_next(16);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || (0..4).filter(|_| s.get("k").is_err()).count())
            })
            .collect();
        let failures: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(failures, 16);
        assert_eq!(s.injected(), 16);
    }
}
