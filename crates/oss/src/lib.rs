//! Cloud object storage abstraction and simulator.
//!
//! The paper's cloud storage layer is Alibaba OSS: a durable, cheap object
//! store accessed over HTTP with high per-request latency and limited,
//! fluctuating bandwidth. This crate provides:
//!
//! * [`ObjectStore`] — the minimal API LogStore needs (PUT / GET /
//!   range-GET / HEAD / LIST / DELETE over immutable objects).
//! * [`MemoryStore`] and [`DiskStore`] — fast backends for tests and for the
//!   "local storage" baseline of Figure 16.
//! * [`SimulatedOss`] — a wrapper imposing a configurable latency and
//!   bandwidth model, so experiments reproduce the *cost structure* of
//!   remote object storage on a laptop. Modelled time is always accounted
//!   in [`OssMetrics`]; actually sleeping is controlled by a time-scale
//!   knob so unit tests run instantly while figure harnesses can produce
//!   wall-clock shapes.

#![forbid(unsafe_code)]

pub mod disk;
pub mod fault;
pub mod memory;
pub mod retry;
pub mod sim;
pub mod store;

pub use disk::DiskStore;
pub use fault::{FaultScope, FaultyStore};
pub use memory::MemoryStore;
pub use retry::{RetryMetrics, RetryPolicy, RetryingStore};
pub use sim::{LatencyModel, OssMetrics, SimulatedOss};
pub use store::{validate_path, ObjectStore};
