//! Transient-failure retry decorator for object storage.
//!
//! Production OSS throttles (HTTP 503) and drops connections; the paper's
//! archive path must tolerate that without losing acknowledged writes.
//! [`RetryingStore`] wraps any backend and re-issues failed operations with
//! exponential backoff and deterministic jitter. Only transient errors are
//! retried — `NotFound`, corruption and invalid-argument failures surface
//! immediately. Backoff time is *modelled* (accounted in [`RetryMetrics`])
//! and only actually slept in proportion to `time_scale`, so unit tests run
//! instantly while wall-clock harnesses can reproduce realistic pacing.

use crate::store::ObjectStore;
use logstore_sync::OrderedMutex;
use logstore_types::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Retry/backoff tuning knobs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_backoff_us: u64,
    /// Backoff cap, in microseconds (exponential growth saturates here).
    pub max_backoff_us: u64,
    /// Multiplicative jitter: each delay is scaled by a uniform factor in
    /// `[1 - jitter, 1 + jitter]` so retry storms decorrelate.
    pub jitter: f64,
    /// Fraction of each modelled backoff actually slept (0.0 = never).
    pub time_scale: f64,
}

impl RetryPolicy {
    /// No retries at all: every error surfaces on the first attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_us: 0,
            max_backoff_us: 0,
            jitter: 0.0,
            time_scale: 0.0,
        }
    }

    /// The archive-path default: 6 attempts, 10 ms base backoff doubling
    /// up to 2 s, 20% jitter, no real sleeping.
    pub fn archival_default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_us: 10_000,
            max_backoff_us: 2_000_000,
            jitter: 0.2,
            time_scale: 0.0,
        }
    }

    /// Returns `self` with an explicit attempt budget.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::archival_default()
    }
}

/// Counters exposed by [`RetryingStore`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RetryMetrics {
    /// Operations issued through the decorator (first attempts).
    pub operations: u64,
    /// Re-issued attempts after a transient failure.
    pub retries: u64,
    /// Operations that failed even after the full attempt budget.
    pub exhausted: u64,
    /// Total modelled backoff time, nanoseconds.
    pub backoff_ns: u64,
}

impl RetryMetrics {
    /// Modelled backoff as a [`Duration`].
    pub fn backoff(&self) -> Duration {
        Duration::from_nanos(self.backoff_ns)
    }
}

#[derive(Debug, Default)]
struct Counters {
    operations: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
    backoff_ns: AtomicU64,
}

/// An [`ObjectStore`] decorator that retries transient failures.
#[derive(Debug)]
pub struct RetryingStore<S> {
    inner: S,
    policy: RetryPolicy,
    counters: Counters,
    rng: OrderedMutex<StdRng>,
}

/// Whether an error class may succeed on a retry of the same request.
fn is_transient(e: &Error) -> bool {
    matches!(e, Error::Io(_)) || e.is_retryable()
}

impl<S: ObjectStore> RetryingStore<S> {
    /// Wraps `inner`; `seed` makes the backoff jitter deterministic.
    pub fn new(inner: S, policy: RetryPolicy, seed: u64) -> Self {
        RetryingStore {
            inner,
            policy,
            counters: Counters::default(),
            rng: OrderedMutex::new("oss.retry.rng", StdRng::seed_from_u64(seed)),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Snapshot of the retry counters.
    pub fn metrics(&self) -> RetryMetrics {
        RetryMetrics {
            operations: self.counters.operations.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            exhausted: self.counters.exhausted.load(Ordering::Relaxed),
            backoff_ns: self.counters.backoff_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets the retry counters (between experiment phases).
    pub fn reset_metrics(&self) {
        self.counters.operations.store(0, Ordering::Relaxed);
        self.counters.retries.store(0, Ordering::Relaxed);
        self.counters.exhausted.store(0, Ordering::Relaxed);
        self.counters.backoff_ns.store(0, Ordering::Relaxed);
    }

    fn backoff(&self, attempt: u32) {
        let exp = attempt.saturating_sub(1).min(32);
        let raw_us = self
            .policy
            .base_backoff_us
            .saturating_mul(1u64 << exp)
            .min(self.policy.max_backoff_us.max(self.policy.base_backoff_us));
        let jittered_ns = if self.policy.jitter > 0.0 {
            let factor: f64 =
                self.rng.lock().gen_range(1.0 - self.policy.jitter..=1.0 + self.policy.jitter);
            (raw_us as f64 * 1_000.0 * factor) as u64
        } else {
            raw_us.saturating_mul(1_000)
        };
        self.counters.backoff_ns.fetch_add(jittered_ns, Ordering::Relaxed);
        if self.policy.time_scale > 0.0 {
            let sleep_ns = (jittered_ns as f64 * self.policy.time_scale) as u64;
            if sleep_ns > 0 {
                std::thread::sleep(Duration::from_nanos(sleep_ns));
            }
        }
    }

    fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        // An OSS request may block for tens of milliseconds per attempt
        // (plus backoff); issuing one while holding any engine lock would
        // stall every thread contending on it. Debug builds fail loudly.
        logstore_sync::assert_no_locks_held("RetryingStore OSS request");
        self.counters.operations.fetch_add(1, Ordering::Relaxed);
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < attempts && is_transient(&e) => {
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff(attempt);
                    attempt += 1;
                }
                Err(e) => {
                    if is_transient(&e) {
                        self.counters.exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl<S: ObjectStore> ObjectStore for RetryingStore<S> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        self.run(|| self.inner.put(path, data))
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        self.run(|| self.inner.get(path))
    }

    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.run(|| self.inner.get_range(path, offset, len))
    }

    fn head(&self, path: &str) -> Result<u64> {
        self.run(|| self.inner.head(path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.run(|| self.inner.list(prefix))
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.run(|| self.inner.delete(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultScope, FaultyStore};
    use crate::memory::MemoryStore;

    fn retrying(max_attempts: u32) -> RetryingStore<FaultyStore<MemoryStore>> {
        RetryingStore::new(
            FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1),
            RetryPolicy::archival_default().with_max_attempts(max_attempts),
            7,
        )
    }

    #[test]
    fn transient_faults_are_absorbed() {
        let s = retrying(4);
        s.put("k", b"v").unwrap();
        s.inner().fail_next(3);
        assert_eq!(s.get("k").unwrap(), b"v", "3 faults < 4 attempts must succeed");
        let m = s.metrics();
        assert_eq!(m.retries, 3);
        assert_eq!(m.exhausted, 0);
        assert!(m.backoff_ns > 0, "retries must account backoff time");
    }

    #[test]
    fn write_faults_are_absorbed_too() {
        let s = retrying(4);
        s.inner().fail_next(2);
        s.put("k", b"v").unwrap();
        assert_eq!(s.inner().inner().get("k").unwrap(), b"v");
    }

    #[test]
    fn exhausted_budget_surfaces_the_error() {
        let s = retrying(3);
        s.put("k", b"v").unwrap();
        s.inner().fail_next(10);
        let err = s.get("k").unwrap_err();
        assert!(err.to_string().contains("injected oss fault"), "{err}");
        let m = s.metrics();
        assert_eq!(m.retries, 2, "3 attempts = 2 retries");
        assert_eq!(m.exhausted, 1);
        s.inner().clear_faults();
        assert_eq!(s.get("k").unwrap(), b"v");
    }

    #[test]
    fn terminal_errors_are_not_retried() {
        let s = retrying(5);
        let err = s.get("missing").unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
        let m = s.metrics();
        assert_eq!(m.retries, 0, "NotFound must not be retried");
        assert_eq!(m.exhausted, 0);
    }

    #[test]
    fn policy_none_passes_errors_straight_through() {
        let s = RetryingStore::new(
            FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1),
            RetryPolicy::none(),
            7,
        );
        s.inner().fail_next(1);
        assert!(s.put("k", b"v").is_err());
        assert_eq!(s.metrics().retries, 0);
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 100,
            max_backoff_us: 400,
            jitter: 0.0,
            time_scale: 0.0,
        };
        let s = RetryingStore::new(
            FaultyStore::new(MemoryStore::new(), FaultScope::All, 0.0, 1),
            policy,
            7,
        );
        s.put("k", b"v").unwrap();
        s.inner().fail_next(4);
        s.get("k").unwrap();
        // 100 + 200 + 400 (capped) + 400 (capped) microseconds.
        assert_eq!(s.metrics().backoff_ns, 1_100_000);
    }

    #[test]
    fn jitter_is_deterministic_under_a_seed() {
        let make = || {
            let s = retrying(6);
            s.put("k", b"v").unwrap();
            s.inner().fail_next(4);
            s.get("k").unwrap();
            s.metrics().backoff_ns
        };
        assert_eq!(make(), make());
    }
}
