//! Latency/bandwidth simulation wrapper.
//!
//! The query-optimization results of the paper (Figs 15–17) hinge on the
//! cost structure of remote object storage: every request pays tens of
//! milliseconds of latency, and throughput is bounded by network bandwidth
//! that fluctuates. [`SimulatedOss`] imposes exactly that model on any
//! backend:
//!
//! * per-request base latency (metadata/first-byte cost),
//! * per-byte transfer time (bandwidth cap),
//! * multiplicative jitter,
//! * a **time scale**: `0.0` accounts modelled time without sleeping
//!   (unit tests), `1.0` sleeps the full modelled duration (wall-clock
//!   realistic harnesses), values in between compress time proportionally.
//!
//! All modelled time is accumulated in [`OssMetrics`] regardless of the
//! scale, so figure harnesses report *modelled* latencies — deterministic
//! and host-independent.

use crate::store::ObjectStore;
use logstore_sync::OrderedMutex;
use logstore_types::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The latency/bandwidth model of a simulated object store.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Fixed cost per request, in microseconds (OSS first-byte latency is
    /// typically 10–50 ms).
    pub base_latency_us: u64,
    /// Transfer cost per byte, in nanoseconds. `10 ns/B` ≈ 100 MB/s.
    pub per_byte_ns: u64,
    /// Extra per-request cost for LIST operations (directory scans are the
    /// paper's "traversing a large number of files is time-consuming").
    pub list_latency_us: u64,
    /// Multiplicative jitter: each request's modelled time is scaled by a
    /// uniform factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Fraction of modelled time actually slept (0.0 = never sleep).
    pub time_scale: f64,
}

impl LatencyModel {
    /// Alibaba-OSS-like defaults: 25 ms base latency, ~100 MB/s, 20% jitter.
    pub fn oss_like() -> Self {
        LatencyModel {
            base_latency_us: 25_000,
            per_byte_ns: 10,
            list_latency_us: 50_000,
            jitter: 0.2,
            time_scale: 0.0,
        }
    }

    /// Local-SSD-like: 100 µs access, ~2 GB/s.
    pub fn local_ssd_like() -> Self {
        LatencyModel {
            base_latency_us: 100,
            per_byte_ns: 1,
            list_latency_us: 200,
            jitter: 0.05,
            time_scale: 0.0,
        }
    }

    /// No modelled cost at all.
    pub fn zero() -> Self {
        LatencyModel {
            base_latency_us: 0,
            per_byte_ns: 0,
            list_latency_us: 0,
            jitter: 0.0,
            time_scale: 0.0,
        }
    }

    /// Sets the sleep fraction.
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }
}

/// Counters exposed by [`SimulatedOss`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OssMetrics {
    /// Number of GET / range-GET requests.
    pub get_requests: u64,
    /// Number of PUT requests.
    pub put_requests: u64,
    /// Number of LIST + HEAD + DELETE requests.
    pub other_requests: u64,
    /// Bytes downloaded.
    pub bytes_read: u64,
    /// Bytes uploaded.
    pub bytes_written: u64,
    /// Total modelled request time, nanoseconds.
    pub modelled_time_ns: u64,
}

impl OssMetrics {
    /// Total requests of all kinds.
    pub fn total_requests(&self) -> u64 {
        self.get_requests + self.put_requests + self.other_requests
    }

    /// Modelled time as a [`Duration`].
    pub fn modelled_time(&self) -> Duration {
        Duration::from_nanos(self.modelled_time_ns)
    }
}

#[derive(Debug, Default)]
struct Counters {
    get_requests: AtomicU64,
    put_requests: AtomicU64,
    other_requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    modelled_time_ns: AtomicU64,
}

/// An [`ObjectStore`] decorator imposing a [`LatencyModel`].
#[derive(Debug)]
pub struct SimulatedOss<S> {
    inner: S,
    model: LatencyModel,
    counters: Counters,
    rng: OrderedMutex<StdRng>,
}

impl<S: ObjectStore> SimulatedOss<S> {
    /// Wraps `inner` with the given model; `seed` makes jitter deterministic.
    pub fn new(inner: S, model: LatencyModel, seed: u64) -> Self {
        SimulatedOss {
            inner,
            model,
            counters: Counters::default(),
            rng: OrderedMutex::new("oss.sim.rng", StdRng::seed_from_u64(seed)),
        }
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> OssMetrics {
        OssMetrics {
            get_requests: self.counters.get_requests.load(Ordering::Relaxed),
            put_requests: self.counters.put_requests.load(Ordering::Relaxed),
            other_requests: self.counters.other_requests.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
            modelled_time_ns: self.counters.modelled_time_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (between experiment phases).
    pub fn reset_metrics(&self) {
        self.counters.get_requests.store(0, Ordering::Relaxed);
        self.counters.put_requests.store(0, Ordering::Relaxed);
        self.counters.other_requests.store(0, Ordering::Relaxed);
        self.counters.bytes_read.store(0, Ordering::Relaxed);
        self.counters.bytes_written.store(0, Ordering::Relaxed);
        self.counters.modelled_time_ns.store(0, Ordering::Relaxed);
    }

    /// Access to the wrapped store (e.g. to seed fixtures without paying
    /// modelled latency).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn charge(&self, base_us: u64, bytes: u64) {
        // `charge` runs at the entry of every simulated request: the
        // modelled (and possibly slept) latency is exactly why no engine
        // lock may be held across an OSS call. Debug builds fail loudly.
        logstore_sync::assert_no_locks_held("SimulatedOss request");
        let raw_ns = base_us.saturating_mul(1_000) + bytes.saturating_mul(self.model.per_byte_ns);
        let jittered = if self.model.jitter > 0.0 {
            let factor: f64 = {
                let mut rng = self.rng.lock();
                rng.gen_range(1.0 - self.model.jitter..=1.0 + self.model.jitter)
            };
            (raw_ns as f64 * factor) as u64
        } else {
            raw_ns
        };
        self.counters.modelled_time_ns.fetch_add(jittered, Ordering::Relaxed);
        if self.model.time_scale > 0.0 {
            let sleep_ns = (jittered as f64 * self.model.time_scale) as u64;
            if sleep_ns > 0 {
                std::thread::sleep(Duration::from_nanos(sleep_ns));
            }
        }
    }
}

impl<S: ObjectStore> ObjectStore for SimulatedOss<S> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        self.counters.put_requests.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.charge(self.model.base_latency_us, data.len() as u64);
        self.inner.put(path, data)
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        self.counters.get_requests.fetch_add(1, Ordering::Relaxed);
        let data = self.inner.get(path)?;
        self.counters.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.charge(self.model.base_latency_us, data.len() as u64);
        Ok(data)
    }

    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.counters.get_requests.fetch_add(1, Ordering::Relaxed);
        let data = self.inner.get_range(path, offset, len)?;
        self.counters.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.charge(self.model.base_latency_us, data.len() as u64);
        Ok(data)
    }

    fn head(&self, path: &str) -> Result<u64> {
        self.counters.other_requests.fetch_add(1, Ordering::Relaxed);
        self.charge(self.model.base_latency_us, 0);
        self.inner.head(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.counters.other_requests.fetch_add(1, Ordering::Relaxed);
        self.charge(self.model.list_latency_us, 0);
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.counters.other_requests.fetch_add(1, Ordering::Relaxed);
        self.charge(self.model.base_latency_us, 0);
        self.inner.delete(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;

    fn sim(model: LatencyModel) -> SimulatedOss<MemoryStore> {
        SimulatedOss::new(MemoryStore::new(), model, 7)
    }

    #[test]
    fn counters_track_operations() {
        let s = sim(LatencyModel::zero());
        s.put("a", &[0u8; 100]).unwrap();
        s.get("a").unwrap();
        s.get_range("a", 0, 10).unwrap();
        s.head("a").unwrap();
        s.list("").unwrap();
        s.delete("a").unwrap();
        let m = s.metrics();
        assert_eq!(m.put_requests, 1);
        assert_eq!(m.get_requests, 2);
        assert_eq!(m.other_requests, 3);
        assert_eq!(m.bytes_written, 100);
        assert_eq!(m.bytes_read, 110);
        assert_eq!(m.total_requests(), 6);
    }

    #[test]
    fn modelled_time_accumulates_without_sleeping() {
        let mut model = LatencyModel::oss_like();
        model.jitter = 0.0;
        let s = sim(model);
        s.put("a", &[0u8; 1_000_000]).unwrap();
        let wall = std::time::Instant::now();
        s.get("a").unwrap();
        assert!(wall.elapsed() < Duration::from_millis(20), "no real sleep expected");
        // 2 requests * 25ms base + 2 MB * 10 ns = 50ms + 20ms = 70ms.
        let t = s.metrics().modelled_time();
        assert!(t >= Duration::from_millis(60) && t <= Duration::from_millis(80), "{t:?}");
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let mut model = LatencyModel::oss_like();
        model.jitter = 0.2;
        let a = sim(model.clone());
        let b = sim(model);
        for _ in 0..50 {
            a.head("x").unwrap_err();
            b.head("x").unwrap_err();
        }
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma.modelled_time_ns, mb.modelled_time_ns, "same seed, same time");
        let per_req = ma.modelled_time_ns as f64 / 50.0;
        let base = 25_000_000.0;
        assert!(per_req > base * 0.8 && per_req < base * 1.2);
    }

    #[test]
    fn time_scale_sleeps() {
        let mut model = LatencyModel::zero();
        model.base_latency_us = 2_000; // 2 ms
        model.time_scale = 1.0;
        let s = sim(model);
        let wall = std::time::Instant::now();
        s.head("x").unwrap_err();
        assert!(wall.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn reset_clears_counters() {
        let s = sim(LatencyModel::zero());
        s.put("a", b"x").unwrap();
        s.reset_metrics();
        assert_eq!(s.metrics(), OssMetrics::default());
    }

    #[test]
    fn inner_bypasses_accounting() {
        let s = sim(LatencyModel::oss_like());
        s.inner().put("seed", b"fixture").unwrap();
        assert_eq!(s.metrics().put_requests, 0);
        assert_eq!(s.get("seed").unwrap(), b"fixture");
    }
}
