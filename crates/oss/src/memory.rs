//! In-memory object store (tests, and the substrate under [`crate::SimulatedOss`]).

use crate::store::{check_range, validate_path, ObjectStore};
use logstore_sync::OrderedRwLock;
use logstore_types::{Error, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe in-memory object store.
///
/// Objects are stored behind `Arc` so concurrent readers share payloads
/// without copying under the lock.
#[derive(Debug)]
pub struct MemoryStore {
    objects: OrderedRwLock<BTreeMap<String, Arc<Vec<u8>>>>,
}

impl Default for MemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore { objects: OrderedRwLock::new("oss.memory.objects", BTreeMap::new()) }
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Sum of object sizes in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        validate_path(path)?;
        self.objects.write().insert(path.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        validate_path(path)?;
        let obj = self
            .objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("object '{path}'")))?;
        Ok(obj.as_ref().clone())
    }

    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        validate_path(path)?;
        let obj = self
            .objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("object '{path}'")))?;
        check_range(path, obj.len() as u64, offset, len)?;
        Ok(obj[offset as usize..(offset + len) as usize].to_vec())
    }

    fn head(&self, path: &str) -> Result<u64> {
        validate_path(path)?;
        self.objects
            .read()
            .get(path)
            .map(|o| o.len() as u64)
            .ok_or_else(|| Error::NotFound(format!("object '{path}'")))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let objects = self.objects.read();
        Ok(objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, path: &str) -> Result<()> {
        validate_path(path)?;
        self.objects.write().remove(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = MemoryStore::new();
        s.put("a/b", b"hello").unwrap();
        assert_eq!(s.get("a/b").unwrap(), b"hello");
        assert_eq!(s.head("a/b").unwrap(), 5);
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.total_bytes(), 5);
    }

    #[test]
    fn overwrite_replaces() {
        let s = MemoryStore::new();
        s.put("k", b"one").unwrap();
        s.put("k", b"twotwo").unwrap();
        assert_eq!(s.get("k").unwrap(), b"twotwo");
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn range_reads() {
        let s = MemoryStore::new();
        s.put("k", b"0123456789").unwrap();
        assert_eq!(s.get_range("k", 2, 3).unwrap(), b"234");
        assert_eq!(s.get_range("k", 0, 0).unwrap(), b"");
        assert!(s.get_range("k", 8, 3).is_err());
    }

    #[test]
    fn missing_object_is_not_found() {
        let s = MemoryStore::new();
        assert!(matches!(s.get("nope"), Err(Error::NotFound(_))));
        assert!(matches!(s.head("nope"), Err(Error::NotFound(_))));
        assert!(s.delete("nope").is_ok(), "deletes are idempotent");
    }

    #[test]
    fn list_is_prefix_scoped_and_sorted() {
        let s = MemoryStore::new();
        for p in ["t1/b", "t1/a", "t2/a", "t10/a"] {
            s.put(p, b"x").unwrap();
        }
        assert_eq!(s.list("t1/").unwrap(), vec!["t1/a", "t1/b"]);
        assert_eq!(s.list("t1").unwrap(), vec!["t1/a", "t1/b", "t10/a"]);
        assert_eq!(s.list("").unwrap().len(), 4);
        assert!(s.list("zz").unwrap().is_empty());
    }

    #[test]
    fn invalid_paths_rejected_everywhere() {
        let s = MemoryStore::new();
        assert!(s.put("../etc", b"x").is_err());
        assert!(s.get("/abs").is_err());
    }

    #[test]
    fn concurrent_access() {
        let s = Arc::new(MemoryStore::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let path = format!("t{i}/obj{j}");
                        s.put(&path, &[i as u8; 100]).unwrap();
                        assert_eq!(s.get(&path).unwrap().len(), 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.object_count(), 400);
    }
}
