//! Local-disk object store.
//!
//! Used as the "local storage" baseline in the Figure 16 reproduction and
//! as the backing for the SSD tier of the multi-level cache. Object paths
//! map to files under a root directory; the path validator guarantees they
//! cannot escape it.

use crate::store::{check_range, validate_path, ObjectStore};
use logstore_types::{Error, Result};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// An object store persisting each object as one file under `root`.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DiskStore { root })
    }

    fn file_path(&self, path: &str) -> Result<PathBuf> {
        validate_path(path)?;
        Ok(self.root.join(path))
    }
}

impl ObjectStore for DiskStore {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        let file = self.file_path(path)?;
        if let Some(parent) = file.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename gives atomic replace, mirroring OSS semantics
        // where readers never observe partial objects.
        let tmp = file.with_extension("tmp-put");
        fs::write(&tmp, data)?;
        fs::rename(&tmp, &file)?;
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        let file = self.file_path(path)?;
        fs::read(&file).map_err(|e| map_not_found(e, path))
    }

    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let file = self.file_path(path)?;
        let mut f = fs::File::open(&file).map_err(|e| map_not_found(e, path))?;
        let size = f.metadata()?.len();
        check_range(path, size, offset, len)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn head(&self, path: &str) -> Result<u64> {
        let file = self.file_path(path)?;
        fs::metadata(&file).map(|m| m.len()).map_err(|e| map_not_found(e, path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        collect_files(&self.root, &self.root, &mut out)?;
        out.retain(|p| p.starts_with(prefix));
        out.sort();
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<()> {
        let file = self.file_path(path)?;
        match fs::remove_file(&file) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

fn map_not_found(e: std::io::Error, path: &str) -> Error {
    if e.kind() == std::io::ErrorKind::NotFound {
        Error::NotFound(format!("object '{path}'"))
    } else {
        e.into()
    }
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            if let Some(s) = rel.to_str() {
                if !s.ends_with(".tmp-put") {
                    out.push(s.replace('\\', "/"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (DiskStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "logstore-disk-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        (DiskStore::open(&dir).unwrap(), dir)
    }

    #[test]
    fn put_get_head_roundtrip() {
        let (s, dir) = temp_store("roundtrip");
        s.put("tenants/1/block.pack", b"payload").unwrap();
        assert_eq!(s.get("tenants/1/block.pack").unwrap(), b"payload");
        assert_eq!(s.head("tenants/1/block.pack").unwrap(), 7);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn range_reads_and_bounds() {
        let (s, dir) = temp_store("range");
        s.put("k", b"0123456789").unwrap();
        assert_eq!(s.get_range("k", 4, 4).unwrap(), b"4567");
        assert!(s.get_range("k", 9, 5).is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn list_recurses_and_filters() {
        let (s, dir) = temp_store("list");
        for p in ["t1/a/x", "t1/b", "t2/c"] {
            s.put(p, b"v").unwrap();
        }
        assert_eq!(s.list("t1/").unwrap(), vec!["t1/a/x", "t1/b"]);
        assert_eq!(s.list("").unwrap().len(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn delete_idempotent_and_missing_not_found() {
        let (s, dir) = temp_store("delete");
        s.put("k", b"v").unwrap();
        s.delete("k").unwrap();
        s.delete("k").unwrap();
        assert!(matches!(s.get("k"), Err(Error::NotFound(_))));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn traversal_rejected() {
        let (s, dir) = temp_store("traversal");
        assert!(s.put("../escape", b"x").is_err());
        assert!(s.get("a/../../b").is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn overwrite_is_atomic_replace() {
        let (s, dir) = temp_store("overwrite");
        s.put("k", b"old").unwrap();
        s.put("k", b"newer").unwrap();
        assert_eq!(s.get("k").unwrap(), b"newer");
        // No tmp files leak into listings.
        assert_eq!(s.list("").unwrap(), vec!["k"]);
        let _ = fs::remove_dir_all(dir);
    }
}
