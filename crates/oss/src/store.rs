//! The [`ObjectStore`] trait.

use logstore_types::{Error, Result};
use std::sync::Arc;

/// The object-storage operations LogStore uses.
///
/// Objects are immutable: `put` of an existing path overwrites atomically
/// (matching OSS semantics), there is no append. LogBlocks rely on
/// `get_range` to read individual members of a packed block without
/// downloading the whole object.
pub trait ObjectStore: Send + Sync {
    /// Stores `data` under `path`, replacing any existing object.
    fn put(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Fetches a whole object.
    fn get(&self, path: &str) -> Result<Vec<u8>>;

    /// Fetches `len` bytes starting at `offset`. Errors if the range exceeds
    /// the object (OSS-style strict ranges keep corruption loud).
    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Returns the object's size in bytes.
    fn head(&self, path: &str) -> Result<u64>;

    /// Lists object paths with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Deletes an object. Deleting a missing object is not an error
    /// (idempotent deletes simplify the expiration task).
    fn delete(&self, path: &str) -> Result<()>;

    /// Fetches a *contiguous run* of block ranges — `blocks[i+1]` must
    /// start where `blocks[i]` ends — with **one** range request, and
    /// splits the payload back into one buffer per requested block.
    ///
    /// This is the transport half of the cache's read coalescing: under a
    /// per-request latency model, fetching k adjacent cold blocks this way
    /// costs one round-trip instead of k.
    fn get_block_run(&self, path: &str, blocks: &[(u64, u64)]) -> Result<Vec<Vec<u8>>> {
        let Some(&(start, first_len)) = blocks.first() else {
            return Ok(Vec::new());
        };
        let mut end =
            start.checked_add(first_len).ok_or_else(|| Error::invalid("range overflow"))?;
        for pair in blocks.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            if next.0 != end {
                return Err(Error::invalid(format!(
                    "block run not contiguous: {}+{} then {}",
                    prev.0, prev.1, next.0
                )));
            }
            end = next.0.checked_add(next.1).ok_or_else(|| Error::invalid("range overflow"))?;
        }
        let payload = self.get_range(path, start, end - start)?;
        let mut out = Vec::with_capacity(blocks.len());
        let mut cursor = 0usize;
        for (_, len) in blocks {
            let next = cursor + *len as usize;
            out.push(payload[cursor..next].to_vec());
            cursor = next;
        }
        Ok(out)
    }
}

impl<T: ObjectStore + ?Sized> ObjectStore for Arc<T> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        (**self).put(path, data)
    }
    fn get(&self, path: &str) -> Result<Vec<u8>> {
        (**self).get(path)
    }
    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        (**self).get_range(path, offset, len)
    }
    fn head(&self, path: &str) -> Result<u64> {
        (**self).head(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn delete(&self, path: &str) -> Result<()> {
        (**self).delete(path)
    }
    fn get_block_run(&self, path: &str, blocks: &[(u64, u64)]) -> Result<Vec<Vec<u8>>> {
        (**self).get_block_run(path, blocks)
    }
}

/// Validates an object path: non-empty, relative, slash-separated segments
/// without `.`/`..`, printable ASCII. Shared by every backend so path bugs
/// surface identically everywhere.
pub fn validate_path(path: &str) -> Result<()> {
    if path.is_empty() || path.len() > 1024 {
        return Err(Error::invalid("object path must be 1..=1024 bytes"));
    }
    if path.starts_with('/') || path.ends_with('/') {
        return Err(Error::invalid(format!("object path '{path}' must not begin or end with '/'")));
    }
    for seg in path.split('/') {
        if seg.is_empty() {
            return Err(Error::invalid(format!("object path '{path}' has an empty segment")));
        }
        if seg == "." || seg == ".." {
            return Err(Error::invalid(format!("object path '{path}' contains '{seg}'")));
        }
        if !seg.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'='))
        {
            return Err(Error::invalid(format!("object path segment '{seg}' has invalid bytes")));
        }
    }
    Ok(())
}

/// Checks a `(offset, len)` range against an object size.
pub fn check_range(path: &str, size: u64, offset: u64, len: u64) -> Result<()> {
    let end = offset.checked_add(len).ok_or_else(|| Error::invalid("range overflow"))?;
    if end > size {
        return Err(Error::invalid(format!(
            "range {offset}+{len} exceeds object '{path}' of {size} bytes"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_paths() {
        for p in ["a", "tenants/42/block-0001.pack", "x/y/z.meta", "a=b/c_d-e.f"] {
            assert!(validate_path(p).is_ok(), "{p} should be valid");
        }
    }

    #[test]
    fn invalid_paths() {
        for p in ["", "/abs", "trailing/", "a//b", "a/../b", "./a", "sp ace", "uni\u{00e9}"] {
            assert!(validate_path(p).is_err(), "{p} should be invalid");
        }
        assert!(validate_path(&"x".repeat(2000)).is_err());
    }

    #[test]
    fn range_checks() {
        assert!(check_range("p", 10, 0, 10).is_ok());
        assert!(check_range("p", 10, 9, 1).is_ok());
        assert!(check_range("p", 10, 9, 2).is_err());
        assert!(check_range("p", 10, u64::MAX, 2).is_err());
        assert!(check_range("p", 0, 0, 0).is_ok());
    }

    #[test]
    fn block_run_splits_one_get() {
        let store = crate::MemoryStore::new();
        let object: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        store.put("obj", &object).unwrap();
        let parts = store.get_block_run("obj", &[(100, 300), (400, 300), (700, 100)]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], object[100..400]);
        assert_eq!(parts[1], object[400..700]);
        assert_eq!(parts[2], object[700..800]);
        assert_eq!(store.get_block_run("obj", &[]).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn block_run_rejects_gaps_and_overflow() {
        let store = crate::MemoryStore::new();
        store.put("obj", &[0u8; 100]).unwrap();
        assert!(store.get_block_run("obj", &[(0, 10), (20, 10)]).is_err(), "gap");
        assert!(store.get_block_run("obj", &[(0, 10), (5, 10)]).is_err(), "overlap");
        assert!(store.get_block_run("obj", &[(u64::MAX, 2)]).is_err(), "overflow");
    }
}
