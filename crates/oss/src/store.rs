//! The [`ObjectStore`] trait.

use logstore_types::{Error, Result};
use std::sync::Arc;

/// The object-storage operations LogStore uses.
///
/// Objects are immutable: `put` of an existing path overwrites atomically
/// (matching OSS semantics), there is no append. LogBlocks rely on
/// `get_range` to read individual members of a packed block without
/// downloading the whole object.
pub trait ObjectStore: Send + Sync {
    /// Stores `data` under `path`, replacing any existing object.
    fn put(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Fetches a whole object.
    fn get(&self, path: &str) -> Result<Vec<u8>>;

    /// Fetches `len` bytes starting at `offset`. Errors if the range exceeds
    /// the object (OSS-style strict ranges keep corruption loud).
    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Returns the object's size in bytes.
    fn head(&self, path: &str) -> Result<u64>;

    /// Lists object paths with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Deletes an object. Deleting a missing object is not an error
    /// (idempotent deletes simplify the expiration task).
    fn delete(&self, path: &str) -> Result<()>;
}

impl<T: ObjectStore + ?Sized> ObjectStore for Arc<T> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        (**self).put(path, data)
    }
    fn get(&self, path: &str) -> Result<Vec<u8>> {
        (**self).get(path)
    }
    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        (**self).get_range(path, offset, len)
    }
    fn head(&self, path: &str) -> Result<u64> {
        (**self).head(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn delete(&self, path: &str) -> Result<()> {
        (**self).delete(path)
    }
}

/// Validates an object path: non-empty, relative, slash-separated segments
/// without `.`/`..`, printable ASCII. Shared by every backend so path bugs
/// surface identically everywhere.
pub fn validate_path(path: &str) -> Result<()> {
    if path.is_empty() || path.len() > 1024 {
        return Err(Error::invalid("object path must be 1..=1024 bytes"));
    }
    if path.starts_with('/') || path.ends_with('/') {
        return Err(Error::invalid(format!("object path '{path}' must not begin or end with '/'")));
    }
    for seg in path.split('/') {
        if seg.is_empty() {
            return Err(Error::invalid(format!("object path '{path}' has an empty segment")));
        }
        if seg == "." || seg == ".." {
            return Err(Error::invalid(format!("object path '{path}' contains '{seg}'")));
        }
        if !seg.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'='))
        {
            return Err(Error::invalid(format!("object path segment '{seg}' has invalid bytes")));
        }
    }
    Ok(())
}

/// Checks a `(offset, len)` range against an object size.
pub fn check_range(path: &str, size: u64, offset: u64, len: u64) -> Result<()> {
    let end = offset.checked_add(len).ok_or_else(|| Error::invalid("range overflow"))?;
    if end > size {
        return Err(Error::invalid(format!(
            "range {offset}+{len} exceeds object '{path}' of {size} bytes"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_paths() {
        for p in ["a", "tenants/42/block-0001.pack", "x/y/z.meta", "a=b/c_d-e.f"] {
            assert!(validate_path(p).is_ok(), "{p} should be valid");
        }
    }

    #[test]
    fn invalid_paths() {
        for p in ["", "/abs", "trailing/", "a//b", "a/../b", "./a", "sp ace", "uni\u{00e9}"] {
            assert!(validate_path(p).is_err(), "{p} should be invalid");
        }
        assert!(validate_path(&"x".repeat(2000)).is_err());
    }

    #[test]
    fn range_checks() {
        assert!(check_range("p", 10, 0, 10).is_ok());
        assert!(check_range("p", 10, 9, 1).is_ok());
        assert!(check_range("p", 10, 9, 2).is_err());
        assert!(check_range("p", 10, u64::MAX, 2).is_err());
        assert!(check_range("p", 0, 0, 0).is_ok());
    }
}
