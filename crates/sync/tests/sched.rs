//! Schedule-exploration regression suite: planted-bug protocol variants
//! must be *caught* within a bounded seed budget, and the correct
//! variants must *survive* a full sweep.
//!
//! Each model is a miniature of a real workspace protocol (see the
//! protocol tests in `crates/wal/tests/sched.rs` and
//! `crates/cache/tests/sched.rs` for the real implementations under the
//! same scheduler):
//!
//! * **singleflight** — the cache leader/waiter Condvar protocol (PR 3):
//!   the planted leader notifies *before* publishing the result, so a
//!   waiter that re-checks first parks forever (lost wakeup → deadlock).
//! * **turnstile** — the GroupCommitWal epoch turnstile (PR 6): the
//!   planted committer skips the "wait for my turn" check, so sealed
//!   epochs commit in lock-arrival order instead of epoch order.
//! * **archive ops** — the in-flight archive op counters gating WAL
//!   truncation (PR 2): the planted truncator ignores the op gate and
//!   drops the WAL while a drained-but-unarchived batch is in flight.
//! * **controller dedup** — the replicated controller's per-replica
//!   request dedup (PR 9): the planted server checks the dedup table,
//!   drops the lock, and applies later — a check-then-act race that
//!   double-applies a retransmitted request.
//!
//! Every failure printed by [`sched::explore`] includes the seed and a
//! `SCHED_SEED=<n>` replay command; the planted tests additionally assert
//! that re-running the found seed reproduces the failure (determinism).

#![cfg(feature = "sched-fuzz")]

use std::sync::Arc;
use std::time::Duration;

use logstore_sync::{sched, sync_point, OrderedCondvar, OrderedMutex};

/// Seed budget within which each planted bug must be caught.
const CATCH_BUDGET: u64 = 80;
/// Seeds the unmodified protocols must survive.
const SWEEP: u64 = 120;

/// Finds a failing seed for `body` within the budget, asserts replay
/// determinism (the same seed fails again), and returns the report.
fn must_catch(name: &str, mut body: impl FnMut()) -> String {
    let (seed, report) = sched::find_failure(0..CATCH_BUDGET, &mut body)
        .unwrap_or_else(|| panic!("planted bug `{name}` not caught within {CATCH_BUDGET} seeds"));
    println!("planted `{name}` caught at seed {seed}; replay: SCHED_SEED={seed}\n{report}");
    let replay = sched::run_seed(seed, &mut body)
        .unwrap_or_else(|| panic!("planted bug `{name}`: seed {seed} did not replay its failure"));
    assert_eq!(report, replay, "planted bug `{name}`: seed {seed} replay diverged");
    report
}

// ---------------------------------------------------------------- model 1

/// Singleflight leader/waiter: the waiter parks until the leader
/// publishes into the shared slot. Planted variant: the leader notifies
/// first and publishes afterwards, from a separate critical section.
fn singleflight_model(planted: bool) {
    let slot = Arc::new(OrderedMutex::new("sync.test.sf_slot", None::<u32>));
    let done = Arc::new(OrderedCondvar::new("sync.test.sf_done"));

    let (lslot, ldone) = (Arc::clone(&slot), Arc::clone(&done));
    let leader = sched::spawn(move || {
        if planted {
            {
                let _g = lslot.lock();
                ldone.notify_all();
            }
            sync_point("sync.test.sf_gap");
            *lslot.lock() = Some(99);
        } else {
            let mut g = lslot.lock();
            *g = Some(99);
            ldone.notify_all();
        }
    });
    let (wslot, wdone) = (Arc::clone(&slot), Arc::clone(&done));
    let waiter = sched::spawn(move || {
        let mut g = wslot.lock();
        while g.is_none() {
            wdone.wait(&mut g);
        }
        assert_eq!(*g, Some(99));
    });
    leader.join();
    waiter.join();
}

#[test]
fn planted_singleflight_lost_wakeup_is_caught() {
    let report = must_catch("singleflight lost wakeup", || singleflight_model(true));
    assert!(report.contains("deadlock"), "expected a deadlock report, got:\n{report}");
}

#[test]
fn correct_singleflight_survives_sweep() {
    sched::explore(0..SWEEP, || singleflight_model(false));
}

// ---------------------------------------------------------------- model 2

struct Writer {
    next_commit: u64,
    log: Vec<u64>,
}

/// Group-commit turnstile: staging assigns epochs, the writer must commit
/// them in epoch order. Planted variant: committers skip the turn check.
fn turnstile_model(planted: bool) {
    let staging = Arc::new(OrderedMutex::new("sync.test.turn_staging", 0u64));
    let writer = Arc::new(OrderedMutex::new(
        "sync.test.turn_writer",
        Writer { next_commit: 0, log: Vec::new() },
    ));
    let turn = Arc::new(OrderedCondvar::new("sync.test.turn_cv"));

    let handles: Vec<_> = (0..3)
        .map(|_| {
            let (staging, writer, turn) =
                (Arc::clone(&staging), Arc::clone(&writer), Arc::clone(&turn));
            sched::spawn(move || {
                let my_epoch = {
                    let mut s = staging.lock();
                    let e = *s;
                    *s += 1;
                    e
                };
                sync_point("sync.test.turn_sealed");
                let mut w = writer.lock();
                if !planted {
                    while w.next_commit != my_epoch {
                        turn.wait(&mut w);
                    }
                }
                w.log.push(my_epoch);
                w.next_commit += 1;
                turn.notify_all();
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let w = writer.lock();
    assert_eq!(w.log, vec![0, 1, 2], "epochs committed out of order: {:?}", w.log);
}

#[test]
fn planted_turnstile_skipped_turn_check_is_caught() {
    let report = must_catch("turnstile skipped turn check", || turnstile_model(true));
    assert!(report.contains("out of order"), "expected the order assert, got:\n{report}");
}

#[test]
fn correct_turnstile_survives_sweep() {
    sched::explore(0..SWEEP, || turnstile_model(false));
}

// ---------------------------------------------------------------- model 3

#[derive(Default)]
struct Store {
    appended: Vec<u64>,
    wal: Vec<u64>,
    rows: Vec<u64>,
    archived: Vec<u64>,
    in_flight_ops: usize,
}

/// Archive pipeline: values live in the WAL until they are archived (or
/// still sit in the rowstore). Truncating the WAL is only safe when no
/// drained batch is in flight — a drained-but-unarchived batch exists
/// nowhere durable. Planted variant: the truncator ignores the op gate.
fn archive_ops_model(planted: bool) {
    let store = Arc::new(OrderedMutex::new("sync.test.arch_store", Store::default()));

    let producer = {
        let store = Arc::clone(&store);
        sched::spawn(move || {
            for v in 0..4u64 {
                let mut s = store.lock();
                s.appended.push(v);
                s.wal.push(v);
                s.rows.push(v);
            }
        })
    };
    let drainer = {
        let store = Arc::clone(&store);
        sched::spawn(move || {
            for _ in 0..3 {
                let batch = {
                    let mut s = store.lock();
                    if s.rows.is_empty() {
                        continue;
                    }
                    s.in_flight_ops += 1;
                    std::mem::take(&mut s.rows)
                };
                // The drained batch exists only in this thread's memory.
                sync_point("sync.test.arch_window");
                let mut s = store.lock();
                s.archived.extend(batch);
                s.in_flight_ops -= 1;
            }
        })
    };
    let truncator = {
        let store = Arc::clone(&store);
        sched::spawn(move || {
            for _ in 0..2 {
                sync_point("sync.test.arch_truncate");
                let mut s = store.lock();
                if planted || s.in_flight_ops == 0 {
                    s.wal.clear();
                    // Durability invariant at truncation: everything ever
                    // appended must survive in the rowstore or archive
                    // once its WAL record is gone.
                    let lost: Vec<u64> = s
                        .appended
                        .iter()
                        .copied()
                        .filter(|v| !s.rows.contains(v) && !s.archived.contains(v))
                        .collect();
                    assert!(lost.is_empty(), "WAL truncated while {lost:?} only in flight");
                }
            }
        })
    };
    producer.join();
    drainer.join();
    truncator.join();
}

#[test]
fn planted_archive_truncate_ignoring_ops_is_caught() {
    let report = must_catch("archive truncate ignores op gate", || archive_ops_model(true));
    assert!(report.contains("only in flight"), "expected the loss assert, got:\n{report}");
}

#[test]
fn correct_archive_ops_survive_sweep() {
    sched::explore(0..SWEEP, || archive_ops_model(false));
}

// ---------------------------------------------------------------- model 4

#[derive(Default)]
struct Controller {
    seen: Vec<u64>,
    applied: u64,
}

/// Controller RPC dedup: retransmitted requests carry the same id and
/// must apply exactly once. Planted variant: the server checks the dedup
/// table and applies in *separate* critical sections (check-then-act).
fn controller_dedup_model(planted: bool) {
    let ctl = Arc::new(OrderedMutex::new("sync.test.ctl_state", Controller::default()));
    // Two deliveries of the same request id (a retransmission), plus a
    // distinct request to keep the schedule honest.
    let reqs = [7u64, 7, 11];
    let handles: Vec<_> = reqs
        .iter()
        .map(|&req| {
            let ctl = Arc::clone(&ctl);
            sched::spawn(move || {
                if planted {
                    let dup = ctl.lock().seen.contains(&req);
                    sync_point("sync.test.ctl_gap");
                    if !dup {
                        let mut c = ctl.lock();
                        c.applied += 1;
                        c.seen.push(req);
                    }
                } else {
                    let mut c = ctl.lock();
                    if !c.seen.contains(&req) {
                        c.applied += 1;
                        c.seen.push(req);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let c = ctl.lock();
    assert_eq!(c.applied, 2, "dedup failed: {} applies for 2 unique requests", c.applied);
}

#[test]
fn planted_controller_dedup_check_then_act_is_caught() {
    let report = must_catch("controller dedup check-then-act", || controller_dedup_model(true));
    assert!(report.contains("dedup failed"), "expected the dedup assert, got:\n{report}");
}

#[test]
fn correct_controller_dedup_survives_sweep() {
    sched::explore(0..SWEEP, || controller_dedup_model(false));
}

// ------------------------------------------------------------- scheduler

/// A timed wait with no notifier must fire its modeled timeout instead of
/// being reported as a deadlock.
#[test]
fn modeled_timeout_fires_without_notifier() {
    sched::explore(0..20, || {
        let m = Arc::new(OrderedMutex::new("sync.test.to_mutex", false));
        let cv = Arc::new(OrderedCondvar::new("sync.test.to_cv"));
        let h = sched::spawn(move || {
            let mut g = m.lock();
            while !*g {
                if cv.wait_for(&mut g, Duration::from_millis(1)).timed_out() {
                    return;
                }
            }
        });
        h.join();
    });
}

/// An untimed wait with no notifier is exactly a deadlock, and the report
/// names the condvar site.
#[test]
fn deadlock_report_names_the_waiting_site() {
    let (seed, report) = sched::find_failure(0..4, || {
        let m = Arc::new(OrderedMutex::new("sync.test.dl_mutex", ()));
        let cv = Arc::new(OrderedCondvar::new("sync.test.dl_cv"));
        let h = sched::spawn(move || {
            let mut g = m.lock();
            cv.wait(&mut g);
        });
        h.join();
    })
    .expect("an unnotified wait must be reported as a deadlock");
    assert!(
        report.contains("sync.test.dl_cv") && report.contains("deadlock"),
        "seed {seed}: report missing the waiting site:\n{report}"
    );
}
