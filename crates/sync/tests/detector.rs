//! Behavioral tests for the lock-order analysis: deliberate inversions
//! must panic with reports that name both conflicting sites, and the
//! I/O-under-lock guard must reject calls made with locks held.
//!
//! Every test uses test-unique site labels (`test.<case>.<lock>`): the
//! acquired-before graph is global to the process, so reusing a
//! production label here would pollute the order observed for real locks
//! (and vice versa).

#![cfg(any(debug_assertions, feature = "lock-analysis"))]
#![forbid(unsafe_code)]

use logstore_sync::{OrderedCondvar, OrderedMutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` and returns the panic message the analysis produced.
fn panic_message(f: impl FnOnce()) -> String {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("analysis must panic");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string")
}

#[test]
fn abba_inversion_report_names_both_sites_and_chains() {
    let a = OrderedMutex::new("test.abba.site_a", 0u32);
    let b = OrderedMutex::new("test.abba.site_b", 0u32);
    // Establish the order a → b (and release both).
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // The inversion: holding b, acquiring a. Panics at the *attempt* —
    // single-threaded, nothing actually deadlocks — because the edge
    // a → b already exists.
    let msg = panic_message(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("lock-order cycle"), "missing headline: {msg}");
    assert!(msg.contains("test.abba.site_a"), "report must name the acquired site: {msg}");
    assert!(msg.contains("test.abba.site_b"), "report must name the held site: {msg}");
    // Both directions of the conflict are shown: the previously observed
    // acquired-before chain and the acquisition that closed the cycle.
    assert!(msg.contains("first seen"), "report must show the conflicting chain: {msg}");
    assert!(msg.contains("cycle:"), "report must spell out the cycle: {msg}");
}

#[test]
fn transitive_three_lock_cycle_is_detected() {
    let a = OrderedMutex::new("test.trans.site_a", ());
    let b = OrderedMutex::new("test.trans.site_b", ());
    let c = OrderedMutex::new("test.trans.site_c", ());
    // Establish a → b and b → c in separate critical sections.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // c → a closes the cycle a → b → c → a even though a and c were
    // never held together before.
    let msg = panic_message(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(msg.contains("test.trans.site_a"), "{msg}");
    assert!(msg.contains("test.trans.site_c"), "{msg}");
    // The report walks the transitive path through b.
    assert!(msg.contains("test.trans.site_b"), "path through the middle lock: {msg}");
}

#[test]
fn same_label_nesting_is_a_self_cycle() {
    // Two locks sharing one label model a pool (e.g. cache shards): the
    // analysis cannot tell instances apart, so nesting them is an error
    // by convention — pools must be hash-disjoint, never nested.
    let x = OrderedMutex::new("test.pool.shard", ());
    let y = OrderedMutex::new("test.pool.shard", ());
    let msg = panic_message(|| {
        let _gx = x.lock();
        let _gy = y.lock();
    });
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(msg.contains("test.pool.shard"), "{msg}");
}

#[test]
fn io_guard_rejects_calls_with_locks_held() {
    let m = OrderedMutex::new("test.ioguard.lock", ());
    // Clean: no locks held.
    logstore_sync::assert_no_locks_held("test.ioguard clean call");
    let msg = panic_message(|| {
        let _g = m.lock();
        logstore_sync::assert_no_locks_held("simulated OSS GET");
    });
    assert!(msg.contains("simulated OSS GET"), "context must be named: {msg}");
    assert!(msg.contains("test.ioguard.lock"), "held lock must be named: {msg}");
}

#[test]
fn condvar_wait_while_holding_another_lock_is_rejected() {
    let other = OrderedMutex::new("test.cvguard.other", ());
    let m = OrderedMutex::new("test.cvguard.mutex", false);
    let cv = OrderedCondvar::new("test.cvguard.cv");
    let msg = panic_message(|| {
        let _other = other.lock();
        let mut g = m.lock();
        // Waiting would release only `m`; `other` stays held while this
        // thread sleeps — the classic lost-wakeup deadlock shape.
        let _ = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
    });
    assert!(msg.contains("test.cvguard.cv"), "{msg}");
    assert!(msg.contains("test.cvguard.other"), "{msg}");
}

#[test]
fn condvar_wait_reacquires_under_the_mutex_site() {
    use std::sync::Arc;
    // After a legitimate wait (guard's lock is the only one held), the
    // reacquired guard must still be tracked: an inversion committed
    // after wakeup is caught against the *mutex's* site.
    let m = Arc::new(OrderedMutex::new("test.cvsite.mutex", false));
    let cv = Arc::new(OrderedCondvar::new("test.cvsite.cv"));
    let inner = OrderedMutex::new("test.cvsite.inner", ());
    // Order first: inner → mutex.
    {
        let _gi = inner.lock();
        let _gm = m.lock();
    }
    let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
    let waker = std::thread::spawn(move || {
        *m2.lock() = true;
        cv2.notify_all();
    });
    let msg = panic_message(|| {
        let mut g = m.lock();
        while !*g {
            let timed_out = cv.wait_for(&mut g, std::time::Duration::from_secs(5)).timed_out();
            assert!(!timed_out, "waker never arrived");
        }
        // Still holding the reacquired mutex guard: this closes
        // inner → mutex → inner.
        let _gi = inner.lock();
    });
    waker.join().unwrap();
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(msg.contains("test.cvsite.mutex"), "reacquired guard keeps the mutex site: {msg}");
    assert!(msg.contains("test.cvsite.inner"), "{msg}");
}

#[test]
fn try_lock_never_panics_on_inversion() {
    let a = OrderedMutex::new("test.trylock.site_a", ());
    let b = OrderedMutex::new("test.trylock.site_b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // Reverse order through try_lock: non-blocking acquisition cannot
    // deadlock, so no edges are recorded and no panic fires…
    let _gb = b.lock();
    let ga = a.try_lock().expect("uncontended");
    // …but the held stack still sees both locks (the I/O guard must).
    let msg = panic_message(|| {
        logstore_sync::assert_no_locks_held("io with try-locked guard");
    });
    assert!(msg.contains("test.trylock.site_a"), "{msg}");
    assert!(msg.contains("test.trylock.site_b"), "{msg}");
    drop(ga);
}

#[test]
fn guards_dropped_out_of_order_unwind_cleanly() {
    let a = OrderedMutex::new("test.ooo.site_a", 1u8);
    let b = OrderedMutex::new("test.ooo.site_b", 2u8);
    let ga = a.lock();
    let gb = b.lock();
    drop(ga); // out of acquisition order
    drop(gb);
    // The held stack is empty again: the I/O guard accepts.
    logstore_sync::assert_no_locks_held("after out-of-order release");
}
