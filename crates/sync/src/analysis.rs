//! The debug-build lock-analysis engine.
//!
//! Compiled only under `cfg(debug_assertions)` or the `lock-analysis`
//! feature. Two data structures drive every check:
//!
//! * a **per-thread held-lock stack** — each blocking acquisition pushes
//!   `(site, token)` and the guard's `Drop` pops it (tokens make
//!   out-of-order guard drops safe);
//! * a **global acquired-before graph** over site labels — acquiring `B`
//!   while holding `A` records the edge `A -> B` together with the full
//!   acquisition chain that first produced it, so a later inverted
//!   acquisition can print *both* conflicting chains, not just the pair
//!   of labels.
//!
//! Cycle detection is incremental: before an acquisition blocks, we check
//! whether a path already leads from the about-to-be-acquired site back to
//! any currently held site. If it does, this acquisition would close a
//! cycle in the acquired-before relation — the classic ABBA deadlock shape
//! — and we panic with a report instead of ever blocking. Checking at
//! *attempt* time means the schedule does not have to actually interleave
//! into the deadlock for the inversion to be caught: one thread observing
//! `A -> B` and any thread later attempting `B` then `A` is enough.
//!
//! `try_lock` acquisitions push onto the held stack (so
//! [`assert_no_locks_held`] still sees them) but record **no** edges and
//! never panic: a non-blocking attempt cannot participate in a deadlock,
//! and treating it as an ordering commitment would manufacture false
//! cycles from opportunistic probing.
//!
//! Site labels are `&'static str` and identity is by label, not by lock
//! instance: two locks that may be held simultaneously by one thread must
//! carry distinct labels, while a pool of same-role locks (cache shards)
//! that are never nested can share one.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

#[derive(Clone, Copy)]
struct Held {
    site: &'static str,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Tokens distinguish multiple live guards of same-label locks so a
/// guard's `Drop` removes exactly its own stack entry.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// One observed acquired-before edge, with the acquisition chain (every
/// site held at the time, oldest first, ending with the acquired site)
/// that first established it.
struct Edge {
    chain: Vec<&'static str>,
}

/// Adjacency: `graph[a][b]` exists iff some thread acquired `b` while
/// holding `a`. Guarded by a plain `std::sync::Mutex` — the analysis
/// engine must not instrument its own lock.
static GRAPH: Mutex<BTreeMap<&'static str, BTreeMap<&'static str, Edge>>> =
    Mutex::new(BTreeMap::new());

fn next_token() -> u64 {
    NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

fn held_snapshot() -> Vec<Held> {
    HELD.with(|held| held.borrow().clone())
}

fn push_held(site: &'static str) -> u64 {
    let token = next_token();
    HELD.with(|held| held.borrow_mut().push(Held { site, token }));
    token
}

/// Called by a blocking `lock()`/`read()`/`write()` *before* it blocks.
/// Panics if this acquisition closes a cycle in the acquired-before
/// graph; otherwise records the new edges. Returns nothing — the caller
/// pushes the held entry via [`on_acquired`] only once the inner lock is
/// actually obtained, so a panicking sibling thread never leaks a stack
/// entry for a lock it does not hold.
pub(crate) fn before_blocking_acquire(site: &'static str) {
    let held = held_snapshot();
    if held.is_empty() {
        return;
    }
    if let Some(prior) = held.iter().find(|h| h.site == site) {
        panic!(
            "lock-order cycle: `{site}` acquired while already held by this thread\n  \
             held (oldest first): {}\n  \
             hint: locks that can be held together need distinct site labels; \
             re-acquiring the same lock would self-deadlock\n  \
             first acquisition token: {}",
            format_stack(&held),
            prior.token,
        );
    }
    let mut graph = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
    // Would `held -> site` close a cycle? Equivalent: does a path already
    // lead from `site` back to any held lock?
    if let Some(path) = find_path_to_any(&graph, site, &held) {
        let victim = *path.last().expect("path is never empty");
        let mut report = format!(
            "lock-order cycle: acquiring `{site}` while holding `{victim}`\n  \
             this thread's acquisition chain (oldest first): {} -> {site}\n  \
             conflicting acquired-before chain(s) previously observed:\n",
            format_stack(&held),
        );
        for pair in path.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let chain = graph
                .get(from)
                .and_then(|m| m.get(to))
                .map(|e| e.chain.join(" -> "))
                .unwrap_or_default();
            report.push_str(&format!("    `{from}` -> `{to}`  (first seen: {chain})\n"));
        }
        report.push_str(&format!(
            "  cycle: {} -> {site}\n  \
             fix: acquire these locks in one global order everywhere, or drop \
             one before taking the other (see DESIGN.md, lock ranking)",
            path.join(" -> "),
        ));
        panic!("{report}");
    }
    // Safe: record the new edges with this thread's chain as the example.
    let chain: Vec<&'static str> = held.iter().map(|h| h.site).chain([site]).collect();
    for h in &held {
        graph
            .entry(h.site)
            .or_default()
            .entry(site)
            .or_insert_with(|| Edge { chain: chain.clone() });
    }
}

/// Called once a blocking acquisition has actually obtained the lock.
pub(crate) fn on_acquired(site: &'static str) -> u64 {
    push_held(site)
}

/// Called when a `try_lock` succeeds: tracked as held, no edges recorded.
pub(crate) fn on_try_acquired(site: &'static str) -> u64 {
    push_held(site)
}

/// Called from guard `Drop`.
pub(crate) fn on_released(token: u64) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        // Search from the end: guards usually drop LIFO.
        if let Some(pos) = held.iter().rposition(|h| h.token == token) {
            held.remove(pos);
        }
    });
}

/// Called by `OrderedCondvar::wait`/`wait_for` before parking. A waiting
/// thread must hold exactly the one mutex it is waiting on: holding any
/// second lock across a wait stalls every other thread needing that lock
/// for an unbounded time (and deadlocks outright if the notifier needs
/// it). Removes the guard's held entry for the duration of the wait and
/// returns its site so [`after_wait`] can re-register the mutex under its
/// own label once the wait wakes.
pub(crate) fn before_wait(condvar_site: &'static str, guard_token: u64) -> &'static str {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if held.iter().any(|h| h.token != guard_token) {
            panic!(
                "condvar `{condvar_site}`: waiting while holding other locks\n  \
                 full held stack (oldest first): {}\n  \
                 waited mutex token: {guard_token}\n  \
                 fix: release every other lock before blocking on a condvar",
                format_stack(&held),
            );
        }
        let pos = held
            .iter()
            .rposition(|h| h.token == guard_token)
            .expect("condvar wait with a guard not on the held stack");
        held.remove(pos).site
    })
}

/// Called after the wait returns — by notify *or* timeout — and the mutex
/// is re-acquired. Re-checks that the thread picked up no other lock
/// while parked (`wait_for`'s timeout path runs through here too: a
/// timed-out waiter re-registers its guard exactly like a notified one).
/// Returns the guard's new token.
pub(crate) fn after_wait(mutex_site: &'static str) -> u64 {
    HELD.with(|held| {
        let held = held.borrow();
        if !held.is_empty() {
            panic!(
                "condvar wakeup re-acquiring `{mutex_site}`: thread already holds locks\n  \
                 full held stack (oldest first): {}\n  \
                 fix: a parked waiter must hold nothing; some path acquired a lock \
                 between the wait and the mutex re-acquisition",
                format_stack(&held),
            );
        }
    });
    push_held(mutex_site)
}

/// Panics if the current thread holds any instrumented lock. See
/// [`crate::assert_no_locks_held`] for the public, always-compiled entry.
pub(crate) fn assert_no_locks_held_impl(context: &str) {
    HELD.with(|held| {
        let held = held.borrow();
        if !held.is_empty() {
            panic!(
                "blocking operation `{context}` invoked while holding locks\n  \
                 held (oldest first): {}\n  \
                 fix: finish or drop every lock before issuing blocking I/O \
                 (OSS requests must never run under a lock)",
                format_stack(&held),
            );
        }
    });
}

/// BFS from `from` over the acquired-before graph; returns the path
/// (starting at `from`, ending at the first reachable held site) if any
/// held site is reachable.
fn find_path_to_any(
    graph: &BTreeMap<&'static str, BTreeMap<&'static str, Edge>>,
    from: &'static str,
    held: &[Held],
) -> Option<Vec<&'static str>> {
    let mut parent: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if let Some(next) = graph.get(node) {
            for &succ in next.keys() {
                if succ == from || parent.contains_key(succ) {
                    continue;
                }
                parent.insert(succ, node);
                if held.iter().any(|h| h.site == succ) {
                    // Reconstruct from -> ... -> succ.
                    let mut path = vec![succ];
                    let mut cur = succ;
                    while cur != from {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(succ);
            }
        }
    }
    None
}

/// Renders a held stack as `site#token, …` — tokens disambiguate multiple
/// live guards of same-label locks in multi-lock reports.
fn format_stack(held: &[Held]) -> String {
    held.iter().map(|h| format!("{}#{}", h.site, h.token)).collect::<Vec<_>>().join(", ")
}

/// Test-only: number of locks the current thread holds. Used by the
/// detector's own tests; not part of the public API surface.
#[doc(hidden)]
pub fn held_count() -> usize {
    HELD.with(|held| held.borrow().len())
}
