//! Seeded schedule exploration ("sched-fuzz") over the labeled lock
//! wrappers.
//!
//! Compiled only under `--features sched-fuzz`. The lock-order analysis
//! (see [`crate::analysis`]) proves the *ordering relation* sound, but it
//! cannot see schedule-dependent protocol bugs: a notify that fires before
//! the waiter waits, a window where a waiter observes a sealed-but-
//! uncommitted epoch, a check-then-act race between two critical sections.
//! Those bugs only manifest under specific interleavings that the OS
//! scheduler produces rarely and never reproducibly.
//!
//! This module makes thread interleavings a *seeded, explorable, and
//! replayable* input, the way `crates/simtest` did for crash points and
//! fault schedules. Every `OrderedMutex::lock`, `OrderedRwLock::{read,
//! write}`, `OrderedCondvar::{wait, wait_for, notify_*}`, guard release,
//! and explicit [`crate::sync_point`] call becomes a **preemption point**:
//! the thread hands control to a seeded scheduler which decides who runs
//! next. Exactly one scheduled thread runs at a time, so the execution is
//! fully determined by (test body, seed) — a failing seed replays the
//! identical interleaving forever.
//!
//! ## Scheduling strategies
//!
//! Each seed derives a strategy from its RNG stream:
//!
//! * **PCT** (probabilistic concurrency testing, Burckhardt et al.):
//!   threads get random priorities; the highest-priority runnable thread
//!   always runs; at `d` (1–3) randomly chosen preemption-point indices
//!   the running thread is demoted below everyone. PCT finds any bug of
//!   "depth" `d` with probability ≥ 1/(n·k^(d-1)) per seed, which is why a
//!   few dozen seeds reliably catch ordering bugs that stress tests miss.
//! * **Uniform random** fallback (1 seed in 4): every preemption point
//!   picks uniformly among runnable threads — worse bug-depth bounds, but
//!   it explores schedules PCT's priority structure never produces.
//!
//! ## Blocking model
//!
//! Scheduled threads never block in the OS: lock acquisition is a
//! `try_lock` loop that reports "blocked on lock L" to the scheduler, and
//! condvar waits park in the scheduler itself (notify marks the chosen
//! waiter runnable; it then re-acquires the mutex through the same
//! `try_lock` protocol). Because every blocked thread is scheduler-
//! visible, a schedule in which *no* thread can run is detected
//! immediately and reported as a deadlock — with each thread's blocking
//! site and the recent event trace — instead of hanging the test.
//!
//! `wait_for` timeouts are modeled, not timed: a timed waiter fires
//! exactly when no thread is runnable (a timeout always eventually
//! elapses) and, with probability 1/16 per scheduling decision, early —
//! so timeout-vs-notify races are explored too.
//!
//! ## What is and is not explored
//!
//! Only operations routed through `logstore-sync` are preemption points.
//! Raw atomics, channels, and plain loads/stores between sync operations
//! run atomically from the scheduler's point of view (the repo-wide
//! raw-lock lint keeps everything else out). Unregistered threads — the
//! test body itself, or anything not spawned via [`spawn`] — are not
//! scheduled and must not touch the locks under test while a schedule is
//! running.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to tear down sibling threads after a schedule
/// failure. Raised via `resume_unwind` so the default panic hook stays
/// quiet; the primary failure is recorded in the session before any
/// abort unwinds.
struct SchedAbort;

/// SplitMix64: tiny, seedable, and good enough to drive schedule choice.
/// Self-contained so the scheduler has no dependency on the `rand` stub.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point without special-casing seed 0.
        SplitMix64(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant here).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Strategy {
    Pct,
    Random,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// May be chosen to run.
    Runnable,
    /// Failed a `try_lock` for the lock with this id; runnable again once
    /// the lock is released.
    BlockedLock {
        id: u64,
        site: &'static str,
    },
    /// Parked in a condvar wait; runnable once notified (or, if `timed`,
    /// once the scheduler fires its timeout).
    CondWait {
        cv: u64,
        site: &'static str,
        timed: bool,
    },
    /// Notified or timed out; behaves as runnable, and carries the wakeup
    /// kind back to the `wait_for` caller.
    Woken {
        timed_out: bool,
    },
    Finished,
}

struct ThreadSlot {
    state: TState,
    priority: i64,
}

struct Core {
    seed: u64,
    rng: SplitMix64,
    strategy: Strategy,
    /// Sorted preemption-point indices at which PCT demotes the runner.
    change_points: Vec<u64>,
    /// Next demotion priority; strictly decreasing so later demotions
    /// rank below earlier ones (all below the random initial range ≥ 1).
    next_demotion: i64,
    threads: Vec<ThreadSlot>,
    /// Index of the one thread allowed to run, if any.
    current: Option<usize>,
    /// Preemption points taken so far.
    step: u64,
    /// Set by the first `JoinHandle::join`: threads spawned before it are
    /// held at a start gate so they enter the schedule together.
    started: bool,
    /// Set on failure: every parked or arriving thread unwinds with
    /// [`SchedAbort`] so the test body's joins return promptly.
    aborting: bool,
    /// The first failure observed (deadlock report or thread panic).
    failure: Option<String>,
    /// Registered threads that have not yet exited.
    live: usize,
    /// Ring buffer of recent (thread, site) events for failure reports.
    trace: VecDeque<(usize, &'static str)>,
}

struct Session {
    core: Mutex<Core>,
    cv: Condvar,
}

const TRACE_CAP: usize = 48;
/// PCT samples its priority-change points uniformly from this many steps.
const CHANGE_POINT_RANGE: u64 = 512;

impl Session {
    fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let strategy = if rng.below(4) == 0 { Strategy::Random } else { Strategy::Pct };
        let d = 1 + rng.below(3);
        let mut change_points: Vec<u64> =
            (0..d).map(|_| 1 + rng.below(CHANGE_POINT_RANGE)).collect();
        change_points.sort_unstable();
        change_points.dedup();
        Session {
            core: Mutex::new(Core {
                seed,
                rng,
                strategy,
                change_points,
                next_demotion: 0,
                threads: Vec::new(),
                current: None,
                step: 0,
                started: false,
                aborting: false,
                failure: None,
                live: 0,
                trace: VecDeque::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The session installed by [`run_seed`]; [`spawn`] attaches new threads
/// to it. Guarded by a plain std mutex — the scheduler must not schedule
/// itself.
static CURRENT_SESSION: Mutex<Option<Arc<Session>>> = Mutex::new(None);

/// Instance ids for locks and condvars, allocated lazily on first use
/// under the scheduler (the wrappers' `new` is `const fn`).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Loads — or, on first use, allocates — a stable nonzero scheduler id
/// for a lock/condvar instance. Racing first uses converge on one id.
pub(crate) fn lazy_id(cell: &AtomicU64) -> u64 {
    let id = cell.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match cell.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(existing) => existing,
    }
}

thread_local! {
    /// Set in threads created by [`spawn`]; the fast-path gate for every
    /// hook in `lib.rs`.
    static CTX: RefCell<Option<(Arc<Session>, usize)>> = const { RefCell::new(None) };
}

/// True when the current thread participates in an active schedule. The
/// lock wrappers branch on this before touching any scheduler state.
pub(crate) fn is_scheduled() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn with_ctx<R>(f: impl FnOnce(&Arc<Session>, usize) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(|(s, i)| f(s, *i)))
}

fn abort_unwind() -> ! {
    resume_unwind(Box::new(SchedAbort))
}

impl Core {
    fn record(&mut self, me: usize, site: &'static str) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back((me, site));
    }

    /// Picks the next thread to run. Must only be called by the thread
    /// that is currently running (descheduling itself) or, when nothing
    /// runs (`current == None`), by the session driver — otherwise two
    /// threads could both believe they hold the schedule.
    fn pick_next(&mut self) -> Result<(), String> {
        loop {
            let timed: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.state, TState::CondWait { timed: true, .. }))
                .map(|(i, _)| i)
                .collect();
            let runnable: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.state, TState::Runnable | TState::Woken { .. }))
                .map(|(i, _)| i)
                .collect();
            // Fire a modeled timeout when nothing else can run (a real
            // timeout always eventually elapses) or, occasionally, early —
            // exploring timeout-vs-notify races.
            if !timed.is_empty() && (runnable.is_empty() || self.rng.below(16) == 0) {
                let pick = timed[self.rng.below(timed.len() as u64) as usize];
                self.threads[pick].state = TState::Woken { timed_out: true };
                continue;
            }
            if runnable.is_empty() {
                self.current = None;
                if self.live == 0 || !self.started {
                    return Ok(());
                }
                return Err(self.deadlock_report());
            }
            let pick = match self.strategy {
                Strategy::Random => runnable[self.rng.below(runnable.len() as u64) as usize],
                Strategy::Pct => runnable
                    .iter()
                    .copied()
                    .max_by_key(|&i| (self.threads[i].priority, i))
                    .expect("runnable is non-empty"),
            };
            self.current = Some(pick);
            return Ok(());
        }
    }

    fn deadlock_report(&self) -> String {
        let mut report = format!(
            "sched: deadlock at step {} (seed {}): every live thread is blocked\n",
            self.step, self.seed
        );
        for (i, t) in self.threads.iter().enumerate() {
            let line = match t.state {
                TState::BlockedLock { site, .. } => format!("  t{i}: blocked acquiring `{site}`\n"),
                TState::CondWait { site, timed, .. } => format!(
                    "  t{i}: waiting on condvar `{site}`{}\n",
                    if timed { " (timed)" } else { "" }
                ),
                TState::Finished => format!("  t{i}: finished\n"),
                TState::Runnable | TState::Woken { .. } => format!("  t{i}: runnable (?)\n"),
            };
            report.push_str(&line);
        }
        report.push_str("  recent events (oldest first): ");
        let events: Vec<String> =
            self.trace.iter().map(|(t, site)| format!("t{t}@{site}")).collect();
        report.push_str(&events.join(", "));
        report.push('\n');
        report
    }
}

/// Registers the failure, flips the session into abort mode, and wakes
/// everyone so parked threads unwind. `core` is dropped before the unwind
/// so the session mutex is never poisoned.
fn fail_and_abort(session: &Session, mut core: MutexGuard<'_, Core>, report: String) -> ! {
    if core.failure.is_none() {
        core.failure = Some(report);
    }
    core.aborting = true;
    drop(core);
    session.cv.notify_all();
    abort_unwind()
}

/// One preemption point: advance the step counter, apply any PCT
/// priority-change point, re-pick the runner, and park until scheduled
/// again. Called only while the current thread runs.
fn yield_point(site: &'static str) {
    let Some((session, me)) = with_ctx(|s, i| (Arc::clone(s), i)) else { return };
    let mut core = session.lock_core();
    if core.aborting {
        drop(core);
        abort_unwind();
    }
    core.step += 1;
    core.record(me, site);
    if core.strategy == Strategy::Pct {
        let step = core.step;
        if core.change_points.binary_search(&step).is_ok() {
            if let Some(cur) = core.current {
                core.threads[cur].priority = core.next_demotion;
                core.next_demotion -= 1;
            }
        }
    }
    match core.pick_next() {
        Ok(()) => {}
        Err(report) => fail_and_abort(&session, core, report),
    }
    session.cv.notify_all();
    wait_turn(&session, core, me);
}

/// Parks until the scheduler hands the slot to `me`. Consumes nothing:
/// the caller inspects its own state afterwards.
fn wait_turn(session: &Session, mut core: MutexGuard<'_, Core>, me: usize) {
    while core.current != Some(me) {
        if core.aborting {
            drop(core);
            abort_unwind();
        }
        core = session.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
    }
    drop(core);
}

/// Preemption point before a non-blocking `try_lock` attempt.
pub(crate) fn try_point(site: &'static str) {
    if std::thread::panicking() {
        return;
    }
    yield_point(site);
}

/// Explicit preemption point (the public [`crate::sync_point`] hook).
pub(crate) fn sync_point(label: &'static str) {
    if std::thread::panicking() {
        return;
    }
    yield_point(label);
}

/// Scheduled lock acquisition: a `try_acquire` loop that never blocks the
/// OS thread. Used for mutex lock, rwlock read/write, and the post-wait
/// mutex re-acquisition.
pub(crate) fn acquire<G>(
    id: u64,
    site: &'static str,
    mut try_acquire: impl FnMut() -> Option<G>,
) -> G {
    if std::thread::panicking() {
        // A panicking thread (unwinding toward the session's catch) takes
        // the real blocking path: it must not be rescheduled, and its
        // remaining critical sections are short.
        loop {
            if let Some(g) = try_acquire() {
                return g;
            }
            std::thread::yield_now();
        }
    }
    loop {
        yield_point(site);
        if let Some(g) = try_acquire() {
            return g;
        }
        block_on_lock(id, site);
    }
}

fn block_on_lock(id: u64, site: &'static str) {
    let Some((session, me)) = with_ctx(|s, i| (Arc::clone(s), i)) else { return };
    let mut core = session.lock_core();
    if core.aborting {
        drop(core);
        abort_unwind();
    }
    core.threads[me].state = TState::BlockedLock { id, site };
    core.record(me, site);
    match core.pick_next() {
        Ok(()) => {}
        Err(report) => fail_and_abort(&session, core, report),
    }
    session.cv.notify_all();
    wait_turn(&session, core, me);
    // `released` marked us Runnable before we could be scheduled again.
}

/// Guard release: wake lock-blocked threads, then take a preemption point
/// (the window just after an unlock is where many protocol bugs live).
pub(crate) fn released(id: u64, site: &'static str) {
    let Some(session) = with_ctx(|s, _| Arc::clone(s)) else { return };
    {
        let mut core = session.lock_core();
        for t in &mut core.threads {
            if matches!(t.state, TState::BlockedLock { id: bid, .. } if bid == id) {
                t.state = TState::Runnable;
            }
        }
        session.cv.notify_all();
    }
    if !std::thread::panicking() {
        yield_point(site);
    }
}

/// Release bookkeeping without a preemption point — used when a condvar
/// wait drops the mutex (the wait itself is the preemption point).
pub(crate) fn released_quiet(id: u64) {
    let Some(session) = with_ctx(|s, _| Arc::clone(s)) else { return };
    let mut core = session.lock_core();
    for t in &mut core.threads {
        if matches!(t.state, TState::BlockedLock { id: bid, .. } if bid == id) {
            t.state = TState::Runnable;
        }
    }
    session.cv.notify_all();
}

/// Registers the current thread as a waiter on `cv` — called *before*
/// the mutex is released, so a notify can never slip into the gap (no
/// other thread runs until [`cv_park`] deschedules this one).
pub(crate) fn cv_wait_begin(cv: u64, site: &'static str, timed: bool) {
    let Some((session, me)) = with_ctx(|s, i| (Arc::clone(s), i)) else { return };
    let mut core = session.lock_core();
    if core.aborting {
        drop(core);
        abort_unwind();
    }
    core.threads[me].state = TState::CondWait { cv, site, timed };
    core.record(me, site);
}

/// Deschedules a registered condvar waiter until notified (or, for timed
/// waits, until the scheduler fires the timeout). Returns whether the
/// wakeup was a timeout.
pub(crate) fn cv_park() -> bool {
    let Some((session, me)) = with_ctx(|s, i| (Arc::clone(s), i)) else { return false };
    let mut core = session.lock_core();
    match core.pick_next() {
        Ok(()) => {}
        Err(report) => fail_and_abort(&session, core, report),
    }
    session.cv.notify_all();
    loop {
        if core.aborting {
            drop(core);
            abort_unwind();
        }
        if core.current == Some(me) {
            if let TState::Woken { timed_out } = core.threads[me].state {
                core.threads[me].state = TState::Runnable;
                drop(core);
                return timed_out;
            }
        }
        core = session.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Notify: marks one (seeded choice) or all waiters on `cv` as woken,
/// then takes a preemption point. A notify with no waiters is a no-op —
/// exactly the lost-notify semantics the explorer is built to catch.
pub(crate) fn cv_notify(cv: u64, all: bool, site: &'static str) {
    let Some((session, me)) = with_ctx(|s, i| (Arc::clone(s), i)) else { return };
    {
        let mut core = session.lock_core();
        let waiters: Vec<usize> = core
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, TState::CondWait { cv: c, .. } if c == cv))
            .map(|(i, _)| i)
            .collect();
        if !waiters.is_empty() {
            if all {
                for w in waiters {
                    core.threads[w].state = TState::Woken { timed_out: false };
                }
            } else {
                let pick = waiters[core.rng.below(waiters.len() as u64) as usize];
                core.threads[pick].state = TState::Woken { timed_out: false };
            }
        }
        core.record(me, site);
        session.cv.notify_all();
    }
    if !std::thread::panicking() {
        yield_point(site);
    }
}

/// Handle to a thread spawned under the schedule. Unlike
/// `std::thread::JoinHandle`, `join` never returns a panic: failures are
/// recorded in the session and re-raised by [`explore`] with the seed.
pub struct JoinHandle {
    session: Arc<Session>,
    inner: std::thread::JoinHandle<()>,
}

impl JoinHandle {
    /// Releases the start gate (first join only), then waits for the
    /// thread to finish. Panics inside the thread are captured into the
    /// session's failure slot, not propagated here.
    pub fn join(self) {
        {
            let mut core = self.session.lock_core();
            if !core.started {
                core.started = true;
            }
            // Kick the schedule if nothing is running (initial start, or
            // everything previously spawned already finished).
            if core.current.is_none() && core.live > 0 && !core.aborting {
                match core.pick_next() {
                    Ok(()) => {}
                    Err(report) => {
                        if core.failure.is_none() {
                            core.failure = Some(report);
                        }
                        core.aborting = true;
                    }
                }
            }
            self.session.cv.notify_all();
        }
        let _ = self.inner.join();
    }
}

/// Spawns a thread that participates in the current schedule. Must be
/// called inside an [`explore`]/[`run_seed`] body. Threads spawned before
/// the first `join` are held at a start gate and enter the schedule
/// together; threads spawned later join the pool at the next scheduling
/// decision.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let session = CURRENT_SESSION
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .expect("sched::spawn called outside sched::explore");
    let me = {
        let mut core = session.lock_core();
        let priority = 1 + core.rng.below(1 << 30) as i64;
        core.threads.push(ThreadSlot { state: TState::Runnable, priority });
        core.live += 1;
        core.threads.len() - 1
    };
    let thread_session = Arc::clone(&session);
    let inner = std::thread::spawn(move || {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&thread_session), me)));
        // Start gate, then wait to be scheduled for the first time.
        {
            let mut core = thread_session.lock_core();
            loop {
                if core.aborting {
                    // Never ran; just account for the exit.
                    core.threads[me].state = TState::Finished;
                    core.live -= 1;
                    drop(core);
                    thread_session.cv.notify_all();
                    return;
                }
                if core.started && core.current == Some(me) {
                    break;
                }
                core = thread_session.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let result = catch_unwind(AssertUnwindSafe(f));
        on_thread_exit(&thread_session, me, result);
    });
    // Give the scheduler a chance to run the new thread right away when
    // spawning from inside the schedule.
    if is_scheduled() {
        yield_point("sched.spawn");
    }
    JoinHandle { session, inner }
}

fn on_thread_exit(session: &Session, me: usize, result: Result<(), Box<dyn std::any::Any + Send>>) {
    let mut core = session.lock_core();
    core.threads[me].state = TState::Finished;
    core.live -= 1;
    match result {
        Ok(()) => {
            if core.current == Some(me) && !core.aborting {
                match core.pick_next() {
                    Ok(()) => {}
                    Err(report) => {
                        if core.failure.is_none() {
                            core.failure = Some(report);
                        }
                        core.aborting = true;
                    }
                }
            } else if core.current == Some(me) {
                core.current = None;
            }
        }
        Err(payload) => {
            if !payload.is::<SchedAbort>() && core.failure.is_none() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "scheduled thread panicked (non-string payload)".into());
                core.failure = Some(format!("sched: thread t{me} panicked: {msg}"));
            }
            core.aborting = true;
        }
    }
    drop(core);
    session.cv.notify_all();
}

/// Uninstalls the session on every exit path of [`run_seed`].
struct SessionInstallGuard;

impl Drop for SessionInstallGuard {
    fn drop(&mut self) {
        *CURRENT_SESSION.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Serializes schedules across test threads: `cargo test` runs tests
/// concurrently in one process, and only one schedule may own
/// [`CURRENT_SESSION`] at a time.
static EXPLORE_GATE: Mutex<()> = Mutex::new(());

/// Runs `body` once under the scheduler with `seed`, returning the
/// failure report if the schedule failed (deadlock, thread panic, or a
/// panic in `body` itself). The body must join every thread it spawns.
pub fn run_seed(seed: u64, body: &mut dyn FnMut()) -> Option<String> {
    let _exclusive = EXPLORE_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let session = Arc::new(Session::new(seed));
    {
        let mut current = CURRENT_SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(current.is_none(), "sched::explore does not nest");
        *current = Some(Arc::clone(&session));
    }
    let _uninstall = SessionInstallGuard;
    let body_result = catch_unwind(AssertUnwindSafe(body));
    // Drain: if the body leaked threads (or panicked before joining),
    // abort the schedule and wait for every registered thread to unwind.
    let mut core = session.lock_core();
    if core.live > 0 {
        core.aborting = true;
        if core.failure.is_none() && body_result.is_ok() {
            core.failure =
                Some("sched: body returned with live scheduled threads (join them)".into());
        }
        session.cv.notify_all();
        while core.live > 0 {
            core = session.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let mut failure = core.failure.take();
    drop(core);
    if failure.is_none() {
        if let Err(payload) = body_result {
            failure = Some(
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "explore body panicked (non-string payload)".into()),
            );
        }
    }
    failure
}

/// Runs `body` once per seed and panics on the first failing seed with
/// the failure report and exact replay instructions. Setting
/// `SCHED_SEED=<n>` replays only that seed (even outside `seeds`) — the
/// schedule is fully determined by the seed, so the replay reproduces
/// the failure exactly.
pub fn explore(seeds: std::ops::Range<u64>, mut body: impl FnMut()) {
    if let Some(seed) = replay_seed() {
        if let Some(failure) = run_seed(seed, &mut body) {
            panic!("sched: replay of seed {seed} failed\n{failure}");
        }
        return;
    }
    for seed in seeds {
        if let Some(failure) = run_seed(seed, &mut body) {
            panic!(
                "sched: schedule exploration failed at seed {seed}\n{failure}\n\
                 replay exactly: SCHED_SEED={seed} cargo test --release \
                 --features sched-fuzz <this test>"
            );
        }
    }
}

/// Like [`explore`], but returns the first failing `(seed, report)`
/// instead of panicking — the planted-bug tests assert a failure *is*
/// found within the seed budget. Ignores `SCHED_SEED`.
pub fn find_failure(seeds: std::ops::Range<u64>, mut body: impl FnMut()) -> Option<(u64, String)> {
    for seed in seeds {
        if let Some(failure) = run_seed(seed, &mut body) {
            return Some((seed, failure));
        }
    }
    None
}

fn replay_seed() -> Option<u64> {
    std::env::var("SCHED_SEED").ok().and_then(|s| s.trim().parse().ok())
}
