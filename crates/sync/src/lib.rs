//! Labeled lock wrappers with always-on deadlock detection in debug builds
//! and seeded schedule exploration under `--features sched-fuzz`.
//!
//! LogStore is aggressively concurrent — sharded caches, a Condvar
//! singleflight protocol, a parallel query pool, an ack-based archive
//! pipeline, Raft — and ordinary tests cannot see a lock-order inversion:
//! the inverted schedule has to actually interleave to deadlock, which it
//! reliably does only under production-shaped contention. This crate makes
//! the *ordering relation itself* the tested artifact, the way
//! FoundationDB's record layer keeps invariant checking always-on beneath
//! ordinary tests.
//!
//! [`OrderedMutex`], [`OrderedRwLock`] and [`OrderedCondvar`] are drop-in
//! wrappers over `parking_lot` primitives. Every lock is constructed with
//! a static **site label** (`"crate.module.field"` by convention — see
//! DESIGN.md; uniqueness and the convention are enforced by `xtask lint`).
//! In release builds the wrappers are zero-cost passthroughs: no site
//! stored, no extra state, same size as the underlying primitive (asserted
//! by test). Under `cfg(debug_assertions)` — or the `lock-analysis`
//! feature, which turns checking on in release builds too — every blocking
//! acquisition feeds a per-thread held-lock stack and a global
//! acquired-before graph with incremental cycle detection; an acquisition
//! that would close a cycle panics *before blocking* with a report naming
//! both site labels and both conflicting acquisition chains (see
//! [`analysis`]).
//!
//! The held stack also powers [`assert_no_locks_held`], called from the
//! `ObjectStore` decorator stack so a blocking OSS request issued under
//! any instrumented lock fails loudly in tests, and from
//! [`OrderedCondvar::wait`] so waiting while holding a second lock is
//! caught at the wait site.
//!
//! Under the `sched-fuzz` feature every wrapper operation additionally
//! becomes a preemption point for the seeded schedule explorer in
//! [`sched`]: a test body spawns threads via [`sched::spawn`] inside
//! [`sched::explore`], and each seed drives a different (replayable)
//! interleaving through every lock, condvar, and [`sync_point`] site.
//! Threads not registered with the scheduler use the normal paths, so the
//! feature is inert outside explorer tests.

#![forbid(unsafe_code)]

#[cfg(any(debug_assertions, feature = "lock-analysis"))]
pub mod analysis;
#[cfg(feature = "sched-fuzz")]
pub mod sched;

use std::fmt;
use std::ops::{Deref, DerefMut};
#[cfg(feature = "sched-fuzz")]
use std::sync::atomic::AtomicU64;
use std::time::Duration;

pub use parking_lot::WaitTimeoutResult;

/// Panics (in analysis builds) if the current thread holds any
/// [`OrderedMutex`]/[`OrderedRwLock`] guard. Call it at the entry of any
/// operation that may block for an unbounded time — OSS requests above
/// all: a GET issued under a cache shard lock turns one slow object into
/// a stall of every reader hashing to that shard. Release builds compile
/// this to nothing.
#[inline]
pub fn assert_no_locks_held(_context: &str) {
    #[cfg(any(debug_assertions, feature = "lock-analysis"))]
    analysis::assert_no_locks_held_impl(_context);
}

/// Explicit schedule-exploration preemption point. Place it inside a
/// protocol window whose interleavings matter but contain no lock
/// operation of their own (e.g. between draining rows and archiving
/// them). A no-op unless the `sched-fuzz` feature is on *and* the calling
/// thread is registered with an active [`sched::explore`] schedule.
#[inline]
pub fn sync_point(_label: &'static str) {
    #[cfg(feature = "sched-fuzz")]
    sched::sync_point(_label);
}

/// A [`parking_lot::Mutex`] with a site label and lock-order checking.
pub struct OrderedMutex<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
    site: &'static str,
    /// Scheduler identity, assigned lazily on first use (`new` is const).
    #[cfg(feature = "sched-fuzz")]
    sched_id: AtomicU64,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`OrderedMutex`]. Under `sched-fuzz` the inner guard is
/// optional: a scheduled condvar wait releases it while parked, and the
/// drop path hands the release to the scheduler.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-analysis"))]
    token: u64,
    #[cfg(feature = "sched-fuzz")]
    owner: &'a OrderedMutex<T>,
    #[cfg(feature = "sched-fuzz")]
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    #[cfg(not(feature = "sched-fuzz"))]
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex labeled `site` (convention: `"crate.module.field"`).
    pub const fn new(_site: &'static str, value: T) -> Self {
        OrderedMutex {
            #[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
            site: _site,
            #[cfg(feature = "sched-fuzz")]
            sched_id: AtomicU64::new(0),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquires the lock, blocking until available. In analysis builds the
    /// order check runs *before* blocking, so an inversion panics instead
    /// of deadlocking. Under an active schedule, acquisition goes through
    /// the explorer's try-loop so the scheduler sees the blocking.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        analysis::before_blocking_acquire(self.site);
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            let inner =
                sched::acquire(sched::lazy_id(&self.sched_id), self.site, || self.inner.try_lock());
            return OrderedMutexGuard {
                #[cfg(any(debug_assertions, feature = "lock-analysis"))]
                token: analysis::on_acquired(self.site),
                owner: self,
                inner: Some(inner),
            };
        }
        let inner = self.inner.lock();
        OrderedMutexGuard {
            #[cfg(any(debug_assertions, feature = "lock-analysis"))]
            token: analysis::on_acquired(self.site),
            #[cfg(feature = "sched-fuzz")]
            owner: self,
            #[cfg(feature = "sched-fuzz")]
            inner: Some(inner),
            #[cfg(not(feature = "sched-fuzz"))]
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking. Never panics on
    /// ordering: a non-blocking attempt cannot deadlock, and is not
    /// recorded as an ordering commitment. Under an active schedule the
    /// attempt is preceded by a preemption point.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            sched::try_point(self.site);
        }
        let inner = self.inner.try_lock()?;
        Some(OrderedMutexGuard {
            #[cfg(any(debug_assertions, feature = "lock-analysis"))]
            token: analysis::on_try_acquired(self.site),
            #[cfg(feature = "sched-fuzz")]
            owner: self,
            #[cfg(feature = "sched-fuzz")]
            inner: Some(inner),
            #[cfg(not(feature = "sched-fuzz"))]
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        #[cfg(feature = "sched-fuzz")]
        {
            self.inner.as_deref().expect("guard released for condvar wait")
        }
        #[cfg(not(feature = "sched-fuzz"))]
        {
            &self.inner
        }
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(feature = "sched-fuzz")]
        {
            self.inner.as_deref_mut().expect("guard released for condvar wait")
        }
        #[cfg(not(feature = "sched-fuzz"))]
        {
            &mut self.inner
        }
    }
}

#[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        analysis::on_released(self.token);
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            if let Some(inner) = self.inner.take() {
                // Release the real lock first, then let the scheduler wake
                // blocked threads and take a preemption point.
                drop(inner);
                sched::released(sched::lazy_id(&self.owner.sched_id), self.owner.site);
            }
        }
    }
}

/// A [`parking_lot::Condvar`] whose waits verify the thread holds only
/// the mutex it is waiting on.
pub struct OrderedCondvar {
    #[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
    site: &'static str,
    #[cfg(feature = "sched-fuzz")]
    sched_id: AtomicU64,
    inner: parking_lot::Condvar,
}

impl OrderedCondvar {
    /// Creates a condition variable labeled `site`.
    pub const fn new(_site: &'static str) -> Self {
        OrderedCondvar {
            #[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
            site: _site,
            #[cfg(feature = "sched-fuzz")]
            sched_id: AtomicU64::new(0),
            inner: parking_lot::Condvar::new(),
        }
    }

    /// Blocks until notified. Panics (analysis builds) if the thread holds
    /// any lock besides `guard`'s mutex — waiting with a second lock held
    /// stalls every thread needing that lock for as long as the wait
    /// lasts, and deadlocks outright if the notifier needs it.
    pub fn wait<T>(&self, guard: &mut OrderedMutexGuard<'_, T>) {
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            self.wait_scheduled(guard, false);
            return;
        }
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        let mutex_site = self.begin_wait(guard);
        self.inner.wait(guard.inner_mut());
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        {
            guard.token = analysis::after_wait(mutex_site);
        }
    }

    /// Blocks until notified or `timeout` elapses. Same checks as
    /// [`OrderedCondvar::wait`] — including, after a *timeout* wakeup, the
    /// re-registration check in `analysis::after_wait` (a timed-out waiter
    /// re-acquires the mutex exactly like a notified one).
    pub fn wait_for<T>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            // The scheduler models the timeout (it fires when nothing else
            // can run, or occasionally early); the duration itself is not
            // part of the explored schedule.
            return WaitTimeoutResult::new(self.wait_scheduled(guard, true));
        }
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        let mutex_site = self.begin_wait(guard);
        let result = self.inner.wait_for(guard.inner_mut(), timeout);
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        {
            guard.token = analysis::after_wait(mutex_site);
        }
        result
    }

    // Pops the guard's held entry for the duration of the wait (panicking
    // if any other lock is held) and returns the mutex's site label so the
    // wakeup path re-registers the guard under it.
    #[cfg(any(debug_assertions, feature = "lock-analysis"))]
    fn begin_wait<T: ?Sized>(&self, guard: &OrderedMutexGuard<'_, T>) -> &'static str {
        analysis::before_wait(self.site, guard.token)
    }

    /// The scheduled wait protocol: register as a waiter *before* dropping
    /// the mutex (no other thread runs in between, so a notify can never
    /// fall into the gap — the classic lost-wakeup window does not exist
    /// unless the protocol under test creates one), park in the scheduler,
    /// then re-acquire the mutex through the scheduler. Returns whether
    /// the wakeup was a modeled timeout.
    #[cfg(feature = "sched-fuzz")]
    fn wait_scheduled<T: ?Sized>(&self, guard: &mut OrderedMutexGuard<'_, T>, timed: bool) -> bool {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        let mutex_site = analysis::before_wait(self.site, guard.token);
        sched::cv_wait_begin(sched::lazy_id(&self.sched_id), self.site, timed);
        let owner = guard.owner;
        let mutex_id = sched::lazy_id(&owner.sched_id);
        drop(guard.inner.take().expect("guard already waiting"));
        sched::released_quiet(mutex_id);
        let timed_out = sched::cv_park();
        let inner = sched::acquire(mutex_id, owner.site, || owner.inner.try_lock());
        guard.inner = Some(inner);
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        {
            guard.token = analysis::after_wait(mutex_site);
        }
        timed_out
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            sched::cv_notify(sched::lazy_id(&self.sched_id), false, self.site);
        }
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            sched::cv_notify(sched::lazy_id(&self.sched_id), true, self.site);
        }
        self.inner.notify_all();
    }
}

impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
    /// The inner parking_lot guard, for the unscheduled condvar paths.
    #[cfg(feature = "sched-fuzz")]
    fn inner_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        self.inner.as_mut().expect("guard already waiting")
    }

    #[cfg(not(feature = "sched-fuzz"))]
    fn inner_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        &mut self.inner
    }
}

impl fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OrderedCondvar")
    }
}

/// A [`parking_lot::RwLock`] with a site label and lock-order checking.
/// Read and write acquisitions participate identically in the order graph:
/// a read-lock ABBA against a writer deadlocks just the same.
pub struct OrderedRwLock<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
    site: &'static str,
    #[cfg(feature = "sched-fuzz")]
    sched_id: AtomicU64,
    inner: parking_lot::RwLock<T>,
}

/// Shared-read RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-analysis"))]
    token: u64,
    #[cfg(feature = "sched-fuzz")]
    owner: &'a OrderedRwLock<T>,
    #[cfg(feature = "sched-fuzz")]
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    #[cfg(not(feature = "sched-fuzz"))]
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-analysis"))]
    token: u64,
    #[cfg(feature = "sched-fuzz")]
    owner: &'a OrderedRwLock<T>,
    #[cfg(feature = "sched-fuzz")]
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    #[cfg(not(feature = "sched-fuzz"))]
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates a reader-writer lock labeled `site`.
    pub const fn new(_site: &'static str, value: T) -> Self {
        OrderedRwLock {
            #[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
            site: _site,
            #[cfg(feature = "sched-fuzz")]
            sched_id: AtomicU64::new(0),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        analysis::before_blocking_acquire(self.site);
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            let inner =
                sched::acquire(sched::lazy_id(&self.sched_id), self.site, || self.inner.try_read());
            return OrderedRwLockReadGuard {
                #[cfg(any(debug_assertions, feature = "lock-analysis"))]
                token: analysis::on_acquired(self.site),
                owner: self,
                inner: Some(inner),
            };
        }
        let inner = self.inner.read();
        OrderedRwLockReadGuard {
            #[cfg(any(debug_assertions, feature = "lock-analysis"))]
            token: analysis::on_acquired(self.site),
            #[cfg(feature = "sched-fuzz")]
            owner: self,
            #[cfg(feature = "sched-fuzz")]
            inner: Some(inner),
            #[cfg(not(feature = "sched-fuzz"))]
            inner,
        }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        analysis::before_blocking_acquire(self.site);
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            let inner = sched::acquire(sched::lazy_id(&self.sched_id), self.site, || {
                self.inner.try_write()
            });
            return OrderedRwLockWriteGuard {
                #[cfg(any(debug_assertions, feature = "lock-analysis"))]
                token: analysis::on_acquired(self.site),
                owner: self,
                inner: Some(inner),
            };
        }
        let inner = self.inner.write();
        OrderedRwLockWriteGuard {
            #[cfg(any(debug_assertions, feature = "lock-analysis"))]
            token: analysis::on_acquired(self.site),
            #[cfg(feature = "sched-fuzz")]
            owner: self,
            #[cfg(feature = "sched-fuzz")]
            inner: Some(inner),
            #[cfg(not(feature = "sched-fuzz"))]
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        #[cfg(feature = "sched-fuzz")]
        {
            self.inner.as_deref().expect("read guard present outside condvar wait")
        }
        #[cfg(not(feature = "sched-fuzz"))]
        {
            &self.inner
        }
    }
}

#[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        analysis::on_released(self.token);
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            if let Some(inner) = self.inner.take() {
                drop(inner);
                sched::released(sched::lazy_id(&self.owner.sched_id), self.owner.site);
            }
        }
    }
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        #[cfg(feature = "sched-fuzz")]
        {
            self.inner.as_deref().expect("write guard present outside condvar wait")
        }
        #[cfg(not(feature = "sched-fuzz"))]
        {
            &self.inner
        }
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(feature = "sched-fuzz")]
        {
            self.inner.as_deref_mut().expect("write guard present outside condvar wait")
        }
        #[cfg(not(feature = "sched-fuzz"))]
        {
            &mut self.inner
        }
    }
}

#[cfg(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz"))]
impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "lock-analysis"))]
        analysis::on_released(self.token);
        #[cfg(feature = "sched-fuzz")]
        if sched::is_scheduled() {
            if let Some(inner) = self.inner.take() {
                drop(inner);
                sched::released(sched::lazy_id(&self.owner.sched_id), self.owner.site);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_passthrough_basics() {
        let m = OrderedMutex::new("sync.test.basic", 5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_passthrough_basics() {
        let l = OrderedRwLock::new("sync.test.rw", vec![1, 2]);
        // Note: same-thread *recursive* reads are deliberately flagged by
        // the analysis (they deadlock against a queued writer), so reads
        // here are sequential, not nested.
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_roundtrip() {
        let m = OrderedMutex::new("sync.test.cv_mutex", false);
        let cv = OrderedCondvar::new("sync.test.cv");
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        // The guard still works after the wait.
        *g = true;
        drop(g);
        assert!(*m.lock());
    }

    /// Release passthrough: the wrappers must add no state beyond the
    /// underlying parking_lot primitive. Only meaningful when both the
    /// analysis machinery and the schedule explorer are compiled out.
    #[cfg(not(any(debug_assertions, feature = "lock-analysis", feature = "sched-fuzz")))]
    #[test]
    fn release_wrappers_are_zero_cost() {
        use std::mem::size_of;
        assert_eq!(size_of::<OrderedMutex<u64>>(), size_of::<parking_lot::Mutex<u64>>());
        assert_eq!(size_of::<OrderedRwLock<u64>>(), size_of::<parking_lot::RwLock<u64>>());
        assert_eq!(size_of::<OrderedCondvar>(), size_of::<parking_lot::Condvar>());
        assert_eq!(
            size_of::<OrderedMutexGuard<'_, u64>>(),
            size_of::<parking_lot::MutexGuard<'_, u64>>()
        );
        assert_eq!(
            size_of::<OrderedRwLockReadGuard<'_, u64>>(),
            size_of::<parking_lot::RwLockReadGuard<'_, u64>>()
        );
        assert_eq!(
            size_of::<OrderedRwLockWriteGuard<'_, u64>>(),
            size_of::<parking_lot::RwLockWriteGuard<'_, u64>>()
        );
    }
}
