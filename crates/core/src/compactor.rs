//! Background LogBlock compaction and OSS garbage collection.
//!
//! Per-tenant threshold flushes produce many small LogBlocks for cold
//! tenants; as history ages, the block map fragments and every query pays
//! one-plus OSS GETs per tiny block. The compactor merges runs of small
//! adjacent-in-time blocks of one tenant into a single large block —
//! rebuilding the SMA / inverted / BKD indexes through the ordinary
//! [`LogBlockBuilder`] — and retires the sources through a crash-safe
//! **plan → build → upload → swap → tombstone → delete** protocol:
//!
//! 1. **plan**: [`MetadataStore::begin_compaction`] verifies the sources
//!    are live and records the merged path as a pending intent
//!    ([`CrashPoint::CompactPlanned`]);
//! 2. **build + upload**: the merged block goes to OSS under the new path
//!    while the sources remain the live ones
//!    ([`CrashPoint::CompactUploaded`]);
//! 3. **swap + tombstone**: one [`MetadataStore::commit_compaction`]
//!    transaction replaces the sources with the merged entry and moves
//!    their paths to the persistent tombstone list
//!    ([`CrashPoint::CompactCommitted`]);
//! 4. **delete**: a separate GC pass ([`run_gc`]) deletes tombstoned
//!    objects ([`CrashPoint::BeforeGcDelete`]), keeping every path whose
//!    delete fails for the next pass.
//!
//! The delete is *last* and *retryable by construction*: at every crash
//! point each object is either live in the map, a pending intent, or a
//! tombstone — never forgotten. This is the same ordering argument that
//! fixes the historical `run_expiration` bug (delete-then-forget leaked
//! objects on a failed delete); expiration now shares the tombstone list
//! and the GC pass.
//!
//! No lock is held across any OSS call (the store stack's
//! `assert_no_locks_held` guards enforce this): every metadata transaction
//! completes before the next I/O starts.

use crate::databuilder::BuildConfig;
use crate::hooks::{CrashHooks, CrashPoint};
use crate::metadata::{LogBlockEntry, MetadataStore};
use logstore_cache::TieredCache;
use logstore_logblock::{LogBlockBuilder, LogBlockReader};
use logstore_oss::ObjectStore;
use logstore_types::{Error, Result, TableSchema, TenantId, Timestamp};

/// What counts as "small" and how much to merge at once.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// Blocks with fewer rows than this are merge candidates.
    pub small_block_rows: u64,
    /// Minimum run length worth rewriting.
    pub min_run: usize,
    /// Row cap for one merged block (compaction targets *large* blocks, so
    /// this is typically several times the flush-time LogBlock cap).
    pub max_merged_rows: u64,
}

/// Outcome of one compaction pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Merge runs committed.
    pub runs_committed: u64,
    /// Source blocks superseded (now tombstoned).
    pub blocks_merged: u64,
    /// Rows rewritten into merged blocks.
    pub rows_rewritten: u64,
    /// Merged bytes uploaded.
    pub bytes_uploaded: u64,
    /// Runs abandoned because a concurrent expire/compact won the race.
    pub runs_lost_races: u64,
}

/// Outcome of one GC pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Tombstoned objects deleted from OSS.
    pub deleted: u64,
    /// Tombstones kept for the next pass because their delete failed.
    pub retained: u64,
    /// Orphaned pending paths (crash between upload and commit) swept
    /// into the tombstone list this pass.
    pub orphans_swept: u64,
}

/// One planned merge: a tenant and the run of source entries to rewrite.
#[derive(Debug, Clone)]
pub struct CompactionRun {
    /// The tenant owning every source block.
    pub tenant: TenantId,
    /// The source entries, in per-tenant path order (adjacent-in-time for
    /// blocks of one shard's drain sequence).
    pub sources: Vec<LogBlockEntry>,
}

/// Selects merge runs: per tenant, sort blocks by path (allocation order —
/// adjacent paths are adjacent flushes) and take maximal runs of
/// consecutive small blocks, greedily split so no merged block exceeds
/// `max_merged_rows`. Runs shorter than `min_run` are left alone.
pub fn plan_compactions(metadata: &MetadataStore, config: &CompactionConfig) -> Vec<CompactionRun> {
    let mut runs = Vec::new();
    for tenant in metadata.tenants() {
        let mut blocks = metadata.all_blocks(tenant);
        blocks.sort_by(|a, b| a.path.cmp(&b.path));
        let mut current: Vec<LogBlockEntry> = Vec::new();
        let mut current_rows = 0u64;
        let mut flush = |run: &mut Vec<LogBlockEntry>, rows: &mut u64| {
            if run.len() >= config.min_run {
                runs.push(CompactionRun { tenant, sources: std::mem::take(run) });
            } else {
                run.clear();
            }
            *rows = 0;
        };
        for block in blocks {
            let small = block.rows < config.small_block_rows;
            if !small {
                flush(&mut current, &mut current_rows);
                continue;
            }
            if current_rows + block.rows > config.max_merged_rows {
                flush(&mut current, &mut current_rows);
            }
            current_rows += block.rows;
            current.push(block);
        }
        flush(&mut current, &mut current_rows);
    }
    runs
}

/// Executes every planned run through the full protocol. Per-run errors
/// are isolated (one tenant's failure must not abort another's merge);
/// the first error is returned after every run was attempted, alongside
/// nothing — the report only counts committed work.
pub fn run_compaction<S: ObjectStore>(
    store: &S,
    metadata: &MetadataStore,
    schema: &TableSchema,
    build: &BuildConfig,
    config: &CompactionConfig,
    hooks: &dyn CrashHooks,
) -> Result<CompactionReport> {
    let mut report = CompactionReport::default();
    let mut first_error: Option<Error> = None;
    for run in plan_compactions(metadata, config) {
        match compact_one_run(store, metadata, schema, build, hooks, &run, &mut report) {
            Ok(()) => {}
            Err(Error::Stale(_)) => report.runs_lost_races += 1,
            Err(e) => {
                first_error.get_or_insert(e);
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// One run through plan→build→upload→swap (tombstoning is part of the
/// swap transaction; deletion belongs to [`run_gc`]).
fn compact_one_run<S: ObjectStore>(
    store: &S,
    metadata: &MetadataStore,
    schema: &TableSchema,
    build: &BuildConfig,
    hooks: &dyn CrashHooks,
    run: &CompactionRun,
    report: &mut CompactionReport,
) -> Result<()> {
    // Protect the merged path from the stale-pending sweep while we build.
    let _build_guard = metadata.begin_build();
    let source_paths: Vec<String> = run.sources.iter().map(|e| e.path.clone()).collect();
    let merged_path = metadata.begin_compaction(run.tenant, &source_paths)?;
    hooks.reached(CrashPoint::CompactPlanned);

    let built = match build_merged_block(store, schema, build, &run.sources) {
        Ok(bytes) => bytes,
        Err(e) => {
            // Nothing provably on OSS under the merged path; tombstone it
            // so GC cleans up whatever half-state a real store might hold.
            metadata.abort_compaction(&merged_path);
            return Err(e);
        }
    };
    if let Err(e) = store.put(&merged_path, &built) {
        metadata.abort_compaction(&merged_path);
        return Err(e);
    }
    hooks.reached(CrashPoint::CompactUploaded);

    // Source rows are a concatenation, so the merged coverage and row
    // count are exactly the union of the sources'. begin_compaction
    // rejected empty runs, making the fold seeds total.
    let mut min_ts = Timestamp(i64::MAX);
    let mut max_ts = Timestamp(i64::MIN);
    for source in &run.sources {
        min_ts = min_ts.min(source.min_ts);
        max_ts = max_ts.max(source.max_ts);
    }
    let entry = LogBlockEntry {
        path: merged_path.clone(),
        min_ts,
        max_ts,
        rows: run.sources.iter().map(|e| e.rows).sum(),
        bytes: built.len() as u64,
    };
    if let Err(e) = metadata.commit_compaction(run.tenant, entry, &source_paths) {
        // A concurrent expire/compact unmapped a source. The merged upload
        // is now garbage: tombstone it and let GC delete it.
        metadata.abort_compaction(&merged_path);
        return Err(e);
    }
    hooks.reached(CrashPoint::CompactCommitted);
    report.runs_committed += 1;
    report.blocks_merged += run.sources.len() as u64;
    report.rows_rewritten += run.sources.iter().map(|e| e.rows).sum::<u64>();
    report.bytes_uploaded += built.len() as u64;
    Ok(())
}

/// Reads every source block and rebuilds one merged block. Row order is
/// the concatenation of the sources in run order (per-tenant path order) —
/// the same order a query's scatter visits the originals — so a scan of
/// the merged block is bit-identical to scanning the sources in sequence.
/// The builder recomputes SMA / inverted / BKD indexes from scratch.
fn build_merged_block<S: ObjectStore>(
    store: &S,
    schema: &TableSchema,
    build: &BuildConfig,
    sources: &[LogBlockEntry],
) -> Result<Vec<u8>> {
    let mut builder =
        LogBlockBuilder::with_options(schema.clone(), build.compression, build.block_rows);
    let width = schema.width();
    for source in sources {
        let bytes = store.get(&source.path)?;
        let reader = LogBlockReader::open(bytes)?;
        let columns: Vec<Vec<logstore_types::Value>> =
            (0..width).map(|c| reader.read_column(c)).collect::<Result<_>>()?;
        for r in 0..reader.row_count() as usize {
            let row: Vec<logstore_types::Value> =
                columns.iter().map(|column| column[r].clone()).collect();
            builder.add_row(&row)?;
        }
    }
    builder.finish()
}

/// The GC pass: sweeps orphaned pending paths (no build in flight ⇒ their
/// uploads died before committing) into the tombstone list, then deletes
/// every tombstoned object. A failed delete *retains* the tombstone for
/// the next pass — the object is never forgotten — and never aborts the
/// rest of the pass. Successfully deleted paths are evicted from the
/// block cache so dead objects stop pinning memory/disk budget.
pub fn run_gc<S: ObjectStore>(
    store: &S,
    metadata: &MetadataStore,
    cache: Option<&TieredCache>,
    hooks: &dyn CrashHooks,
) -> GcReport {
    let mut report =
        GcReport { orphans_swept: metadata.sweep_stale_pending() as u64, ..Default::default() };
    for path in metadata.tombstones() {
        hooks.reached(CrashPoint::BeforeGcDelete);
        match store.delete(&path) {
            Ok(()) => {
                metadata.remove_tombstone(&path);
                if let Some(cache) = cache {
                    cache.evict_object(&path);
                }
                report.deleted += 1;
            }
            Err(_) => report.retained += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHooks;
    use logstore_codec::Compression;
    use logstore_oss::{FaultScope, FaultyStore, MemoryStore};
    use logstore_types::{Timestamp, Value};

    fn entry(path: &str, min: i64, max: i64, rows: u64) -> LogBlockEntry {
        LogBlockEntry {
            path: path.to_string(),
            min_ts: Timestamp(min),
            max_ts: Timestamp(max),
            rows,
            bytes: rows * 10,
        }
    }

    fn cfg() -> CompactionConfig {
        CompactionConfig { small_block_rows: 100, min_run: 2, max_merged_rows: 250 }
    }

    #[test]
    fn planner_selects_runs_of_consecutive_small_blocks() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("a", 0, 9, 10)).unwrap();
        m.register_block(t, entry("b", 10, 19, 10)).unwrap();
        m.register_block(t, entry("c", 20, 29, 500)).unwrap(); // large, breaks the run
        m.register_block(t, entry("d", 30, 39, 10)).unwrap();
        m.register_block(t, entry("e", 40, 49, 10)).unwrap();
        m.register_block(t, entry("f", 50, 59, 10)).unwrap();
        let runs = plan_compactions(&m, &cfg());
        assert_eq!(runs.len(), 2);
        let paths: Vec<Vec<&str>> =
            runs.iter().map(|r| r.sources.iter().map(|e| e.path.as_str()).collect()).collect();
        assert_eq!(paths, vec![vec!["a", "b"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn planner_caps_merged_rows_and_skips_short_runs() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        for (i, p) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            m.register_block(t, entry(p, i as i64 * 10, i as i64 * 10 + 9, 90)).unwrap();
        }
        // Cap 250 → greedy runs of two 90-row blocks ([a,b], [c,d]); the
        // leftover singleton e is below min_run and stays.
        let runs = plan_compactions(&m, &cfg());
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.sources.len() == 2));
        // A lone small block between large ones is never worth a rewrite.
        let m2 = MetadataStore::new();
        m2.register_block(t, entry("x", 0, 9, 500)).unwrap();
        m2.register_block(t, entry("y", 10, 19, 10)).unwrap();
        m2.register_block(t, entry("z", 20, 29, 500)).unwrap();
        assert!(plan_compactions(&m2, &cfg()).is_empty());
    }

    #[test]
    fn gc_retries_failed_deletes_without_aborting_the_pass() {
        let store = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 7);
        let m = MetadataStore::new();
        for p in ["tenants/1/a", "tenants/1/b", "tenants/2/c"] {
            store.put(p, b"x").unwrap();
            m.register_block(TenantId(1), entry(p, 0, 1, 1)).unwrap();
        }
        m.set_retention(TenantId(1), Some(1));
        m.expire(TenantId(1), Timestamp(1_000));
        assert_eq!(m.tombstones().len(), 3);
        // The first delete of the pass fails; the other two proceed.
        store.fail_next(1);
        let first = run_gc(&store, &m, None, &NoopHooks);
        assert_eq!(first.deleted, 2);
        assert_eq!(first.retained, 1);
        assert_eq!(m.tombstones().len(), 1);
        // Next pass finishes the job: nothing leaked.
        let second = run_gc(&store, &m, None, &NoopHooks);
        assert_eq!(second.deleted, 1);
        assert!(m.tombstones().is_empty());
        assert_eq!(store.inner().object_count(), 0);
    }

    #[test]
    fn gc_sweeps_orphaned_uploads() {
        let store = MemoryStore::new();
        let m = MetadataStore::new();
        // A crash between put and commit: the object exists, the path is
        // pending, no build is in flight any more.
        let orphan = m.allocate_block_path(TenantId(1));
        store.put(&orphan, b"garbage").unwrap();
        let report = run_gc(&store, &m, None, &NoopHooks);
        assert_eq!(report.orphans_swept, 1);
        assert_eq!(report.deleted, 1);
        assert_eq!(store.object_count(), 0);
        assert!(m.pending_paths().is_empty());
        assert!(m.tombstones().is_empty());
    }

    #[test]
    fn merge_preserves_rows_and_order_end_to_end() {
        let schema = TableSchema::request_log();
        let build = BuildConfig {
            compression: Compression::LzHigh,
            block_rows: 8,
            max_rows_per_logblock: 4096,
        };
        let store = MemoryStore::new();
        let m = MetadataStore::new();
        let t = TenantId(9);
        // Three small source blocks with known rows.
        let mut all_rows: Vec<Vec<Value>> = Vec::new();
        for chunk in 0..3i64 {
            let mut b = LogBlockBuilder::with_options(schema.clone(), build.compression, 8);
            let (mut min, mut max) = (i64::MAX, i64::MIN);
            for i in 0..10i64 {
                let ts = chunk * 100 + i;
                let row = vec![
                    Value::U64(t.raw()),
                    Value::I64(ts),
                    Value::from("ip"),
                    Value::from("/p"),
                    Value::I64(ts % 7),
                    Value::Bool(false),
                    Value::from(format!("line {ts}")),
                ];
                b.add_row(&row).unwrap();
                all_rows.push(row);
                min = min.min(ts);
                max = max.max(ts);
            }
            let bytes = b.finish().unwrap();
            let path = m.allocate_block_path(t);
            store.put(&path, &bytes).unwrap();
            m.register_block(
                t,
                LogBlockEntry {
                    path,
                    min_ts: Timestamp(min),
                    max_ts: Timestamp(max),
                    rows: 10,
                    bytes: bytes.len() as u64,
                },
            )
            .unwrap();
        }
        let config = CompactionConfig { small_block_rows: 100, min_run: 2, max_merged_rows: 100 };
        let report = run_compaction(&store, &m, &schema, &build, &config, &NoopHooks).unwrap();
        assert_eq!(report.runs_committed, 1);
        assert_eq!(report.blocks_merged, 3);
        assert_eq!(report.rows_rewritten, 30);
        let blocks = m.all_blocks(t);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].rows, 30);
        assert_eq!(blocks[0].min_ts, Timestamp(0));
        assert_eq!(blocks[0].max_ts, Timestamp(209));
        // The merged block scans to the exact concatenation of the sources.
        let reader = LogBlockReader::open(store.get(&blocks[0].path).unwrap()).unwrap();
        assert_eq!(reader.row_count(), 30);
        for c in 0..schema.width() {
            let col = reader.read_column(c).unwrap();
            for (r, expected) in all_rows.iter().enumerate() {
                assert_eq!(col[r], expected[c], "row {r} col {c}");
            }
        }
        // GC then removes the superseded objects.
        let gc = run_gc(&store, &m, None, &NoopHooks);
        assert_eq!(gc.deleted, 3);
        assert_eq!(store.object_count(), 1);
    }
}
