//! Engine configuration.

use logstore_codec::Compression;
use logstore_flow::FlowControlConfig;
use logstore_oss::{FaultScope, LatencyModel, RetryPolicy};
use logstore_types::TableSchema;

/// Which balancing algorithm the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerKind {
    /// No traffic control at all (the Fig 12 baseline).
    None,
    /// Algorithm 2.
    Greedy,
    /// Algorithm 3 (production default).
    MaxFlow,
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Table schema served by the cluster.
    pub schema: TableSchema,
    /// Number of worker nodes.
    pub workers: u32,
    /// Shards per worker.
    pub shards_per_worker: u32,
    /// Capacity of one shard in log entries/sec (drives flow control).
    pub shard_capacity: u64,
    /// Column compression for LogBlocks.
    pub compression: Compression,
    /// Rows per column block inside a LogBlock.
    pub block_rows: usize,
    /// Max rows in one LogBlock (larger tenants get multiple blocks).
    pub max_rows_per_logblock: usize,
    /// Row-store bytes per shard that trigger a background build.
    pub rowstore_flush_bytes: usize,
    /// Row-store bytes per shard at which ingest is rejected (BFC).
    pub rowstore_backpressure_bytes: usize,
    /// Latency model of the simulated OSS.
    pub oss_latency: LatencyModel,
    /// Retry/backoff policy for every OSS operation (archive uploads,
    /// prefetch and demand reads alike). `RetryPolicy::none()` disables
    /// retries so injected faults surface exactly once.
    pub oss_retry: RetryPolicy,
    /// Which operation class the OSS fault injector may fail.
    pub oss_fault_scope: FaultScope,
    /// Probability that an in-scope OSS operation fails (0.0 = inert).
    pub oss_fault_probability: f64,
    /// Memory block cache capacity in bytes.
    pub cache_memory_bytes: usize,
    /// Optional SSD cache capacity in bytes (None = memory-only).
    pub cache_disk_bytes: Option<usize>,
    /// Cache block alignment in bytes.
    pub cache_block_size: u64,
    /// Hash-shard count for the block cache's tiers (rounded up to a power
    /// of two). Each shard has its own mutex and byte budget, so parallel
    /// scans don't serialize on one lock.
    pub cache_shards: usize,
    /// Prefetch thread count (the paper evaluates 32).
    pub prefetch_threads: usize,
    /// Size of the engine's shared scatter/gather query pool: the upper
    /// bound on concurrently-running per-source collection tasks across
    /// ALL in-flight queries.
    pub query_threads: usize,
    /// Flow-control knobs (α, per-tenant shard limit, interval).
    pub flow: FlowControlConfig,
    /// Balancer selection.
    pub balancer: BalancerKind,
    /// Replicate each shard's writes through an in-process Raft group of
    /// this size (1 = no replication).
    pub raft_replicas: usize,
    /// Controller replica count: the control plane's route table, topology
    /// and rebalance decisions are a state machine replicated through a
    /// Raft group of this size (1 = a single, unreplicated controller).
    pub controller_replicas: usize,
    /// RNG seed for all deterministic randomness.
    pub seed: u64,
    /// When set, every shard keeps a durable WAL under this directory and
    /// recovers from it on reopen (phase-one durability). When `None`, the
    /// row store is memory-only (fastest; fine for benchmarks).
    pub data_dir: Option<std::path::PathBuf>,
    /// Per-shard WAL tuning: flush policy, segment size, and the
    /// group-commit knobs (`group_commit_window`, `max_group_bytes`).
    /// Ignored when `data_dir` is `None`.
    pub wal: logstore_wal::WalConfig,
    /// Compaction candidate threshold: LogBlocks with fewer rows than this
    /// may be merged with their neighbours. `None` defaults to
    /// `max_rows_per_logblock` (any partially-filled block qualifies).
    pub compact_small_rows: Option<u64>,
    /// Minimum run of adjacent small blocks worth rewriting.
    pub compact_min_run: usize,
    /// Row cap for one merged block. `None` defaults to
    /// `4 * max_rows_per_logblock` — compaction exists to build blocks
    /// *larger* than the flush path's cap.
    pub compact_max_merged_rows: Option<u64>,
}

impl ClusterConfig {
    /// A small, fast, fully-deterministic configuration for tests.
    pub fn for_testing() -> Self {
        ClusterConfig {
            schema: TableSchema::request_log(),
            workers: 2,
            shards_per_worker: 2,
            shard_capacity: 100_000,
            compression: Compression::LzHigh,
            block_rows: 256,
            max_rows_per_logblock: 4096,
            rowstore_flush_bytes: 4 << 20,
            rowstore_backpressure_bytes: 64 << 20,
            oss_latency: LatencyModel::zero(),
            oss_retry: RetryPolicy::none(),
            oss_fault_scope: FaultScope::All,
            oss_fault_probability: 0.0,
            cache_memory_bytes: 8 << 20,
            cache_disk_bytes: None,
            cache_block_size: 64 * 1024,
            cache_shards: 4,
            prefetch_threads: 4,
            query_threads: 4,
            flow: FlowControlConfig {
                alpha: 0.85,
                per_tenant_shard_limit: 50_000,
                check_interval_secs: 300,
            },
            balancer: BalancerKind::MaxFlow,
            raft_replicas: 1,
            controller_replicas: 3,
            seed: 42,
            data_dir: None,
            wal: logstore_wal::WalConfig::default(),
            compact_small_rows: None,
            compact_min_run: 2,
            compact_max_merged_rows: None,
        }
    }

    /// A configuration mirroring the paper's evaluation cluster shape:
    /// 24 workers (the paper's 24 worker processes), OSS-like latency.
    pub fn paper_like() -> Self {
        let mut c = Self::for_testing();
        c.workers = 6;
        c.shards_per_worker = 4;
        c.oss_latency = LatencyModel::oss_like();
        c.oss_retry = RetryPolicy::archival_default();
        c.cache_memory_bytes = 64 << 20;
        c.cache_shards = 16;
        c.prefetch_threads = 32;
        c.query_threads = default_query_threads();
        c
    }

    /// Total shard count.
    pub fn total_shards(&self) -> u32 {
        self.workers * self.shards_per_worker
    }
}

/// The default query-pool size: one thread per hardware thread.
pub fn default_query_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(8)
}

/// Per-query execution switches (the Fig 15–17 ablations).
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Enable the multi-level data-skipping strategy (§5.1).
    pub use_skipping: bool,
    /// Enable parallel prefetch (§5.2).
    pub use_prefetch: bool,
    /// Use the shared multi-level cache; when false every read goes to OSS.
    pub use_cache: bool,
    /// Per-source collection tasks this query may run at once. `0` means
    /// "as many as the engine's query pool allows"; `1` is the sequential
    /// reference path. Results are bit-identical at every setting.
    pub parallelism: usize,
    /// Push aggregation into the scan layer: each source returns partial
    /// aggregate states instead of matched rows. When false, sources ship
    /// the matched rows of the aggregate-input columns and the executor
    /// aggregates after the merge — the row-materializing baseline of the
    /// pushdown comparison. Results are bit-identical either way.
    pub use_pushdown: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            use_skipping: true,
            use_prefetch: true,
            use_cache: true,
            parallelism: 0,
            use_pushdown: true,
        }
    }
}

impl QueryOptions {
    /// Everything off — the "before optimization" baseline of Fig 17.
    pub fn baseline() -> Self {
        QueryOptions {
            use_skipping: false,
            use_prefetch: false,
            use_cache: false,
            parallelism: 1,
            use_pushdown: false,
        }
    }

    /// Returns `self` with an explicit parallelism degree.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testing_config_is_consistent() {
        let c = ClusterConfig::for_testing();
        assert_eq!(c.total_shards(), 4);
        assert!(c.rowstore_flush_bytes < c.rowstore_backpressure_bytes);
        assert!(c.block_rows <= c.max_rows_per_logblock);
    }

    #[test]
    fn paper_like_shape() {
        let c = ClusterConfig::paper_like();
        assert_eq!(c.total_shards(), 24);
        assert_eq!(c.prefetch_threads, 32);
    }

    #[test]
    fn retry_presets() {
        let t = ClusterConfig::for_testing();
        assert_eq!(t.oss_retry.max_attempts, 1, "tests must see every fault exactly once");
        assert_eq!(t.oss_fault_probability, 0.0);
        let p = ClusterConfig::paper_like();
        assert!(p.oss_retry.max_attempts > 1, "the production archive path retries");
    }

    #[test]
    fn query_option_presets() {
        let on = QueryOptions::default();
        assert!(on.use_skipping && on.use_prefetch && on.use_cache && on.use_pushdown);
        assert_eq!(on.parallelism, 0, "default uses the engine pool's width");
        let off = QueryOptions::baseline();
        assert!(!off.use_skipping && !off.use_prefetch && !off.use_cache && !off.use_pushdown);
        assert_eq!(off.parallelism, 1, "baseline is the sequential path");
        assert_eq!(QueryOptions::default().with_parallelism(8).parallelism, 8);
        assert!(default_query_threads() >= 1);
    }
}
