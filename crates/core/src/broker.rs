//! Brokers: write routing and scatter/gather query execution.
//!
//! The broker is the query layer of Fig 3: it parses SQL, routes writes by
//! the controller's weighted routing table, and answers queries by merging
//! the real-time stores of the tenant's shards with the tenant's LogBlocks
//! on OSS — applying the LogBlock map (Fig 8 ①), data skipping, the
//! multi-level cache and parallel prefetch along the way.
//!
//! Queries scatter: every source (one real-time shard scan, one LogBlock
//! open→prefetch→collect chain) becomes an independent task on the
//! engine's shared [`crate::executor::QueryPool`]. Determinism rule: the
//! task list is built in canonical order (shards sorted by id, then
//! LogBlocks sorted by path) and the gathered partials are folded in that
//! same order, so results, stats and first-error selection are
//! bit-identical at every `parallelism` setting.

use crate::config::QueryOptions;
use crate::engine::{ClusterShared, IngestReport, Store};
use crate::executor::Task;
use logstore_cache::{CacheStats, CachedObjectSource};
use logstore_logblock::pack::RangeSource;
use logstore_logblock::reader::LogBlockReader;
use logstore_logblock::scan::DecodeStats;
use logstore_query::exec::{
    empty_partial, finalize, merge_partials, Partial, QueryResult, QueryStats,
};
use logstore_query::{analyze, parse_query, ExecutionCounters, QueryScope, RowCollector, ScanPlan};
use logstore_types::{Error, RecordBatch, Result, ShardId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a query run reports back (drives Figures 15–17).
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// The result set.
    pub result: QueryResult,
    /// Scanner/executor counters.
    pub stats: QueryStats,
    /// LogBlocks excluded by the LogBlock map before any I/O.
    pub blocks_pruned_by_map: u64,
    /// Modelled OSS time consumed by this query.
    pub modelled_oss: Duration,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Block-cache counter increments over this query's lifetime. Taken as
    /// an engine-wide delta, so with concurrent queries the numbers include
    /// their traffic too; scheduling-dependent counters (singleflight
    /// waits) live here, NOT in [`QueryStats`], which stays bit-identical
    /// at every parallelism setting.
    pub cache: CacheStats,
    /// Attempts restarted because expiration or compaction removed a
    /// LogBlock between the map snapshot and the scan (a clean, counted
    /// outcome — never a raw OSS `NotFound`). Race-timing-dependent, so it
    /// lives here, not in [`QueryStats`].
    pub stale_retries: u64,
    /// Vectorized-decode volume and partial-transport bytes — the
    /// pushdown-vs-materialization measurement. Engine observability,
    /// deliberately outside the bit-identical [`QueryStats`] contract.
    pub counters: ExecutionCounters,
}

/// One source of a LogBlock's bytes.
enum Source {
    Cached(CachedObjectSource<Store>),
    Direct(DirectSource),
}

impl RangeSource for Source {
    fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        match self {
            Source::Cached(s) => s.read_at(offset, len),
            Source::Direct(s) => s.read_at(offset, len),
        }
    }

    fn read_at_shared(&self, offset: u64, len: u64) -> Result<Arc<Vec<u8>>> {
        match self {
            Source::Cached(s) => s.read_at_shared(offset, len),
            Source::Direct(s) => s.read_at(offset, len).map(Arc::new),
        }
    }

    fn size(&self) -> u64 {
        match self {
            Source::Cached(s) => s.size(),
            Source::Direct(s) => s.size(),
        }
    }
}

/// Uncached range reads straight from OSS (the Fig 17 baseline).
struct DirectSource {
    store: Arc<Store>,
    path: String,
    size: u64,
}

impl DirectSource {
    fn new(store: Arc<Store>, path: String, size: u64) -> Self {
        DirectSource { store, path, size }
    }
}

impl RangeSource for DirectSource {
    fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        use logstore_oss::ObjectStore;
        self.store.get_range(&self.path, offset, len)
    }

    fn size(&self) -> u64 {
        self.size
    }
}

/// What one scattered source task brings back to the gather step.
type SourcePartial = (Partial, QueryStats, DecodeStats);

/// The broker.
pub struct Broker {
    shared: Arc<ClusterShared>,
    round_robin: AtomicU64,
}

impl Broker {
    /// Creates a broker over the shared cluster state.
    pub fn new(shared: Arc<ClusterShared>) -> Self {
        Broker { shared, round_robin: AtomicU64::new(0) }
    }

    /// Routes and appends a batch, consuming it: records are moved into
    /// their shard sub-batches, never cloned. Records of one batch may fan
    /// out to several shards; backpressure rejections are counted, not
    /// fatal — the client retries the rejected remainder (paper §4.2).
    pub fn ingest(&self, batch: RecordBatch) -> Result<IngestReport> {
        // BTreeMap: sub-batches append in shard order, so the whole ingest
        // (including any crash hook firing mid-batch) is deterministic for
        // a given routing state — a simulation-replay requirement.
        let mut by_shard: std::collections::BTreeMap<ShardId, Vec<logstore_types::LogRecord>> =
            Default::default();
        for record in batch.records {
            let selector = self.round_robin.fetch_add(1, Ordering::Relaxed);
            let shard = self.shared.controller.pick_shard(record.tenant_id, selector)?;
            by_shard.entry(shard).or_default().push(record);
        }
        let mut report = IngestReport::default();
        for (shard, records) in by_shard {
            let worker = self.shared.worker_for(shard)?;
            let n = records.len() as u64;
            match worker.append(shard, RecordBatch::from_records(records)) {
                Ok(()) => report.accepted += n,
                Err(Error::Backpressure(_)) => report.rejected += n,
                // Routing/topology errors mean the request itself is bad
                // (unknown shard, no worker) — those stay fatal.
                Err(e @ Error::Cluster(_)) => return Err(e),
                // A per-shard append failure (WAL, group commit, Raft)
                // degrades the report instead of erasing the other
                // sub-batches' outcomes; the rows were never acked.
                Err(e) => {
                    report.failed += n;
                    if report.first_failure.is_none() {
                        report.first_failure = Some(e.to_string());
                    }
                }
            }
        }
        Ok(report)
    }

    /// Parses, plans and executes one query: scatter per-source collection
    /// tasks over the engine's query pool, gather the partials in
    /// submission order, merge, finalize.
    ///
    /// A query races expiration and compaction by design: the LogBlock map
    /// is snapshotted at plan time, and a planned block may be swapped out
    /// and garbage-collected before its scan task opens it. That surfaces
    /// as OSS `NotFound`; when the block has indeed left the map, the
    /// whole attempt is restarted against the fresh map (counted in
    /// [`QueryExecution::stale_retries`]). A `NotFound` for a block the
    /// map still claims is real corruption and stays fatal.
    pub fn query(&self, sql: &str, opts: &QueryOptions) -> Result<QueryExecution> {
        let wall_start = std::time::Instant::now();
        let oss_before = self.shared.oss_sim().metrics().modelled_time_ns;
        let cache_before = self.shared.cache.stats();

        let parsed = parse_query(sql)?;
        if parsed.table != self.shared.schema.name {
            return Err(Error::Query(format!(
                "unknown table '{}' (this cluster serves '{}')",
                parsed.table, self.shared.schema.name
            )));
        }
        let bound = Arc::new(analyze::bind(&parsed, &self.shared.schema)?);
        let scope = QueryScope::extract(&bound);
        let tenant = scope.tenant.ok_or_else(|| {
            Error::Query("queries must pin a tenant: add 'tenant_id = <id>'".into())
        })?;
        // One physical plan serves every source task and every retry: the
        // plan depends only on the bound query, not on the map snapshot.
        let plan = Arc::new(ScanPlan::new(&bound, &self.shared.schema, opts.use_pushdown)?);

        // Bounded retry: each pass replans from the current map. Three
        // map-change losses in a row means the caller is racing a
        // pathological churn rate; surface the typed retryable error.
        const MAX_ATTEMPTS: u64 = 3;
        let mut stale_retries = 0u64;
        loop {
            match self.query_attempt(&bound, &plan, &scope, tenant, opts) {
                Ok((result, stats, all_blocks, counters)) => {
                    let visited = stats.blocks_visited;
                    let oss_after = self.shared.oss_sim().metrics().modelled_time_ns;
                    return Ok(QueryExecution {
                        result,
                        stats,
                        blocks_pruned_by_map: all_blocks.saturating_sub(visited),
                        modelled_oss: Duration::from_nanos(oss_after.saturating_sub(oss_before)),
                        wall: wall_start.elapsed(),
                        cache: self.shared.cache.stats().delta_since(&cache_before),
                        stale_retries,
                        counters,
                    });
                }
                Err(Error::Stale(_)) if stale_retries + 1 < MAX_ATTEMPTS => stale_retries += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// One scatter/gather pass against the current LogBlock map. Returns
    /// the finalized result, the merged deterministic stats, and the
    /// tenant's total mapped block count (for the pruning counter).
    fn query_attempt(
        &self,
        bound: &Arc<logstore_query::Query>,
        plan: &Arc<ScanPlan>,
        scope: &QueryScope,
        tenant: logstore_types::TenantId,
        opts: &QueryOptions,
    ) -> Result<(QueryResult, QueryStats, u64, ExecutionCounters)> {
        let all_blocks = self.shared.metadata.all_blocks(tenant).len() as u64;

        // Scatter: one task per source, in canonical order.
        let mut tasks: Vec<Task<SourcePartial>> = Vec::new();
        if !scope.is_empty_window() {
            // Real-time stores of every shard serving the tenant (old and
            // new routes during a rebalance window), sorted by shard id.
            let mut shards = self.shared.controller.read_shards(tenant);
            shards.sort_unstable();
            for shard in shards {
                let shared = Arc::clone(&self.shared);
                let plan = Arc::clone(plan);
                let range = scope.range;
                tasks.push(Box::new(move || {
                    let mut stats = QueryStats::default();
                    let worker = shared.worker_for(shard)?;
                    // Stream records through the plan's collector: with
                    // pushdown the shard returns aggregate states, and an
                    // unordered LIMIT stops the walk early.
                    let mut collector = RowCollector::new(&plan, &shared.schema)?;
                    worker.for_each_record(shard, tenant, range, |r| collector.push_record(r))?;
                    let partial = collector.finish(&mut stats);
                    Ok((partial, stats, DecodeStats::default()))
                }));
            }
            // Archived LogBlocks, pruned by the LogBlock map, sorted by
            // object path (paths embed the build sequence, so this is
            // registration order).
            let mut entries = self.shared.metadata.blocks_for(tenant, scope.range);
            entries.sort_unstable_by(|a, b| a.path.cmp(&b.path));
            for entry in entries {
                let shared = Arc::clone(&self.shared);
                let plan = Arc::clone(plan);
                let opts = opts.clone();
                tasks.push(Box::new(move || {
                    let mut stats = QueryStats::default();
                    let mut decode = DecodeStats::default();
                    let path = entry.path.clone();
                    let scan = (|| {
                        // The LogBlock map records each block's exact packed
                        // size, so opening a source needs no HEAD round-trip.
                        let source = if opts.use_cache {
                            Source::Cached(CachedObjectSource::open_with_known_size(
                                Arc::clone(&shared.store),
                                entry.path.clone(),
                                Arc::clone(&shared.cache),
                                shared.cache_block_size,
                                entry.bytes,
                            ))
                        } else {
                            Source::Direct(DirectSource::new(
                                Arc::clone(&shared.store),
                                entry.path.clone(),
                                entry.bytes,
                            ))
                        };
                        let reader = LogBlockReader::open(source)?;
                        if opts.use_cache && opts.use_prefetch {
                            // A failed prefetch block is not fatal: it is
                            // counted, and the scan falls through to demand
                            // reads (which may themselves succeed or fail on
                            // their own terms).
                            if let Source::Cached(cached) = reader.pack().source() {
                                let ranges = prefetch_ranges(&reader, &plan);
                                let outcome = shared.prefetcher.prefetch_wave(cached, ranges);
                                stats.prefetch_errors += outcome.errors as u64;
                            }
                        }
                        plan.collect_block(&reader, opts.use_skipping, &mut stats, &mut decode)
                    })();
                    match scan {
                        Ok(partial) => Ok((partial, stats, decode)),
                        // A vanished object that the map no longer claims
                        // was expired or compacted away mid-query: report
                        // it as stale metadata so the broker replans,
                        // instead of leaking a raw OSS NotFound.
                        Err(Error::NotFound(_))
                            if !shared.metadata.is_block_mapped(tenant, &path) =>
                        {
                            Err(Error::Stale(format!("LogBlock {path} removed mid-query")))
                        }
                        Err(e) => Err(e),
                    }
                }));
            }
        }

        // Gather: fold results in submission order. The earliest source's
        // error wins regardless of which task failed first on the clock.
        let parallelism =
            if opts.parallelism == 0 { self.shared.query_pool.threads() } else { opts.parallelism };
        let mut stats = QueryStats::default();
        let mut counters = ExecutionCounters::default();
        let mut partials = Vec::with_capacity(tasks.len());
        for task_result in self.shared.query_pool.scatter(parallelism, tasks) {
            let (partial, task_stats, decode) = task_result?;
            stats.merge(&task_stats);
            counters.absorb(&decode, &partial);
            partials.push(partial);
        }

        // `finish_partial` runs the deferred aggregation of the
        // pushdown-off baseline; with pushdown (or row queries) it is a
        // pass-through. The empty-source case already has its final shape.
        let merged = if partials.is_empty() {
            empty_partial(bound)
        } else {
            plan.finish_partial(merge_partials(partials)?)?
        };
        let result = finalize(merged, bound, &self.shared.schema)?;
        Ok((result, stats, all_blocks, counters))
    }
}

/// Fig 10: the member ranges a query will touch in one LogBlock — the
/// plan for a parallel prefetch wave. Free function so scattered tasks
/// can call it without borrowing the broker. Plan-aware: only the
/// predicate columns and the plan's materialization set are fetched, so a
/// pure `COUNT(*)` prefetches predicate columns alone.
fn prefetch_ranges(reader: &LogBlockReader<Source>, plan: &ScanPlan) -> Vec<(u64, u64)> {
    let schema = reader.schema();
    let mut needed_cols: Vec<usize> = Vec::new();
    let mut push = |idx: Option<usize>| {
        if let Some(i) = idx {
            if !needed_cols.contains(&i) {
                needed_cols.push(i);
            }
        }
    };
    for p in &plan.predicates {
        push(schema.column_index(&p.column));
    }
    for name in &plan.columns {
        push(schema.column_index(name));
    }
    let mut ranges = Vec::new();
    for &col in &needed_cols {
        for member in [
            logstore_logblock::meta::index_member(col),
            logstore_logblock::meta::index_data_member(col),
            logstore_logblock::meta::col_member(col),
        ] {
            if let Some(range) = reader.pack().member_object_range(&member) {
                ranges.push(range);
            }
        }
    }
    ranges
}
