//! The scatter/gather query executor: a shared, bounded worker pool that
//! fans a query's per-source work (real-time shard scans, LogBlock
//! open→prefetch→collect chains) out across threads.
//!
//! Determinism is the design constraint: a parallel run must be
//! bit-identical to the sequential one. The pool therefore never merges
//! anything itself — it returns every task's result **indexed by the
//! task's position in the submission order**, whatever order tasks
//! actually finished in. The broker builds its task list in a canonical
//! order (shards sorted by id, LogBlocks sorted by path) and folds the
//! indexed results left to right, so merge order — and with it row order,
//! first-error selection and stats totals — is independent of scheduling.

use logstore_sync::OrderedMutex;
use logstore_types::{Error, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unit of work submitted to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A boxed query task: one source's partial collection.
pub type Task<T> = Box<dyn FnOnce() -> Result<T> + Send + 'static>;

/// A fixed-size thread pool shared by every query on the engine.
///
/// Sharing bounds total query concurrency: a single engine never runs
/// more than `threads` source-collections at once no matter how many
/// queries are in flight or what per-query `parallelism` they request.
pub struct QueryPool {
    sender: Option<crossbeam::channel::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl QueryPool {
    /// Spawns a pool of `threads` workers (minimum 1). Fails if the OS
    /// refuses a thread — engine construction surfaces that instead of
    /// panicking halfway through startup.
    pub fn new(threads: usize) -> Result<Self> {
        let threads = threads.max(1);
        let (sender, receiver) = crossbeam::channel::unbounded::<Job>();
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let receiver = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("query-pool-{i}"))
                .spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                })
                .map_err(|e| Error::Internal(format!("spawn query pool thread: {e}")))?;
            handles.push(handle);
        }
        Ok(QueryPool { sender: Some(sender), handles, threads })
    }

    /// Pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `tasks` with up to `parallelism` of them in flight at once and
    /// returns their results **in submission order**.
    ///
    /// `parallelism <= 1` runs every task inline on the calling thread —
    /// the sequential reference path, same task code, zero pool traffic.
    /// Higher values submit `min(parallelism, tasks)` runners to the pool;
    /// each runner pulls the next unclaimed task index until none remain,
    /// so tasks start in order even though they finish in any order.
    pub fn scatter<T: Send + 'static>(
        &self,
        parallelism: usize,
        tasks: Vec<Task<T>>,
    ) -> Vec<Result<T>> {
        let total = tasks.len();
        if parallelism <= 1 || total <= 1 {
            return tasks.into_iter().map(run_task).collect();
        }
        let slots: Arc<Vec<OrderedMutex<Option<Task<T>>>>> = Arc::new(
            tasks.into_iter().map(|t| OrderedMutex::new("core.executor.slot", Some(t))).collect(),
        );
        let cursor = Arc::new(AtomicUsize::new(0));
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, Result<T>)>();
        let runners = parallelism.min(total);
        for _ in 0..runners {
            let slots = Arc::clone(&slots);
            let cursor = Arc::clone(&cursor);
            let result_tx = result_tx.clone();
            self.submit(Box::new(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= slots.len() {
                    return;
                }
                // Claim under a transient guard; the task itself (which
                // may issue OSS reads) runs with no lock held. The cursor
                // hands each index out once, so an empty slot means state
                // corruption — report it as this index's result rather
                // than unwinding inside a pool worker.
                let Some(task) = slots[idx].lock().take() else {
                    let _ = result_tx
                        .send((idx, Err(Error::Internal("query task slot claimed twice".into()))));
                    continue;
                };
                // A send can only fail if the gatherer gave up; nothing
                // left to do with the result then.
                let _ = result_tx.send((idx, run_task(task)));
            }));
        }
        drop(result_tx);
        let mut results: Vec<Option<Result<T>>> = (0..total).map(|_| None).collect();
        for _ in 0..total {
            match result_rx.recv() {
                Ok((idx, result)) => results[idx] = Some(result),
                // Every runner sender dropped before all indices reported:
                // a pool worker died. The fill below turns each missing
                // slot into an error instead of hanging or panicking.
                Err(_) => break,
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| Err(Error::Internal("query pool lost a task result".into())))
            })
            .collect()
    }

    fn submit(&self, job: Job) {
        // The sender lives until Drop takes it, so a live pool always
        // sends; if the channel is somehow gone or disconnected, degrade
        // to running the job inline rather than panicking mid-query.
        match &self.sender {
            Some(sender) => {
                if let Err(e) = sender.send(job) {
                    (e.0)();
                }
            }
            None => job(),
        }
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain and exit, then join.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one task, converting a panic into an error instead of poisoning
/// the pool (a panicking task would otherwise hang the gather loop).
fn run_task<T>(task: Task<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "query task panicked".to_string());
            Err(Error::Internal(format!("query task panicked: {msg}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn tasks_counting(n: usize, counter: &Arc<AtomicU64>) -> Vec<Task<usize>> {
        (0..n)
            .map(|i| {
                let counter = Arc::clone(counter);
                let task: Task<usize> = Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    Ok(i * 10)
                });
                task
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = QueryPool::new(4).unwrap();
        for parallelism in [1, 2, 4, 16] {
            let counter = Arc::new(AtomicU64::new(0));
            let results = pool.scatter(parallelism, tasks_counting(32, &counter));
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..32).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(counter.load(Ordering::Relaxed), 32);
        }
    }

    #[test]
    fn errors_keep_their_task_index() {
        let pool = QueryPool::new(4).unwrap();
        let tasks: Vec<Task<u32>> = (0..8)
            .map(|i| {
                let task: Task<u32> = Box::new(move || {
                    if i % 3 == 1 {
                        Err(Error::Internal(format!("task {i} failed")))
                    } else {
                        Ok(i)
                    }
                });
                task
            })
            .collect();
        let results = pool.scatter(4, tasks);
        for (i, r) in results.iter().enumerate() {
            if i % 3 == 1 {
                let e = r.as_ref().unwrap_err();
                assert!(e.to_string().contains(&format!("task {i}")), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    fn parallelism_one_runs_inline() {
        let pool = QueryPool::new(4).unwrap();
        let caller = std::thread::current().id();
        let results = pool.scatter(
            1,
            vec![Box::new(move || {
                assert_eq!(std::thread::current().id(), caller, "must run inline");
                Ok(1u8)
            }) as Task<u8>],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].as_ref().unwrap(), &1);
    }

    #[test]
    fn tasks_actually_run_concurrently() {
        let pool = QueryPool::new(8).unwrap();
        let make = || -> Vec<Task<()>> {
            (0..8)
                .map(|_| {
                    let task: Task<()> = Box::new(|| {
                        std::thread::sleep(Duration::from_millis(20));
                        Ok(())
                    });
                    task
                })
                .collect()
        };
        let serial = Instant::now();
        pool.scatter(1, make());
        let serial = serial.elapsed();
        let parallel = Instant::now();
        pool.scatter(8, make());
        let parallel = parallel.elapsed();
        assert!(
            parallel < serial / 2,
            "8-way scatter should beat sequential: {parallel:?} vs {serial:?}"
        );
    }

    #[test]
    fn panicking_task_reports_instead_of_hanging() {
        let pool = QueryPool::new(2).unwrap();
        let tasks: Vec<Task<u32>> =
            vec![Box::new(|| Ok(1)), Box::new(|| panic!("boom in task")), Box::new(|| Ok(3))];
        let results = pool.scatter(2, tasks);
        assert_eq!(results[0].as_ref().unwrap(), &1);
        assert!(results[1].as_ref().unwrap_err().to_string().contains("boom in task"));
        assert_eq!(results[2].as_ref().unwrap(), &3);
        // The pool survives the panic and keeps serving.
        let after = pool.scatter(2, vec![Box::new(|| Ok(9u32)) as Task<u32>, Box::new(|| Ok(10))]);
        assert_eq!(after[0].as_ref().unwrap(), &9);
        assert_eq!(after[1].as_ref().unwrap(), &10);
    }

    #[test]
    fn shared_pool_bounds_concurrency_across_queries() {
        // 2-thread pool, two 4-task scatters from two caller threads: at
        // most 2 tasks may ever be in flight simultaneously.
        let pool = Arc::new(QueryPool::new(2).unwrap());
        let in_flight = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let make = |in_flight: &Arc<AtomicU64>, peak: &Arc<AtomicU64>| -> Vec<Task<()>> {
            (0..4)
                .map(|_| {
                    let in_flight = Arc::clone(in_flight);
                    let peak = Arc::clone(peak);
                    let task: Task<()> = Box::new(move || {
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(10));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        Ok(())
                    });
                    task
                })
                .collect()
        };
        let mut joins = Vec::new();
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            let tasks = make(&in_flight, &peak);
            joins.push(std::thread::spawn(move || {
                pool.scatter(4, tasks);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool must bound concurrency");
    }
}
