//! The data builder: phase two of the two-phase write.
//!
//! Drains workers' row stores, partitions the drained rows **by tenant**
//! (the row store mixes tenants for write speed; OSS storage isolates them
//! — paper §3.1), sorts each tenant's rows by timestamp, builds compressed
//! and indexed LogBlocks, uploads them to per-tenant OSS directories and
//! registers them in the controller's LogBlock map. Oversized tenants are
//! split across multiple LogBlocks.
//!
//! Uploads are fault-tolerant: the engine's store stack retries transient
//! OSS failures with backoff, and when an upload still fails terminally,
//! [`build_and_upload`] hands every not-yet-durable row back in
//! [`BuildOutcome::unarchived`] so the caller can restore them to the row
//! store. No drained row is ever dropped on an error path.

use crate::metadata::{DrainId, LogBlockEntry, MetadataStore};
use logstore_codec::Compression;
use logstore_logblock::LogBlockBuilder;
use logstore_oss::ObjectStore;
use logstore_types::{partition_into_chunks, Error, LogRecord, Result, TableSchema, TenantId};

/// Builder configuration.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Column compression.
    pub compression: Compression,
    /// Rows per column block.
    pub block_rows: usize,
    /// Max rows per LogBlock (tenant split threshold).
    pub max_rows_per_logblock: usize,
}

/// Outcome of one build pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// LogBlocks uploaded.
    pub blocks_built: u64,
    /// Rows archived.
    pub rows_archived: u64,
    /// Packed bytes uploaded.
    pub bytes_uploaded: u64,
}

impl BuildReport {
    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: &BuildReport) {
        self.blocks_built += other.blocks_built;
        self.rows_archived += other.rows_archived;
        self.bytes_uploaded += other.bytes_uploaded;
    }
}

/// The full result of a build pass, including the failure path.
///
/// Blocks uploaded before the first error are durable and registered (the
/// report counts them); every row not covered by a registered block comes
/// back in `unarchived`, in arrival order, so the caller can restore it.
#[derive(Debug, Default)]
pub struct BuildOutcome {
    /// What was successfully uploaded and registered.
    pub report: BuildReport,
    /// Rows that are NOT durable on OSS (empty on full success).
    pub unarchived: Vec<LogRecord>,
    /// The first terminal error, if any chunk failed.
    pub error: Option<Error>,
}

impl BuildOutcome {
    /// True when every input row was archived.
    pub fn is_complete(&self) -> bool {
        self.error.is_none() && self.unarchived.is_empty()
    }
}

/// Converts drained rows into uploaded, registered LogBlocks.
///
/// Never returns `Err`: failures are reported through
/// [`BuildOutcome::error`] together with the rows that still need a home.
pub fn build_and_upload<S: ObjectStore>(
    rows: Vec<LogRecord>,
    schema: &TableSchema,
    config: &BuildConfig,
    store: &S,
    metadata: &MetadataStore,
) -> BuildOutcome {
    build_and_upload_drain(rows, schema, config, store, metadata, None)
}

/// [`build_and_upload`] for rows that came out of a durable shard drain.
///
/// With a [`DrainId`], registration is deferred and atomic: every chunk is
/// built and uploaded first, then a single
/// [`MetadataStore::commit_drain`] registers all blocks and records how
/// many leading chunks of the drain are durable. WAL replay after a crash
/// re-derives the identical chunk sequence (both sides use
/// `partition_into_chunks`) and keeps exactly the committed prefix out of
/// the row store — uploaded-but-uncommitted objects are garbage, never
/// duplicates. Without a drain id (in-memory backends, tests) each chunk
/// registers immediately, the pre-intent behavior.
pub fn build_and_upload_drain<S: ObjectStore>(
    rows: Vec<LogRecord>,
    schema: &TableSchema,
    config: &BuildConfig,
    store: &S,
    metadata: &MetadataStore,
    drain: Option<DrainId>,
) -> BuildOutcome {
    let mut outcome = BuildOutcome::default();
    // The canonical chunk sequence: tenants ascending, ts-sorted, capped.
    // Identical on the WAL-replay side, so "chunk i of this drain" is
    // unambiguous across crashes.
    let chunks = partition_into_chunks(rows, config.max_rows_per_logblock);
    // Blocks built in this pass but not yet registered (drain mode only).
    let mut staged: Vec<(TenantId, LogBlockEntry, Vec<LogRecord>)> = Vec::new();
    for chunk in chunks {
        if outcome.error.is_some() {
            // A previous chunk failed terminally: stop issuing uploads and
            // hand the remaining rows back untouched. Stopping at the
            // first failure is what keeps the committed set a prefix.
            outcome.unarchived.extend(chunk.rows);
            continue;
        }
        match upload_chunk(chunk.tenant, &chunk.rows, schema, config, store, metadata) {
            Ok(entry) => {
                if drain.is_some() {
                    staged.push((chunk.tenant, entry, chunk.rows));
                } else {
                    match metadata.register_block(chunk.tenant, entry.clone()) {
                        Ok(()) => {
                            outcome.report.blocks_built += 1;
                            outcome.report.rows_archived += entry.rows;
                            outcome.report.bytes_uploaded += entry.bytes;
                        }
                        Err(e) => {
                            outcome.error = Some(e);
                            outcome.unarchived.extend(chunk.rows);
                        }
                    }
                }
            }
            Err(e) => {
                // This chunk and everything after it is not durable.
                outcome.error = Some(e);
                outcome.unarchived.extend(chunk.rows);
            }
        }
    }
    if let Some(id) = drain {
        if !staged.is_empty() {
            let committed = staged.len() as u64;
            let blocks: Vec<(TenantId, LogBlockEntry)> =
                staged.iter().map(|(t, e, _)| (*t, e.clone())).collect();
            match metadata.commit_drain(id, blocks, committed) {
                Ok(()) => {
                    for (_, entry, _) in staged {
                        outcome.report.blocks_built += 1;
                        outcome.report.rows_archived += entry.rows;
                        outcome.report.bytes_uploaded += entry.bytes;
                    }
                }
                Err(e) => {
                    // Nothing registered: every uploaded chunk is orphaned
                    // garbage on OSS and its rows still need a home.
                    outcome.error = Some(e);
                    for (_, _, rows) in staged {
                        outcome.unarchived.extend(rows);
                    }
                }
            }
        }
    }
    outcome
}

/// Builds and uploads one LogBlock, returning its catalog entry. The
/// caller decides when to register it — on any error the chunk is not on
/// OSS (or not provably so) and its rows remain the caller's
/// responsibility.
fn upload_chunk<S: ObjectStore>(
    tenant: TenantId,
    chunk: &[LogRecord],
    schema: &TableSchema,
    config: &BuildConfig,
    store: &S,
    metadata: &MetadataStore,
) -> Result<LogBlockEntry> {
    let mut builder =
        LogBlockBuilder::with_options(schema.clone(), config.compression, config.block_rows);
    let (mut min_ts, mut max_ts) = (chunk[0].ts, chunk[0].ts);
    for r in chunk {
        builder.add_row(&r.to_row())?;
        min_ts = min_ts.min(r.ts);
        max_ts = max_ts.max(r.ts);
    }
    let bytes = builder.finish()?;
    let path = metadata.allocate_block_path(tenant);
    // The durability order is load-bearing: the object must exist on OSS
    // before it is registered (a registered-but-missing block would fail
    // queries; an uploaded-but-unregistered block merely wastes space until
    // the rows are re-archived under a fresh path).
    store.put(&path, &bytes)?;
    Ok(LogBlockEntry { path, min_ts, max_ts, rows: chunk.len() as u64, bytes: bytes.len() as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_logblock::LogBlockReader;
    use logstore_oss::{FaultScope, FaultyStore, MemoryStore};
    use logstore_types::{TableSchema, TimeRange, Timestamp, Value};

    fn rec(t: u64, ts: i64) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![
                Value::from("ip"),
                Value::from("/a"),
                Value::I64(ts % 50),
                Value::Bool(false),
                Value::from(format!("line at {ts}")),
            ],
        )
    }

    fn config() -> BuildConfig {
        BuildConfig { compression: Compression::LzHigh, block_rows: 16, max_rows_per_logblock: 50 }
    }

    #[test]
    fn partitions_by_tenant_and_registers() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        // Interleaved tenants, deliberately out of ts order.
        let mut rows = Vec::new();
        for i in (0..60i64).rev() {
            rows.push(rec(1 + (i % 2) as u64, i));
        }
        let outcome =
            build_and_upload(rows, &TableSchema::request_log(), &config(), &store, &metadata);
        assert!(outcome.is_complete());
        assert_eq!(outcome.report.rows_archived, 60);
        assert_eq!(outcome.report.blocks_built, 2); // 30 rows per tenant, one block each
        assert_eq!(store.object_count(), 2);
        // Per-tenant isolation on OSS paths.
        assert_eq!(store.list("tenants/1/").unwrap().len(), 1);
        assert_eq!(store.list("tenants/2/").unwrap().len(), 1);
        // Registered ranges prune correctly.
        let blocks = metadata.blocks_for(TenantId(1), TimeRange::all());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].rows, 30);
    }

    #[test]
    fn oversized_tenants_split_into_multiple_blocks() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let rows: Vec<LogRecord> = (0..120).map(|i| rec(7, i)).collect();
        let outcome =
            build_and_upload(rows, &TableSchema::request_log(), &config(), &store, &metadata);
        assert!(outcome.is_complete());
        assert_eq!(outcome.report.blocks_built, 3); // 120 / 50 → 50+50+20
        let blocks = metadata.all_blocks(TenantId(7));
        assert_eq!(blocks.len(), 3);
        // Chronological, non-overlapping chunks.
        assert!(blocks[0].max_ts < blocks[1].min_ts);
        assert!(blocks[1].max_ts < blocks[2].min_ts);
    }

    #[test]
    fn uploaded_blocks_are_readable_and_sorted() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let mut rows: Vec<LogRecord> = (0..40).map(|i| rec(3, 100 - i)).collect();
        rows.reverse();
        let outcome =
            build_and_upload(rows, &TableSchema::request_log(), &config(), &store, &metadata);
        assert!(outcome.is_complete());
        let entry = &metadata.all_blocks(TenantId(3))[0];
        let bytes = store.get(&entry.path).unwrap();
        let reader = LogBlockReader::open(bytes).unwrap();
        assert_eq!(reader.row_count(), 40);
        let ts = reader.read_column(1).unwrap();
        let vals: Vec<i64> = ts.iter().map(|v| v.as_i64().unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "rows must be ts-sorted");
        assert_eq!(entry.min_ts, Timestamp(61));
        assert_eq!(entry.max_ts, Timestamp(100));
    }

    #[test]
    fn empty_input_is_noop() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let outcome =
            build_and_upload(Vec::new(), &TableSchema::request_log(), &config(), &store, &metadata);
        assert!(outcome.is_complete());
        assert_eq!(outcome.report, BuildReport::default());
        assert_eq!(store.object_count(), 0);
    }

    #[test]
    fn terminal_upload_failure_returns_every_undurable_row() {
        let store = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        let metadata = MetadataStore::new();
        // Tenant 1: 120 rows → 3 chunks; tenants 2 and 3: 10 rows each.
        let mut rows: Vec<LogRecord> = (0..120).map(|i| rec(1, i)).collect();
        rows.extend((0..10).map(|i| rec(2, i)));
        rows.extend((0..10).map(|i| rec(3, i)));
        // First PUT (tenant 1, chunk 1) succeeds, second fails.
        store.fail_next(0);
        let schema = TableSchema::request_log();
        let outcome = {
            let s = &store;
            // Fail the 2nd put: let one through, then inject.
            s.put("warmup", b"x").unwrap();
            s.delete("warmup").unwrap();
            s.fail_next(0);
            // Use a closure-free approach: schedule the failure after the
            // first real chunk upload by failing puts 2.. via probability 0
            // and an explicit schedule below.
            build_with_failure_after_first_put(s, &schema, &metadata, rows)
        };
        // Chunk 1 of tenant 1 (50 rows) is durable; everything else came back.
        assert_eq!(outcome.report.blocks_built, 1);
        assert_eq!(outcome.report.rows_archived, 50);
        assert!(outcome.error.is_some());
        assert_eq!(outcome.unarchived.len(), 120 - 50 + 10 + 10);
        // The registered map matches what is actually on OSS.
        assert_eq!(metadata.all_blocks(TenantId(1)).len(), 1);
        assert!(metadata.all_blocks(TenantId(2)).is_empty());
        assert!(metadata.all_blocks(TenantId(3)).is_empty());
        // Unarchived rows cover tenants 1, 2 and 3.
        let t1 = outcome.unarchived.iter().filter(|r| r.tenant_id == TenantId(1)).count();
        assert_eq!(t1, 70);
    }

    fn build_with_failure_after_first_put(
        store: &FaultyStore<MemoryStore>,
        schema: &TableSchema,
        metadata: &MetadataStore,
        rows: Vec<LogRecord>,
    ) -> BuildOutcome {
        // The builder uploads tenant 1's chunks first (BTreeMap order).
        // Let exactly one PUT through, then fail the rest of this pass.
        struct FailAfterFirst<'a> {
            inner: &'a FaultyStore<MemoryStore>,
            puts: std::sync::atomic::AtomicU64,
        }
        impl ObjectStore for FailAfterFirst<'_> {
            fn put(&self, path: &str, data: &[u8]) -> logstore_types::Result<()> {
                use std::sync::atomic::Ordering;
                if self.puts.fetch_add(1, Ordering::SeqCst) >= 1 {
                    self.inner.fail_next(1);
                }
                self.inner.put(path, data)
            }
            fn get(&self, path: &str) -> logstore_types::Result<Vec<u8>> {
                self.inner.get(path)
            }
            fn get_range(&self, path: &str, o: u64, l: u64) -> logstore_types::Result<Vec<u8>> {
                self.inner.get_range(path, o, l)
            }
            fn head(&self, path: &str) -> logstore_types::Result<u64> {
                self.inner.head(path)
            }
            fn list(&self, prefix: &str) -> logstore_types::Result<Vec<String>> {
                self.inner.list(prefix)
            }
            fn delete(&self, path: &str) -> logstore_types::Result<()> {
                self.inner.delete(path)
            }
        }
        let wrapper = FailAfterFirst { inner: store, puts: std::sync::atomic::AtomicU64::new(0) };
        build_and_upload(rows, schema, &config(), &wrapper, metadata)
    }

    #[test]
    fn drain_mode_commits_blocks_and_chunk_count_atomically() {
        use crate::metadata::DrainId;
        use logstore_types::ShardId;
        use logstore_wal::DrainSeq;
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let rows: Vec<LogRecord> = (0..120).map(|i| rec(4, i)).collect();
        let id = DrainId { shard: ShardId(0), seq: DrainSeq { epoch: 1, counter: 1 } };
        let outcome = build_and_upload_drain(
            rows,
            &TableSchema::request_log(),
            &config(),
            &store,
            &metadata,
            Some(id),
        );
        assert!(outcome.is_complete());
        assert_eq!(outcome.report.blocks_built, 3);
        assert_eq!(metadata.all_blocks(TenantId(4)).len(), 3);
        assert_eq!(metadata.drain_commit(id), Some(3));
        // The same drain cannot commit twice.
        let again = build_and_upload_drain(
            (0..10).map(|i| rec(4, i)).collect(),
            &TableSchema::request_log(),
            &config(),
            &store,
            &metadata,
            Some(id),
        );
        assert!(again.error.is_some());
        assert_eq!(again.unarchived.len(), 10, "a failed commit hands every row back");
        assert_eq!(metadata.all_blocks(TenantId(4)).len(), 3, "nothing extra registered");
    }

    #[test]
    fn drain_mode_upload_failure_commits_nothing() {
        use crate::metadata::DrainId;
        use logstore_types::ShardId;
        use logstore_wal::DrainSeq;
        let store = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        let metadata = MetadataStore::new();
        let rows: Vec<LogRecord> = (0..120).map(|i| rec(6, i)).collect();
        let id = DrainId { shard: ShardId(1), seq: DrainSeq { epoch: 1, counter: 1 } };
        // Fail the very first chunk: zero chunks durable → no commit row,
        // so replay treats the drain as never-uploaded and restores all.
        store.fail_next(1);
        let outcome = build_and_upload_drain(
            rows,
            &TableSchema::request_log(),
            &config(),
            &store,
            &metadata,
            Some(id),
        );
        assert!(outcome.error.is_some());
        assert_eq!(outcome.unarchived.len(), 120);
        assert_eq!(metadata.drain_commit(id), None);
        assert!(metadata.all_blocks(TenantId(6)).is_empty());
    }

    #[test]
    fn drain_mode_partial_failure_commits_the_prefix() {
        use crate::metadata::DrainId;
        use logstore_types::ShardId;
        use logstore_wal::DrainSeq;
        let store = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        let metadata = MetadataStore::new();
        let rows: Vec<LogRecord> = (0..120).map(|i| rec(8, i)).collect();
        let id = DrainId { shard: ShardId(2), seq: DrainSeq { epoch: 2, counter: 5 } };
        // 3 chunks; the 2nd PUT fails → exactly chunk 0 is durable.
        store.fail_ops(&[1..2]);
        let outcome = build_and_upload_drain(
            rows,
            &TableSchema::request_log(),
            &config(),
            &store,
            &metadata,
            Some(id),
        );
        assert!(outcome.error.is_some());
        assert_eq!(outcome.report.blocks_built, 1);
        assert_eq!(outcome.unarchived.len(), 70);
        assert_eq!(metadata.drain_commit(id), Some(1));
        assert_eq!(metadata.all_blocks(TenantId(8)).len(), 1);
    }

    #[test]
    fn failed_pass_can_be_retried_to_completion() {
        let store = FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, 1);
        let metadata = MetadataStore::new();
        let rows: Vec<LogRecord> = (0..120).map(|i| rec(5, i)).collect();
        store.fail_next(1);
        let schema = TableSchema::request_log();
        let first = build_and_upload(rows, &schema, &config(), &store, &metadata);
        assert!(first.error.is_some());
        assert_eq!(first.report.blocks_built, 0);
        assert_eq!(first.unarchived.len(), 120);
        // Second pass with the fault cleared archives everything.
        let second = build_and_upload(first.unarchived, &schema, &config(), &store, &metadata);
        assert!(second.is_complete());
        assert_eq!(second.report.rows_archived, 120);
        let total: u64 = metadata.all_blocks(TenantId(5)).iter().map(|b| b.rows).sum();
        assert_eq!(total, 120);
    }
}
