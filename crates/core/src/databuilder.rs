//! The data builder: phase two of the two-phase write.
//!
//! Drains workers' row stores, partitions the drained rows **by tenant**
//! (the row store mixes tenants for write speed; OSS storage isolates them
//! — paper §3.1), sorts each tenant's rows by timestamp, builds compressed
//! and indexed LogBlocks, uploads them to per-tenant OSS directories and
//! registers them in the controller's LogBlock map. Oversized tenants are
//! split across multiple LogBlocks.

use crate::metadata::{LogBlockEntry, MetadataStore};
use logstore_codec::Compression;
use logstore_logblock::LogBlockBuilder;
use logstore_oss::ObjectStore;
use logstore_types::{LogRecord, Result, TableSchema, TenantId};
use std::collections::BTreeMap;

/// Builder configuration.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Column compression.
    pub compression: Compression,
    /// Rows per column block.
    pub block_rows: usize,
    /// Max rows per LogBlock (tenant split threshold).
    pub max_rows_per_logblock: usize,
}

/// Outcome of one build pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// LogBlocks uploaded.
    pub blocks_built: u64,
    /// Rows archived.
    pub rows_archived: u64,
    /// Packed bytes uploaded.
    pub bytes_uploaded: u64,
}

/// Converts drained rows into uploaded, registered LogBlocks.
pub fn build_and_upload<S: ObjectStore>(
    rows: Vec<LogRecord>,
    schema: &TableSchema,
    config: &BuildConfig,
    store: &S,
    metadata: &MetadataStore,
) -> Result<BuildReport> {
    let mut report = BuildReport::default();
    // Partition by tenant (BTreeMap for deterministic upload order).
    let mut by_tenant: BTreeMap<TenantId, Vec<LogRecord>> = BTreeMap::new();
    for r in rows {
        by_tenant.entry(r.tenant_id).or_default().push(r);
    }
    for (tenant, mut records) in by_tenant {
        // LogBlocks are organized by (tenant, ts): sort, then chunk.
        records.sort_by_key(|r| r.ts);
        for chunk in records.chunks(config.max_rows_per_logblock.max(1)) {
            let mut builder = LogBlockBuilder::with_options(
                schema.clone(),
                config.compression,
                config.block_rows,
            );
            let (mut min_ts, mut max_ts) = (chunk[0].ts, chunk[0].ts);
            for r in chunk {
                builder.add_row(&r.to_row())?;
                min_ts = min_ts.min(r.ts);
                max_ts = max_ts.max(r.ts);
            }
            let bytes = builder.finish()?;
            let path = metadata.allocate_block_path(tenant);
            store.put(&path, &bytes)?;
            metadata.register_block(
                tenant,
                LogBlockEntry {
                    path,
                    min_ts,
                    max_ts,
                    rows: chunk.len() as u64,
                    bytes: bytes.len() as u64,
                },
            )?;
            report.blocks_built += 1;
            report.rows_archived += chunk.len() as u64;
            report.bytes_uploaded += bytes.len() as u64;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_logblock::LogBlockReader;
    use logstore_oss::MemoryStore;
    use logstore_types::{TableSchema, TimeRange, Timestamp, Value};

    fn rec(t: u64, ts: i64) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![
                Value::from("ip"),
                Value::from("/a"),
                Value::I64(ts % 50),
                Value::Bool(false),
                Value::from(format!("line at {ts}")),
            ],
        )
    }

    fn config() -> BuildConfig {
        BuildConfig { compression: Compression::LzHigh, block_rows: 16, max_rows_per_logblock: 50 }
    }

    #[test]
    fn partitions_by_tenant_and_registers() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        // Interleaved tenants, deliberately out of ts order.
        let mut rows = Vec::new();
        for i in (0..60i64).rev() {
            rows.push(rec(1 + (i % 2) as u64, i));
        }
        let report =
            build_and_upload(rows, &TableSchema::request_log(), &config(), &store, &metadata)
                .unwrap();
        assert_eq!(report.rows_archived, 60);
        assert_eq!(report.blocks_built, 2); // 30 rows per tenant, one block each
        assert_eq!(store.object_count(), 2);
        // Per-tenant isolation on OSS paths.
        assert_eq!(store.list("tenants/1/").unwrap().len(), 1);
        assert_eq!(store.list("tenants/2/").unwrap().len(), 1);
        // Registered ranges prune correctly.
        let blocks = metadata.blocks_for(TenantId(1), TimeRange::all());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].rows, 30);
    }

    #[test]
    fn oversized_tenants_split_into_multiple_blocks() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let rows: Vec<LogRecord> = (0..120).map(|i| rec(7, i)).collect();
        let report =
            build_and_upload(rows, &TableSchema::request_log(), &config(), &store, &metadata)
                .unwrap();
        assert_eq!(report.blocks_built, 3); // 120 / 50 → 50+50+20
        let blocks = metadata.all_blocks(TenantId(7));
        assert_eq!(blocks.len(), 3);
        // Chronological, non-overlapping chunks.
        assert!(blocks[0].max_ts < blocks[1].min_ts);
        assert!(blocks[1].max_ts < blocks[2].min_ts);
    }

    #[test]
    fn uploaded_blocks_are_readable_and_sorted() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let mut rows: Vec<LogRecord> = (0..40).map(|i| rec(3, 100 - i)).collect();
        rows.reverse();
        build_and_upload(rows, &TableSchema::request_log(), &config(), &store, &metadata)
            .unwrap();
        let entry = &metadata.all_blocks(TenantId(3))[0];
        let bytes = store.get(&entry.path).unwrap();
        let reader = LogBlockReader::open(bytes).unwrap();
        assert_eq!(reader.row_count(), 40);
        let ts = reader.read_column(1).unwrap();
        let vals: Vec<i64> = ts.iter().map(|v| v.as_i64().unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "rows must be ts-sorted");
        assert_eq!(entry.min_ts, Timestamp(61));
        assert_eq!(entry.max_ts, Timestamp(100));
    }

    #[test]
    fn empty_input_is_noop() {
        let store = MemoryStore::new();
        let metadata = MetadataStore::new();
        let report = build_and_upload(
            Vec::new(),
            &TableSchema::request_log(),
            &config(),
            &store,
            &metadata,
        )
        .unwrap();
        assert_eq!(report, BuildReport::default());
        assert_eq!(store.object_count(), 0);
    }
}
