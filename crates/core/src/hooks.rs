//! Crash-point hooks for deterministic simulation testing.
//!
//! The archive pipeline calls [`CrashHooks::reached`] at each named point
//! of its protocol. In production the hooks are a no-op ([`NoopHooks`]);
//! the simulation harness injects an implementation that panics with a
//! [`SimCrash`] payload at a scheduled point, unwinds out of the engine,
//! drops it mid-protocol and reopens from disk — exercising exactly the
//! windows the drain-intent recovery protocol exists for. Plain dependency
//! injection, no cfg gates: the production default costs one virtual call
//! per point.
//!
//! Every hook site sits **outside** lock scopes, so an unwind never leaves
//! a poisoned or held lock behind (locks are parking_lot, which recovers
//! regardless, but hooks-outside-locks keeps the reopened engine's
//! invariants trivially intact).

use std::sync::Arc;

/// Named points in the archive pipeline where a simulated crash can fire.
///
/// The lattice follows the protocol order for one drain:
/// ingest (`AfterWalAppend`) → drain+intent (`AfterDrain`) →
/// upload+commit (`AfterUpload`) → ack (`BeforeAck`) →
/// checkpoint (`BeforeCheckpoint`) → WAL truncation (`BeforeTruncate`),
/// and for one compaction:
/// plan (`CompactPlanned`) → upload (`CompactUploaded`) →
/// swap+tombstone (`CompactCommitted`) → GC delete (`BeforeGcDelete`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashPoint {
    /// An ingest batch is durable in the WAL and applied to the row store,
    /// but the caller has not been acknowledged yet.
    AfterWalAppend,
    /// Rows left the row store; the drain intent is synced in the WAL; the
    /// upload has not started.
    AfterDrain,
    /// The upload finished (blocks durable on OSS and the drain committed
    /// in the metadata store), but the shard has not been acked.
    AfterUpload,
    /// The engine decided to ack an archived drain but hasn't called into
    /// the shard yet.
    BeforeAck,
    /// Inside the ack, right before the shard closes the in-flight op and
    /// considers truncation.
    BeforeCheckpoint,
    /// The shard is quiescent and about to drop WAL segments.
    BeforeTruncate,
    /// A compaction run is planned: the merged block's path is recorded as
    /// a pending intent in the metadata store, nothing uploaded yet.
    CompactPlanned,
    /// The merged block is durable on OSS, but the map has not been
    /// swapped — the source blocks are still the live ones.
    CompactUploaded,
    /// The map swap committed: the merged block is live, the superseded
    /// sources sit on the tombstone list, their objects not yet deleted.
    CompactCommitted,
    /// Inside the GC pass, right before deleting one tombstoned object.
    BeforeGcDelete,
}

impl CrashPoint {
    /// Every point, in protocol order.
    pub const ALL: [CrashPoint; 10] = [
        CrashPoint::AfterWalAppend,
        CrashPoint::AfterDrain,
        CrashPoint::AfterUpload,
        CrashPoint::BeforeAck,
        CrashPoint::BeforeCheckpoint,
        CrashPoint::BeforeTruncate,
        CrashPoint::CompactPlanned,
        CrashPoint::CompactUploaded,
        CrashPoint::CompactCommitted,
        CrashPoint::BeforeGcDelete,
    ];
}

/// Injectable observer of archive-pipeline crash points.
pub trait CrashHooks: Send + Sync {
    /// Called when execution reaches `point`. A simulation implementation
    /// may panic with a [`SimCrash`] payload to abort the episode here;
    /// the default does nothing.
    fn reached(&self, point: CrashPoint) {
        let _ = point;
    }
}

/// The production hooks: every point is a no-op.
pub struct NoopHooks;

impl CrashHooks for NoopHooks {}

/// A fresh no-op hook object (the default for [`crate::LogStore::open`]).
pub fn noop_hooks() -> Arc<dyn CrashHooks> {
    Arc::new(NoopHooks)
}

/// Panic payload identifying a simulated crash, so harnesses can
/// `catch_unwind` and downcast to distinguish an injected crash from a
/// genuine bug.
#[derive(Debug, Clone, Copy)]
pub struct SimCrash(pub CrashPoint);
