//! The `LogStore` facade: one embedded, multi-tenant log database.

use crate::broker::{Broker, QueryExecution};
use crate::compactor::{self, CompactionConfig, CompactionReport, GcReport};
use crate::config::{ClusterConfig, QueryOptions};
use crate::controller::ClusterController;
use crate::databuilder::{build_and_upload_drain, BuildConfig, BuildReport};
use crate::executor::QueryPool;
use crate::hooks::{noop_hooks, CrashHooks, CrashPoint};
use crate::metadata::{DrainId, MetadataStore, TenantInfo};
use crate::worker::{ArchiveCatalog, Worker};
use logstore_cache::{CacheStats, DiskBlockCache, Prefetcher, TieredCache};
use logstore_flow::ControlAction;
use logstore_oss::{
    FaultyStore, MemoryStore, OssMetrics, RetryMetrics, RetryingStore, SimulatedOss,
};
use logstore_query::exec::QueryResult;
use logstore_types::{
    Error, LogRecord, RecordBatch, Result, ShardId, TableSchema, TenantId, Timestamp, WorkerId,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The object-storage stack every engine instance runs on, inside out: an
/// in-memory backend, a fault-injection layer (inert by default —
/// probability 0.0), the configurable latency/bandwidth simulator, and a
/// transient-failure retry decorator. Retry sits outermost so every
/// attempt pays modelled latency and passes through fault injection —
/// exactly like re-issuing a real OSS request. Figure harnesses flip the
/// latency model between OSS-like and local-SSD-like; resilience tests
/// schedule faults via [`ClusterShared::fault_layer`].
pub type Store = RetryingStore<SimulatedOss<FaultyStore<MemoryStore>>>;

/// State shared between brokers, the controller and background tasks.
pub struct ClusterShared {
    /// The served schema.
    pub schema: TableSchema,
    /// Workers, indexed by `WorkerId.raw()`. Grows under `ScaleCluster`.
    pub workers: logstore_sync::OrderedRwLock<Vec<Arc<Worker>>>,
    /// Shard placement. Grows under `ScaleCluster`.
    pub shard_to_worker: logstore_sync::OrderedRwLock<HashMap<ShardId, usize>>,
    /// The controller (routing, traffic control, expiration).
    pub controller: ClusterController,
    /// Metadata / LogBlock map.
    pub metadata: Arc<MetadataStore>,
    /// The (simulated) OSS.
    pub store: Arc<Store>,
    /// The multi-level block cache.
    pub cache: Arc<TieredCache>,
    /// The parallel prefetcher.
    pub prefetcher: Prefetcher,
    /// The shared scatter/gather query executor pool.
    pub query_pool: QueryPool,
    /// Cache alignment block size.
    pub cache_block_size: u64,
    /// Archive-pipeline crash hooks (no-op outside simulation).
    pub hooks: Arc<dyn CrashHooks>,
}

impl ClusterShared {
    /// Resolves the worker hosting `shard`.
    pub fn worker_for(&self, shard: ShardId) -> Result<Arc<Worker>> {
        let idx = *self
            .shard_to_worker
            .read()
            .get(&shard)
            .ok_or_else(|| Error::Cluster(format!("{shard} is not placed on any worker")))?;
        Ok(Arc::clone(&self.workers.read()[idx]))
    }

    /// Snapshot of the current worker set.
    pub fn worker_snapshot(&self) -> Vec<Arc<Worker>> {
        self.workers.read().iter().map(Arc::clone).collect()
    }

    /// The latency/bandwidth simulator layer of the store stack.
    pub fn oss_sim(&self) -> &SimulatedOss<FaultyStore<MemoryStore>> {
        self.store.inner()
    }

    /// The fault-injection layer of the store stack (resilience tests
    /// schedule faults here and inspect raw stored objects through its
    /// own `inner()`).
    pub fn fault_layer(&self) -> &FaultyStore<MemoryStore> {
        self.store.inner().inner()
    }
}

/// Outcome of an ingest call.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Records accepted into phase one.
    pub accepted: u64,
    /// Records rejected by backpressure (retry after throttling).
    pub rejected: u64,
    /// Records whose shard append failed terminally (WAL/group-commit or
    /// replication error). Like `archive_degraded`, a per-shard failure
    /// degrades the report instead of failing the whole multi-shard
    /// ingest: the other sub-batches' outcomes still stand. Failed rows
    /// were never acknowledged durable — the client re-sends them.
    pub failed: u64,
    /// The first append failure behind `failed`, for diagnostics.
    pub first_failure: Option<String>,
    /// True when the piggybacked build pass hit a terminal archive failure.
    /// The accepted rows are still durable (WAL + row store) and will be
    /// re-archived, but a persistently degraded archive path grows the row
    /// store toward backpressure — details in [`LogStore::archive_stats`].
    pub archive_degraded: bool,
}

/// Lifetime counters for the archive pipeline's failure path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Build passes that hit a terminal (post-retry) upload failure.
    pub failed_passes: u64,
    /// Rows handed back to their row store after a failed upload. Each is
    /// still WAL-covered and is re-archived by a later pass.
    pub rows_restored: u64,
}

/// An embedded LogStore cluster.
pub struct LogStore {
    config: ClusterConfig,
    shared: Arc<ClusterShared>,
    broker: Broker,
    build_config: BuildConfig,
    archive_failed_passes: AtomicU64,
    archive_rows_restored: AtomicU64,
}

/// Externally-owned parts a [`LogStore::open_with`] call can inject.
///
/// A simulated crash drops the engine but not the world: OSS and the
/// metadata service are durable remote systems that survive a node crash,
/// and the harness models that by owning both across engine incarnations.
/// `hooks` is the crash-point injector. Every `None` falls back to what
/// [`LogStore::open`] would build.
#[derive(Default)]
pub struct OpenParts {
    /// The OSS stack (survives simulated crashes when shared).
    pub store: Option<Arc<Store>>,
    /// The metadata store (tenants, LogBlock map, drain commits).
    pub metadata: Option<Arc<MetadataStore>>,
    /// Archive-pipeline crash hooks.
    pub hooks: Option<Arc<dyn CrashHooks>>,
}

impl LogStore {
    /// Builds and starts a cluster.
    pub fn open(config: ClusterConfig) -> Result<Self> {
        Self::open_with(config, OpenParts::default())
    }

    /// Builds and starts a cluster around externally-owned `parts`.
    pub fn open_with(config: ClusterConfig, parts: OpenParts) -> Result<Self> {
        let metadata = parts.metadata.unwrap_or_else(|| Arc::new(MetadataStore::new()));
        let hooks = parts.hooks.unwrap_or_else(noop_hooks);
        let controller = ClusterController::new(&config, Arc::clone(&metadata));
        let store = parts.store.unwrap_or_else(|| {
            Arc::new(RetryingStore::new(
                SimulatedOss::new(
                    FaultyStore::new(
                        MemoryStore::new(),
                        config.oss_fault_scope,
                        config.oss_fault_probability,
                        config.seed,
                    ),
                    config.oss_latency.clone(),
                    config.seed,
                ),
                config.oss_retry.clone(),
                config.seed,
            ))
        });
        let cache = Arc::new(match config.cache_disk_bytes {
            Some(disk_bytes) => {
                let dir = config
                    .data_dir
                    .clone()
                    .unwrap_or_else(std::env::temp_dir)
                    .join(format!("logstore-ssd-cache-{}", std::process::id()));
                TieredCache::with_disk(
                    config.cache_memory_bytes,
                    DiskBlockCache::open_sharded(dir, disk_bytes, config.cache_shards)?,
                )
            }
            None => {
                TieredCache::memory_only_sharded(config.cache_memory_bytes, config.cache_shards)
            }
        });
        let archive_catalog = ArchiveCatalog {
            metadata: Arc::clone(&metadata),
            chunk_rows: config.max_rows_per_logblock,
        };
        let mut workers = Vec::with_capacity(config.workers as usize);
        let mut shard_to_worker = HashMap::new();
        for w in 0..config.workers {
            let shard_ids: Vec<ShardId> = (0..config.shards_per_worker)
                .map(|s| ShardId(w * config.shards_per_worker + s))
                .collect();
            for &s in &shard_ids {
                shard_to_worker.insert(s, w as usize);
            }
            workers.push(Arc::new(Worker::new(
                WorkerId(w),
                &shard_ids,
                &config.schema,
                config.rowstore_backpressure_bytes,
                config.raft_replicas,
                config.data_dir.as_ref(),
                config.wal.clone(),
                config.seed,
                Some(&archive_catalog),
                Arc::clone(&hooks),
            )?));
        }
        // Workers join the cluster through the replicated control plane:
        // each one attaches its window endpoint to the control-plane
        // network and registers its shards via a `RegisterWorker` command
        // committed through the controller's Raft log.
        for worker in &workers {
            controller.attach_worker(worker);
            controller.register_worker(worker.id(), &worker.shard_ids(), config.shard_capacity)?;
        }
        // Recovery route restoration: WAL replay may have resurrected
        // tenant rows on shards the freshly-built routing table does not
        // cover (the tenant had been rebalanced off its home shard before
        // the restart). Reinstall a route for every (tenant, shard) pair
        // holding buffered rows, or those rows would be invisible to reads.
        let mut recovered: std::collections::BTreeMap<TenantId, Vec<ShardId>> = Default::default();
        for worker in &workers {
            for shard in worker.shard_ids() {
                for tenant in worker.buffered_tenants(shard)? {
                    recovered.entry(tenant).or_default().push(shard);
                }
            }
        }
        for (tenant, shards) in recovered {
            controller.restore_routes(tenant, &shards)?;
        }
        let shared = Arc::new(ClusterShared {
            schema: config.schema.clone(),
            workers: logstore_sync::OrderedRwLock::new("core.engine.workers", workers),
            shard_to_worker: logstore_sync::OrderedRwLock::new(
                "core.engine.shard_map",
                shard_to_worker,
            ),
            controller,
            metadata,
            store,
            cache,
            prefetcher: Prefetcher::new(config.prefetch_threads),
            query_pool: QueryPool::new(config.query_threads)?,
            cache_block_size: config.cache_block_size,
            hooks,
        });
        let broker = Broker::new(Arc::clone(&shared));
        let build_config = BuildConfig {
            compression: config.compression,
            block_rows: config.block_rows,
            max_rows_per_logblock: config.max_rows_per_logblock,
        };
        Ok(LogStore {
            config,
            shared,
            broker,
            build_config,
            archive_failed_passes: AtomicU64::new(0),
            archive_rows_restored: AtomicU64::new(0),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Shared state (experiment harnesses reach through this).
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// Ingests a batch of records through the broker (phase one), then
    /// runs the data builder on any shard over its flush threshold.
    ///
    /// An archive failure does not fail an accepted ingest: the accepted
    /// rows are durable in phase one (WAL + row store), `run_builder`
    /// restores any drained-but-not-uploaded rows, and a later pass
    /// re-archives them. It is surfaced as [`IngestReport::archive_degraded`]
    /// so writers notice before backpressure; counters are in
    /// [`LogStore::archive_stats`].
    pub fn ingest(&self, records: Vec<LogRecord>) -> Result<IngestReport> {
        let mut report = self.broker.ingest(RecordBatch::from_records(records))?;
        report.archive_degraded = self.flush_if_needed().is_err();
        Ok(report)
    }

    /// Executes a query with default options.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        Ok(self.broker.query(sql, &QueryOptions::default())?.result)
    }

    /// Executes a query with explicit options, returning full diagnostics.
    pub fn query_with_options(&self, sql: &str, opts: &QueryOptions) -> Result<QueryExecution> {
        self.broker.query(sql, opts)
    }

    /// Forces phase two now: drains every shard into LogBlocks on OSS.
    pub fn flush(&self) -> Result<BuildReport> {
        self.run_builder(true)
    }

    /// Runs phase two only for shards over the flush threshold.
    pub fn flush_if_needed(&self) -> Result<BuildReport> {
        self.run_builder(false)
    }

    /// One build pass over every shard: drain → build → upload → **ack**.
    ///
    /// The durability order is the point of this function. Draining does
    /// not checkpoint anything; only after *all* of a shard's drained rows
    /// are durable on OSS does the ack ([`Worker::ack_archived`]) truncate
    /// the WAL and compact the replicated log. On a terminal upload
    /// failure the un-uploaded rows go back into the shard's row store —
    /// still WAL-covered, so a crash at any point loses nothing. Every
    /// shard is processed even when an earlier one fails; the first error
    /// is returned after the pass completes.
    fn run_builder(&self, force: bool) -> Result<BuildReport> {
        // Registered before any path allocation: while this guard lives,
        // the GC pass will not sweep our pending upload paths as orphans.
        let _build = self.shared.metadata.begin_build();
        let mut total = BuildReport::default();
        let mut first_error: Option<Error> = None;
        for worker in self.shared.worker_snapshot() {
            let (drains, drain_error) =
                worker.drain_for_build(self.config.rowstore_flush_bytes, force);
            if let Some(e) = drain_error {
                // Those shards' rows are already back in their row stores;
                // the drains that did succeed still proceed.
                first_error.get_or_insert(e);
            }
            for (shard, seq, rows) in drains {
                self.shared.hooks.reached(CrashPoint::AfterDrain);
                let drain_id = seq.map(|seq| DrainId { shard, seq });
                let mut outcome = build_and_upload_drain(
                    rows,
                    &self.shared.schema,
                    &self.build_config,
                    self.shared.store.as_ref(),
                    &self.shared.metadata,
                    drain_id,
                );
                self.shared.hooks.reached(CrashPoint::AfterUpload);
                total.merge(&outcome.report);
                // An ack/restore failure on one shard must not abort the
                // pass: the remaining drained rows still need their ack or
                // restore, or they would vanish from the row store with
                // their in-flight archive ops left dangling.
                let close = if outcome.is_complete() {
                    self.shared.hooks.reached(CrashPoint::BeforeAck);
                    worker.ack_archived(shard)
                } else {
                    self.archive_failed_passes.fetch_add(1, Ordering::Relaxed);
                    self.archive_rows_restored
                        .fetch_add(outcome.unarchived.len() as u64, Ordering::Relaxed);
                    if first_error.is_none() {
                        first_error = outcome.error.take();
                    }
                    worker.restore_unarchived(shard, outcome.unarchived)
                };
                if let Err(e) = close {
                    first_error.get_or_insert(e);
                }
            }
            if force {
                // Shards with nothing to drain produce no ack, yet may hold
                // a truncation an earlier overlapping ack had to defer —
                // apply it now that they are quiescent.
                for shard in worker.shard_ids() {
                    if let Err(e) = worker.truncate_quiescent(shard) {
                        first_error.get_or_insert(e);
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// One traffic-control tick: the controller fetches worker ingest
    /// windows over the control-plane network, feeds the monitor, and the
    /// leader proposes the balancer's plan through the replicated log
    /// (Algorithm 1). After a rebalance, rows of tenants whose routes left
    /// a shard are packaged and flushed to OSS instead of migrating between
    /// nodes (paper §4.1.5) — this is what "helps to reduce node load in
    /// the case of system hotspots".
    pub fn control_tick(&self) -> Result<ControlAction> {
        let action = self.shared.controller.control_tick()?;
        // Vacated edges persist in the replicated state until their flush
        // is acknowledged — so they are processed on *every* tick, not
        // just the one that produced them: a controller crash between the
        // rebalance commit and the flush leaves the edge pending, and the
        // next tick (under the new leader) finishes the job. One bad
        // tenant flush must not starve the others: every vacated route is
        // attempted and the first error returned afterwards.
        let mut first_error: Option<Error> = None;
        for (tenant, shard) in self.shared.controller.vacated_routes() {
            match self.flush_vacated_route(tenant, shard) {
                Ok(()) => {
                    if let Err(e) = self.shared.controller.vacate_done(tenant, shard) {
                        first_error.get_or_insert(e);
                    }
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(action)
    }

    /// Flushes one vacated tenant's rows off its old shard (the
    /// flush-instead-of-migrate optimization, §4.1.5). On a terminal
    /// upload failure the rows go back to the old shard — they stay
    /// queryable there and the next build pass re-archives them: a missed
    /// rebalance, never a lost row.
    fn flush_vacated_route(&self, tenant: TenantId, shard: ShardId) -> Result<()> {
        let _build = self.shared.metadata.begin_build();
        let worker = self.shared.worker_for(shard)?;
        let Some((seq, rows)) = worker.drain_tenant(shard, tenant)? else {
            return Ok(());
        };
        self.shared.hooks.reached(CrashPoint::AfterDrain);
        let drain_id = seq.map(|seq| DrainId { shard, seq });
        let mut outcome = build_and_upload_drain(
            rows,
            &self.shared.schema,
            &self.build_config,
            self.shared.store.as_ref(),
            &self.shared.metadata,
            drain_id,
        );
        self.shared.hooks.reached(CrashPoint::AfterUpload);
        if outcome.is_complete() {
            // Close the tenant drain's in-flight archive op, or the
            // shard's WAL truncation stays blocked forever.
            self.shared.hooks.reached(CrashPoint::BeforeAck);
            worker.ack_tenant_archived(shard)
        } else {
            self.archive_failed_passes.fetch_add(1, Ordering::Relaxed);
            self.archive_rows_restored
                .fetch_add(outcome.unarchived.len() as u64, Ordering::Relaxed);
            let error = outcome.error.take();
            worker.restore_unarchived(shard, outcome.unarchived)?;
            match error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        }
    }

    /// `ScaleCluster` (Algorithm 1 lines 25–27): adds `n` workers, each
    /// with the configured shards-per-worker, and registers the new
    /// capacity with the controller. Existing data stays put — the next
    /// control tick spreads hot tenants onto the new shards.
    pub fn scale_out(&self, n: u32) -> Result<Vec<WorkerId>> {
        let mut added = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let mut workers = self.shared.workers.write();
            let mut shard_map = self.shared.shard_to_worker.write();
            let worker_id = WorkerId(workers.len() as u32);
            let next_shard = shard_map.keys().map(|s| s.raw() + 1).max().unwrap_or(0);
            let shard_ids: Vec<ShardId> =
                (0..self.config.shards_per_worker).map(|s| ShardId(next_shard + s)).collect();
            let archive_catalog = ArchiveCatalog {
                metadata: Arc::clone(&self.shared.metadata),
                chunk_rows: self.config.max_rows_per_logblock,
            };
            let worker = Arc::new(Worker::new(
                worker_id,
                &shard_ids,
                &self.config.schema,
                self.config.rowstore_backpressure_bytes,
                self.config.raft_replicas,
                self.config.data_dir.as_ref(),
                self.config.wal.clone(),
                self.config.seed ^ u64::from(worker_id.raw()),
                Some(&archive_catalog),
                Arc::clone(&self.shared.hooks),
            )?);
            for &s in &shard_ids {
                shard_map.insert(s, workers.len());
            }
            workers.push(Arc::clone(&worker));
            drop(workers);
            drop(shard_map);
            self.shared.controller.attach_worker(&worker);
            self.shared.controller.register_worker(
                worker_id,
                &shard_ids,
                self.config.shard_capacity,
            )?;
            added.push(worker_id);
        }
        Ok(added)
    }

    /// Current worker count.
    pub fn worker_count(&self) -> usize {
        self.shared.workers.read().len()
    }

    /// Sets a tenant's retention policy (None = keep forever).
    pub fn set_retention(&self, tenant: TenantId, retention_ms: Option<i64>) {
        self.shared.metadata.set_retention(tenant, retention_ms);
    }

    /// Runs the expiration task as of `now`; returns the number of
    /// objects deleted from OSS.
    ///
    /// Expiration is two decoupled steps: every tenant's expired blocks
    /// move from the live map to the persistent tombstone list (atomic,
    /// infallible, per tenant — one tenant cannot abort another), then a
    /// GC pass deletes tombstoned objects. A failed delete retains its
    /// tombstone for the next pass instead of leaking the object.
    pub fn expire(&self, now: Timestamp) -> Result<u64> {
        for tenant in self.shared.metadata.tenants() {
            self.shared.metadata.expire(tenant, now);
        }
        Ok(self.gc().deleted)
    }

    /// One compaction pass: merges runs of small adjacent LogBlocks per
    /// tenant into large blocks (rebuilding all indexes), swapping the map
    /// atomically and tombstoning the superseded objects. Safe to run
    /// concurrently with ingest, queries and expiration: a lost race
    /// surfaces as a skipped run, never as data loss.
    pub fn compact(&self) -> Result<CompactionReport> {
        compactor::run_compaction(
            self.shared.store.as_ref(),
            &self.shared.metadata,
            &self.shared.schema,
            &self.build_config,
            &self.compaction_config(),
            self.shared.hooks.as_ref(),
        )
    }

    /// One GC pass: sweeps orphaned uploads into the tombstone list and
    /// deletes tombstoned objects from OSS (evicting them from the block
    /// cache). Failed deletes are retried by the next pass.
    pub fn gc(&self) -> GcReport {
        compactor::run_gc(
            self.shared.store.as_ref(),
            &self.shared.metadata,
            Some(self.shared.cache.as_ref()),
            self.shared.hooks.as_ref(),
        )
    }

    fn compaction_config(&self) -> CompactionConfig {
        CompactionConfig {
            small_block_rows: self
                .config
                .compact_small_rows
                .unwrap_or(self.config.max_rows_per_logblock as u64),
            min_run: self.config.compact_min_run,
            max_merged_rows: self
                .config
                .compact_max_merged_rows
                .unwrap_or(4 * self.config.max_rows_per_logblock as u64),
        }
    }

    /// Per-tenant archived usage (the billing meter).
    pub fn tenant_usage(&self, tenant: TenantId) -> TenantInfo {
        self.shared.metadata.tenant_info(tenant)
    }

    /// OSS request/byte/latency counters.
    pub fn oss_metrics(&self) -> OssMetrics {
        self.shared.oss_sim().metrics()
    }

    /// Retry decorator counters (operations, retries, exhausted budgets).
    pub fn retry_metrics(&self) -> RetryMetrics {
        self.shared.store.metrics()
    }

    /// Archive-pipeline failure counters.
    pub fn archive_stats(&self) -> ArchiveStats {
        ArchiveStats {
            failed_passes: self.archive_failed_passes.load(Ordering::Relaxed),
            rows_restored: self.archive_rows_restored.load(Ordering::Relaxed),
        }
    }

    /// Resets OSS and retry counters (between experiment phases).
    pub fn reset_oss_metrics(&self) {
        self.shared.oss_sim().reset_metrics();
        self.shared.store.reset_metrics();
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Drops the memory cache tier (cold-cache experiment phases).
    pub fn clear_cache(&self) {
        self.shared.cache.clear_memory();
    }

    /// Number of registered LogBlocks.
    pub fn block_count(&self) -> usize {
        self.shared.metadata.block_count()
    }

    /// Total route edges in the routing table (Fig 12(c)).
    pub fn route_count(&self) -> usize {
        self.shared.controller.route_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_types::Value;

    fn rec(t: u64, ts: i64, latency: i64, msg: &str) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![
                Value::from("10.0.0.1"),
                Value::from("/api/v1/users"),
                Value::I64(latency),
                Value::Bool(latency > 400),
                Value::from(msg.to_string()),
            ],
        )
    }

    fn store() -> LogStore {
        LogStore::open(ClusterConfig::for_testing()).unwrap()
    }

    #[test]
    fn ingest_then_query_realtime() {
        let s = store();
        let report =
            s.ingest(vec![rec(1, 100, 10, "hello world"), rec(1, 200, 20, "second line")]).unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejected, 0);
        let result =
            s.query("SELECT log FROM request_log WHERE tenant_id = 1 AND ts >= 0").unwrap();
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    fn query_spans_realtime_and_archived() {
        let s = store();
        s.ingest(vec![rec(1, 100, 10, "archived row")]).unwrap();
        let report = s.flush().unwrap();
        assert_eq!(report.rows_archived, 1);
        assert!(s.block_count() >= 1);
        s.ingest(vec![rec(1, 200, 20, "fresh row")]).unwrap();
        let result = s.query("SELECT log FROM request_log WHERE tenant_id = 1").unwrap();
        assert_eq!(result.rows.len(), 2, "must merge OSS blocks with the row store");
    }

    #[test]
    fn tenant_isolation_in_queries_and_storage() {
        let s = store();
        s.ingest(vec![rec(1, 100, 10, "tenant one"), rec(2, 100, 10, "tenant two")]).unwrap();
        s.flush().unwrap();
        let r1 = s.query("SELECT log FROM request_log WHERE tenant_id = 1").unwrap();
        assert_eq!(r1.rows.len(), 1);
        assert_eq!(r1.rows[0][0], Value::from("tenant one"));
        // Physical isolation: distinct OSS prefixes.
        use logstore_oss::ObjectStore;
        assert_eq!(s.shared().fault_layer().list("tenants/1/").unwrap().len(), 1);
        assert_eq!(s.shared().fault_layer().list("tenants/2/").unwrap().len(), 1);
    }

    #[test]
    fn queries_require_tenant_pinning() {
        let s = store();
        let err = s.query("SELECT log FROM request_log WHERE latency > 5").unwrap_err();
        assert!(matches!(err, Error::Query(_)));
    }

    #[test]
    fn aggregation_across_sources() {
        let s = store();
        for i in 0..30 {
            s.ingest(vec![rec(1, i, 10, "x")]).unwrap();
        }
        s.flush().unwrap();
        for i in 30..50 {
            s.ingest(vec![rec(1, i, 10, "x")]).unwrap();
        }
        let result = s.query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1").unwrap();
        assert_eq!(result.rows[0][0], Value::U64(50));
    }

    #[test]
    fn full_text_and_filters_match_across_flush() {
        let s = store();
        s.ingest(vec![
            rec(1, 1, 500, "request timeout while calling upstream"),
            rec(1, 2, 10, "request ok"),
        ])
        .unwrap();
        s.flush().unwrap();
        let result = s
            .query("SELECT log FROM request_log WHERE tenant_id = 1 AND log CONTAINS 'timeout'")
            .unwrap();
        assert_eq!(result.rows.len(), 1);
        let result =
            s.query("SELECT log FROM request_log WHERE tenant_id = 1 AND fail = true").unwrap();
        assert_eq!(result.rows.len(), 1);
    }

    #[test]
    fn expiration_removes_old_blocks() {
        let s = store();
        s.set_retention(TenantId(1), Some(1000));
        s.ingest(vec![rec(1, 0, 1, "old")]).unwrap();
        s.flush().unwrap();
        s.ingest(vec![rec(1, 10_000, 1, "new")]).unwrap();
        s.flush().unwrap();
        assert_eq!(s.block_count(), 2);
        let deleted = s.expire(Timestamp(10_500)).unwrap();
        assert_eq!(deleted, 1);
        assert_eq!(s.block_count(), 1);
        let result = s.query("SELECT log FROM request_log WHERE tenant_id = 1").unwrap();
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0][0], Value::from("new"));
    }

    #[test]
    fn usage_metering_accumulates() {
        let s = store();
        for i in 0..10 {
            s.ingest(vec![rec(3, i, 1, "meter me")]).unwrap();
        }
        s.flush().unwrap();
        let usage = s.tenant_usage(TenantId(3));
        assert_eq!(usage.archived_rows, 10);
        assert!(usage.archived_bytes > 0);
    }

    #[test]
    fn query_options_do_not_change_results() {
        let s = store();
        for i in 0..200 {
            s.ingest(vec![rec(1, i, i % 300, if i % 7 == 0 { "timeout" } else { "fine" })])
                .unwrap();
        }
        s.flush().unwrap();
        let sql = "SELECT log FROM request_log WHERE tenant_id = 1 \
                   AND latency >= 100 AND log CONTAINS 'timeout'";
        let full = s.query_with_options(sql, &QueryOptions::default()).unwrap();
        s.clear_cache();
        let baseline = s.query_with_options(sql, &QueryOptions::baseline()).unwrap();
        assert_eq!(full.result, baseline.result);
        // And the optimized path does less scanning.
        assert!(full.stats.scan.blocks_scanned <= baseline.stats.scan.blocks_scanned);
    }

    #[test]
    fn flush_compacts_the_replicated_log() {
        let mut config = ClusterConfig::for_testing();
        config.raft_replicas = 3;
        config.workers = 1;
        config.shards_per_worker = 1;
        let s = LogStore::open(config).unwrap();
        for i in 0..20 {
            s.ingest(vec![rec(1, i, 1, "entry")]).unwrap();
        }
        let shard = logstore_types::ShardId(0);
        let before = s.shared().workers.read()[0].raft_snapshot_index(shard).unwrap();
        assert_eq!(before, Some(0), "no compaction before the first flush");
        s.flush().unwrap();
        let after = s.shared().workers.read()[0].raft_snapshot_index(shard).unwrap();
        // 20 ingests plus the leader's election no-op barrier.
        assert_eq!(after, Some(21), "archived entries must be compacted away");
        // Everything is still queryable (from OSS now).
        let result = s.query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1").unwrap();
        assert_eq!(result.rows[0][0], Value::U64(20));
    }

    #[test]
    fn replicated_cluster_works_end_to_end() {
        let mut config = ClusterConfig::for_testing();
        config.raft_replicas = 3;
        config.workers = 1;
        config.shards_per_worker = 1;
        let s = LogStore::open(config).unwrap();
        s.ingest(vec![rec(1, 1, 1, "replicated")]).unwrap();
        let result = s.query("SELECT log FROM request_log WHERE tenant_id = 1").unwrap();
        assert_eq!(result.rows.len(), 1);
    }
}
