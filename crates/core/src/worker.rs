//! Workers: shard ownership and the phase-one write path.
//!
//! A worker owns a set of shards. Each shard is a write-optimized row store
//! (optionally WAL-durable, optionally Raft-replicated) plus ingest
//! accounting that feeds the traffic monitor. The data builder drains
//! shards in the background (phase two, [`crate::databuilder`]).

/// Raft batch payloads share the WAL's codec (including its corruption
/// guards); re-exported for replica catch-up tooling and tests.
pub use logstore_codec::batch::decode_batch;
use logstore_codec::batch::encode_batch;
use logstore_raft::{InProcCluster, RaftConfig};
use logstore_types::{
    ColumnPredicate, Error, LogRecord, RecordBatch, Result, ShardId, TableSchema, TenantId,
    TimeRange, WorkerId,
};
use logstore_wal::{RowStore, ShardStore, WalConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;

/// Per-shard ingest counters for one monitoring window.
#[derive(Debug, Default, Clone)]
pub struct ShardWindow {
    /// Records ingested this window.
    pub total: u64,
    /// Per-tenant breakdown.
    pub per_tenant: HashMap<TenantId, u64>,
}

enum Backend {
    Mem(RowStore),
    Durable(ShardStore),
}

impl Backend {
    fn insert_batch(&mut self, batch: RecordBatch) -> Result<()> {
        match self {
            Backend::Mem(rows) => {
                for r in batch.records {
                    rows.insert(r);
                }
                Ok(())
            }
            Backend::Durable(store) => store.append_batch(batch).map(|_| ()),
        }
    }

    fn scan(
        &self,
        tenant: TenantId,
        range: TimeRange,
        preds: &[ColumnPredicate],
    ) -> Vec<LogRecord> {
        match self {
            Backend::Mem(rows) => rows.scan(tenant, range, preds),
            Backend::Durable(store) => store.scan(tenant, range, preds),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Backend::Mem(rows) => rows.bytes(),
            Backend::Durable(store) => store.buffered_bytes(),
        }
    }

    fn rows(&self) -> usize {
        match self {
            Backend::Mem(rows) => rows.row_count(),
            Backend::Durable(store) => store.buffered_rows(),
        }
    }

    fn drain_all(&mut self) -> Vec<LogRecord> {
        // No checkpoint here: the WAL keeps covering the drained rows until
        // the engine acks that they are durable on OSS (`ack_archived`).
        match self {
            Backend::Mem(rows) => rows.drain_oldest(usize::MAX),
            Backend::Durable(store) => store.drain_for_archive(usize::MAX),
        }
    }

    fn drain_tenant(&mut self, tenant: TenantId) -> Vec<LogRecord> {
        match self {
            Backend::Mem(rows) => rows.drain_tenant(tenant),
            Backend::Durable(store) => store.drain_tenant(tenant),
        }
    }

    fn restore(&mut self, rows: Vec<LogRecord>) {
        match self {
            Backend::Mem(store) => {
                for r in rows {
                    store.insert(r);
                }
            }
            Backend::Durable(store) => store.restore_unarchived(rows),
        }
    }

    fn checkpoint(&mut self) -> Result<usize> {
        match self {
            Backend::Mem(_) => Ok(0),
            Backend::Durable(store) => store.checkpoint(),
        }
    }

    fn truncate_quiescent(&mut self) -> Result<usize> {
        match self {
            Backend::Mem(_) => Ok(0),
            Backend::Durable(store) => store.truncate_if_quiescent(),
        }
    }
}

struct ShardState {
    backend: Mutex<Backend>,
    raft: Option<Mutex<InProcCluster>>,
    window: Mutex<ShardWindow>,
}

/// One worker node.
pub struct Worker {
    id: WorkerId,
    shards: HashMap<ShardId, ShardState>,
    backpressure_bytes: usize,
}

impl Worker {
    /// Creates a worker owning `shard_ids`.
    pub fn new(
        id: WorkerId,
        shard_ids: &[ShardId],
        schema: &TableSchema,
        backpressure_bytes: usize,
        raft_replicas: usize,
        data_dir: Option<&PathBuf>,
        seed: u64,
    ) -> Result<Self> {
        let mut shards = HashMap::new();
        for &shard in shard_ids {
            let backend = match data_dir {
                Some(dir) => {
                    let shard_dir = dir
                        .join(format!("worker-{}", id.raw()))
                        .join(format!("shard-{}", shard.raw()));
                    Backend::Durable(ShardStore::open(
                        shard_dir,
                        schema.clone(),
                        WalConfig::default(),
                    )?)
                }
                None => Backend::Mem(RowStore::new(schema.clone())),
            };
            let raft = if raft_replicas > 1 {
                let mut cluster = InProcCluster::new(
                    raft_replicas,
                    RaftConfig::default(),
                    seed ^ u64::from(shard.raw()),
                );
                cluster
                    .run_until_leader(500)
                    .ok_or_else(|| Error::Raft("shard group failed to elect".into()))?;
                Some(Mutex::new(cluster))
            } else {
                None
            };
            shards.insert(
                shard,
                ShardState {
                    backend: Mutex::new(backend),
                    raft,
                    window: Mutex::new(ShardWindow::default()),
                },
            );
        }
        Ok(Worker { id, shards, backpressure_bytes })
    }

    /// This worker's id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Shards owned by this worker.
    pub fn shard_ids(&self) -> Vec<ShardId> {
        let mut ids: Vec<ShardId> = self.shards.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn shard(&self, shard: ShardId) -> Result<&ShardState> {
        self.shards
            .get(&shard)
            .ok_or_else(|| Error::Cluster(format!("{shard} not on worker {}", self.id)))
    }

    /// Phase-one ingest of a batch into one shard: BFC admission check,
    /// Raft replication (when configured), row-store insert, accounting.
    /// Consumes the batch — records move into the store, never cloned.
    pub fn append(&self, shard: ShardId, batch: RecordBatch) -> Result<()> {
        let state = self.shard(shard)?;
        {
            let backend = state.backend.lock();
            if backend.bytes() + batch.approx_size() > self.backpressure_bytes {
                return Err(Error::Backpressure(format!(
                    "shard {shard} row store at {} bytes",
                    backend.bytes()
                )));
            }
        }
        if let Some(raft) = &state.raft {
            let mut cluster = raft.lock();
            let payload = encode_batch(&batch.records);
            cluster.propose(payload)?;
            // Drive the group until the entry is applied on the leader
            // (the paper's sync_queue wait, §4.2).
            let leader = cluster
                .any_leader()
                .ok_or_else(|| Error::Raft("shard group lost its leader".into()))?;
            let target = cluster.applied(leader).len() + 1;
            let mut steps = 0;
            while cluster.applied(leader).len() < target {
                cluster.step();
                steps += 1;
                if steps > 1000 {
                    return Err(Error::Raft("replication stalled".into()));
                }
            }
        }
        // Window accounting happens only on success; tally before the
        // records move into the backend.
        let total = batch.len() as u64;
        let mut per_tenant: HashMap<TenantId, u64> = HashMap::new();
        for r in &batch.records {
            *per_tenant.entry(r.tenant_id).or_default() += 1;
        }
        state.backend.lock().insert_batch(batch)?;
        let mut window = state.window.lock();
        window.total += total;
        for (tenant, n) in per_tenant {
            *window.per_tenant.entry(tenant).or_default() += n;
        }
        Ok(())
    }

    /// Scans one shard's real-time store.
    pub fn scan(
        &self,
        shard: ShardId,
        tenant: TenantId,
        range: TimeRange,
        preds: &[ColumnPredicate],
    ) -> Result<Vec<LogRecord>> {
        Ok(self.shard(shard)?.backend.lock().scan(tenant, range, preds))
    }

    /// Buffered row-store bytes of one shard.
    pub fn buffered_bytes(&self, shard: ShardId) -> Result<usize> {
        Ok(self.shard(shard)?.backend.lock().bytes())
    }

    /// Buffered rows of one shard.
    pub fn buffered_rows(&self, shard: ShardId) -> Result<usize> {
        Ok(self.shard(shard)?.backend.lock().rows())
    }

    /// Drains every shard whose buffer exceeds `flush_bytes` (or all when
    /// `force`), returning `(shard, rows)` for the data builder. Every
    /// returned pair opens an in-flight archive op on its shard that the
    /// engine must close with exactly one [`Worker::ack_archived`] (upload
    /// succeeded) or [`Worker::restore_unarchived`] (upload failed) —
    /// WAL truncation stays blocked until all ops on a shard are closed.
    pub fn drain_for_build(
        &self,
        flush_bytes: usize,
        force: bool,
    ) -> Vec<(ShardId, Vec<LogRecord>)> {
        let mut out = Vec::new();
        for (&shard, state) in &self.shards {
            let mut backend = state.backend.lock();
            if force || backend.bytes() >= flush_bytes {
                let rows = backend.drain_all();
                if !rows.is_empty() {
                    out.push((shard, rows));
                }
            }
        }
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Drains one tenant from one shard (rebalance flush, §4.1.5). A
    /// non-empty drain opens an in-flight archive op; close it with
    /// [`Worker::ack_tenant_archived`] or [`Worker::restore_unarchived`].
    pub fn drain_tenant(&self, shard: ShardId, tenant: TenantId) -> Result<Vec<LogRecord>> {
        Ok(self.shard(shard)?.backend.lock().drain_tenant(tenant))
    }

    /// Puts drained rows that failed to archive back into the shard's
    /// store. The shard's WAL still covers them (no ack happened), so this
    /// restores queryability without re-logging anything.
    pub fn restore_unarchived(&self, shard: ShardId, rows: Vec<LogRecord>) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        self.shard(shard)?.backend.lock().restore(rows);
        Ok(())
    }

    /// The archive ack: called by the engine once drained rows are durable
    /// on OSS. Truncates the shard's fully-archived WAL prefix and compacts
    /// the replicated log. Checkpoint I/O errors propagate — the WAL keeps
    /// the extra segments (at-least-once replay), but the condition is
    /// loud instead of silently leaking disk.
    pub fn ack_archived(&self, shard: ShardId) -> Result<()> {
        let state = self.shard(shard)?;
        state.backend.lock().checkpoint()?;
        self.checkpoint_raft(shard)
    }

    /// Acks a successful rebalance flush ([`Worker::drain_tenant`]): closes
    /// the tenant drain's in-flight archive op so WAL truncation is not
    /// blocked forever. Unlike [`Worker::ack_archived`] it does not compact
    /// the replicated log — the shard's other tenants are still only in the
    /// row store. Actual truncation happens only once the shard is
    /// quiescent (no other archive in flight, nothing buffered).
    pub fn ack_tenant_archived(&self, shard: ShardId) -> Result<()> {
        self.shard(shard)?.backend.lock().checkpoint().map(|_| ())
    }

    /// Opportunistic WAL truncation: applies a truncation that an
    /// overlapping ack had to defer, once the shard is quiescent (no
    /// archive in flight, nothing buffered). Closes no archive op, so it
    /// can never strip WAL coverage from a drain still in flight. Forced
    /// build passes call this for shards that had nothing to drain.
    pub fn truncate_quiescent(&self, shard: ShardId) -> Result<usize> {
        self.shard(shard)?.backend.lock().truncate_quiescent()
    }

    /// After the drained rows are durable on OSS, compacts the shard's
    /// replicated log up to the applied point (the checkpoint task the
    /// paper's controller schedules). No-op for unreplicated shards.
    pub fn checkpoint_raft(&self, shard: ShardId) -> Result<()> {
        let state = self.shard(shard)?;
        let Some(raft) = &state.raft else { return Ok(()) };
        let mut cluster = raft.lock();
        let Some(leader) = cluster.any_leader() else { return Ok(()) };
        let applied = cluster.node(leader).commit_index();
        if applied > 0 {
            // The snapshot payload is the archive watermark; replicas that
            // fall behind rebuild their row store from OSS, not the log.
            cluster.node_mut(leader).compact(applied, applied.to_le_bytes().to_vec())?;
        }
        Ok(())
    }

    /// The replicated log's compaction point for `shard` (None when the
    /// shard is unreplicated). Test/observability hook.
    pub fn raft_snapshot_index(&self, shard: ShardId) -> Result<Option<u64>> {
        let state = self.shard(shard)?;
        Ok(state.raft.as_ref().map(|raft| {
            let cluster = raft.lock();
            match cluster.any_leader() {
                Some(leader) => cluster.node(leader).snapshot_index(),
                None => 0,
            }
        }))
    }

    /// Takes and resets this window's per-shard ingest counters.
    pub fn take_window(&self) -> HashMap<ShardId, ShardWindow> {
        self.shards
            .iter()
            .map(|(&shard, state)| (shard, std::mem::take(&mut *state.window.lock())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_types::{Timestamp, Value};

    fn rec(t: u64, ts: i64) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![
                Value::from("ip"),
                Value::from("/a"),
                Value::I64(1),
                Value::Bool(false),
                Value::from("m"),
            ],
        )
    }

    fn worker(replicas: usize) -> Worker {
        Worker::new(
            WorkerId(0),
            &[ShardId(0), ShardId(1)],
            &TableSchema::request_log(),
            1 << 20,
            replicas,
            None,
            7,
        )
        .unwrap()
    }

    #[test]
    fn append_scan_and_window_metrics() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 10), rec(2, 20)])).unwrap();
        w.append(ShardId(1), RecordBatch::from_records(vec![rec(1, 30)])).unwrap();
        let hits = w.scan(ShardId(0), TenantId(1), TimeRange::all(), &[]).unwrap();
        assert_eq!(hits.len(), 1);
        let window = w.take_window();
        assert_eq!(window[&ShardId(0)].total, 2);
        assert_eq!(window[&ShardId(0)].per_tenant[&TenantId(1)], 1);
        assert_eq!(window[&ShardId(1)].total, 1);
        // Window resets after take.
        assert_eq!(w.take_window()[&ShardId(0)].total, 0);
    }

    #[test]
    fn unknown_shard_is_cluster_error() {
        let w = worker(1);
        let err = w.append(ShardId(9), RecordBatch::new()).unwrap_err();
        assert!(matches!(err, Error::Cluster(_)));
    }

    #[test]
    fn backpressure_on_full_rowstore() {
        let w = Worker::new(
            WorkerId(0),
            &[ShardId(0)],
            &TableSchema::request_log(),
            2000, // fits one batch, not many
            1,
            None,
            7,
        )
        .unwrap();
        let batch = RecordBatch::from_records((0..5).map(|i| rec(1, i)).collect());
        let mut hit_backpressure = false;
        for _ in 0..100 {
            match w.append(ShardId(0), batch.clone()) {
                Ok(()) => {}
                Err(Error::Backpressure(_)) => {
                    hit_backpressure = true;
                    break;
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(hit_backpressure);
        // Draining relieves the pressure.
        let drained = w.drain_for_build(0, true);
        assert!(!drained.is_empty());
        w.append(ShardId(0), batch).unwrap();
    }

    #[test]
    fn restore_unarchived_returns_rows_to_the_shard() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1), rec(2, 2)])).unwrap();
        let mut drained = w.drain_for_build(0, true);
        assert_eq!(drained.len(), 1);
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 0);
        // Upload "failed": the engine hands the rows back.
        let (shard, rows) = drained.pop().unwrap();
        w.restore_unarchived(shard, rows).unwrap();
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 2);
        let hits = w.scan(ShardId(0), TenantId(1), TimeRange::all(), &[]).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn ack_archived_is_clean_for_memory_backends() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1)])).unwrap();
        w.drain_for_build(0, true);
        w.ack_archived(ShardId(0)).unwrap();
    }

    #[test]
    fn raft_replicated_appends_apply() {
        let w = worker(3);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1), rec(1, 2)])).unwrap();
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 2);
        let hits = w.scan(ShardId(0), TenantId(1), TimeRange::all(), &[]).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn drain_for_build_respects_threshold() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1)])).unwrap();
        assert!(w.drain_for_build(usize::MAX, false).is_empty());
        let drained = w.drain_for_build(0, false);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, ShardId(0));
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 0);
    }

    #[test]
    fn drain_tenant_for_rebalance() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1), rec(2, 2)])).unwrap();
        let moved = w.drain_tenant(ShardId(0), TenantId(1)).unwrap();
        assert_eq!(moved.len(), 1);
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 1);
    }

    #[test]
    fn durable_worker_recovers_from_wal() {
        let dir = std::env::temp_dir().join(format!(
            "logstore-worker-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let w = Worker::new(
                WorkerId(0),
                &[ShardId(0)],
                &TableSchema::request_log(),
                1 << 20,
                1,
                Some(&dir),
                7,
            )
            .unwrap();
            w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1)])).unwrap();
        }
        let w = Worker::new(
            WorkerId(0),
            &[ShardId(0)],
            &TableSchema::request_log(),
            1 << 20,
            1,
            Some(&dir),
            7,
        )
        .unwrap();
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_payload_roundtrip() {
        let batch = RecordBatch::from_records(vec![rec(1, 5), rec(2, 6)]);
        let payload = encode_batch(&batch.records);
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded, batch.records);
    }
}
