//! Workers: shard ownership and the phase-one write path.
//!
//! A worker owns a set of shards. Each shard is a write-optimized row store
//! (optionally WAL-durable, optionally Raft-replicated) plus ingest
//! accounting that feeds the traffic monitor. The data builder drains
//! shards in the background (phase two, [`crate::databuilder`]).

use crate::hooks::{CrashHooks, CrashPoint};
use crate::metadata::{DrainId, MetadataStore};
/// Raft batch payloads share the WAL's codec (including its corruption
/// guards); re-exported for replica catch-up tooling and tests.
pub use logstore_codec::batch::decode_batch;
use logstore_codec::batch::encode_batch;
use logstore_raft::{InProcCluster, RaftConfig};
use logstore_sync::OrderedMutex;
use logstore_types::{
    ColumnPredicate, Error, LogRecord, RecordBatch, Result, ShardId, TableSchema, TenantId,
    TimeRange, WorkerId,
};
use logstore_wal::{
    DrainResolver, DrainSeq, GroupCommitWal, PendingDrain, RowStore, ShardStore, WalConfig,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Links durable shards to the metadata store's drain-commit table, so
/// WAL replay can tell committed (on-OSS) drain rows from lost ones.
#[derive(Clone)]
pub struct ArchiveCatalog {
    /// The cluster metadata store holding the drain-commit table.
    pub metadata: Arc<MetadataStore>,
    /// The uploader's chunk row cap (`max_rows_per_logblock`) — replay
    /// must re-chunk a drain exactly the way the uploader did.
    pub chunk_rows: usize,
}

/// Per-shard [`DrainResolver`] over the metadata store.
struct CatalogResolver {
    catalog: ArchiveCatalog,
    shard: ShardId,
}

impl DrainResolver for CatalogResolver {
    fn committed_chunks(&self, seq: DrainSeq) -> Option<u64> {
        self.catalog.metadata.drain_commit(DrainId { shard: self.shard, seq })
    }

    fn chunk_rows(&self) -> usize {
        self.catalog.chunk_rows
    }
}

/// Per-shard ingest counters for one monitoring window.
#[derive(Debug, Default, Clone)]
pub struct ShardWindow {
    /// Records ingested this window.
    pub total: u64,
    /// Per-tenant breakdown.
    pub per_tenant: HashMap<TenantId, u64>,
}

enum Backend {
    Mem(RowStore),
    Durable(ShardStore),
}

impl Backend {
    /// Applies a batch that is already durable (WAL lsn known) — or, for
    /// in-memory backends, simply inserts it. The fast path's under-lock
    /// half; the WAL append happened outside this lock.
    fn apply_appended(&mut self, batch: RecordBatch, wal_lsn: Option<logstore_wal::Lsn>) {
        match self {
            Backend::Mem(rows) => {
                for r in batch.records {
                    rows.insert(r);
                }
            }
            Backend::Durable(store) => {
                // The fast path always supplies the lsn for durable
                // shards; lsn 0 is never allocated, so confirming it is
                // inert if a caller ever omits one.
                store.apply_appended(batch, wal_lsn.unwrap_or(0));
            }
        }
    }

    fn scan(
        &self,
        tenant: TenantId,
        range: TimeRange,
        preds: &[ColumnPredicate],
    ) -> Vec<LogRecord> {
        match self {
            Backend::Mem(rows) => rows.scan(tenant, range, preds),
            Backend::Durable(store) => store.scan(tenant, range, preds),
        }
    }

    /// Streaming scan: visits matching rows in arrival order until the
    /// visitor returns `false` (early stop), cloning nothing.
    fn for_each_in(&self, tenant: TenantId, range: TimeRange, f: impl FnMut(&LogRecord) -> bool) {
        match self {
            Backend::Mem(rows) => rows.for_each_in(tenant, range, f),
            Backend::Durable(store) => store.row_store().for_each_in(tenant, range, f),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Backend::Mem(rows) => rows.bytes(),
            Backend::Durable(store) => store.buffered_bytes(),
        }
    }

    fn rows(&self) -> usize {
        match self {
            Backend::Mem(rows) => rows.row_count(),
            Backend::Durable(store) => store.buffered_rows(),
        }
    }

    /// First half of a drain under the shard lock: removes the rows and
    /// (on durable shards) opens the in-flight archive op. Durable drains
    /// return the pending intent still to be logged — the caller appends
    /// it durably *outside* this lock (group commit may block on an
    /// fsync) and rolls back via `restore` on failure. Memory drains
    /// complete immediately (`BegunDrain::Mem`).
    ///
    /// No checkpoint here: the WAL keeps covering the drained rows until
    /// the engine acks that they are durable on OSS (`ack_archived`).
    fn begin_drain_all(&mut self) -> Option<BegunDrain> {
        match self {
            Backend::Mem(rows) => {
                let drained = rows.drain_oldest(usize::MAX);
                (!drained.is_empty()).then_some(BegunDrain::Mem(drained))
            }
            Backend::Durable(store) => store
                .begin_drain_all(usize::MAX)
                .map(|pending| BegunDrain::Durable(store.wal_handle(), pending)),
        }
    }

    /// First half of a tenant drain (see [`Backend::begin_drain_all`]).
    fn begin_drain_tenant(&mut self, tenant: TenantId) -> Option<BegunDrain> {
        match self {
            Backend::Mem(rows) => {
                let drained = rows.drain_tenant(tenant);
                (!drained.is_empty()).then_some(BegunDrain::Mem(drained))
            }
            Backend::Durable(store) => store
                .begin_drain_tenant(tenant)
                .map(|pending| BegunDrain::Durable(store.wal_handle(), pending)),
        }
    }

    fn restore(&mut self, rows: Vec<LogRecord>) {
        match self {
            Backend::Mem(store) => {
                for r in rows {
                    store.insert(r);
                }
            }
            Backend::Durable(store) => store.restore_unarchived(rows),
        }
    }

    fn close_archive_op(&mut self) {
        match self {
            Backend::Mem(_) => {}
            Backend::Durable(store) => store.ack_archive_op(),
        }
    }

    fn truncate_quiescent(&mut self) -> Result<usize> {
        match self {
            Backend::Mem(_) => Ok(0),
            Backend::Durable(store) => store.truncate_if_quiescent(),
        }
    }

    fn counters(&self) -> Option<(u64, u64)> {
        match self {
            Backend::Mem(_) => None,
            Backend::Durable(store) => Some(store.counters()),
        }
    }

    fn tenants(&self) -> Vec<TenantId> {
        match self {
            Backend::Mem(rows) => rows.tenants(),
            Backend::Durable(store) => store.row_store().tenants(),
        }
    }
}

/// A drain begun under the shard lock, to be completed outside it.
enum BegunDrain {
    /// Memory backend: the drain is already complete.
    Mem(Vec<LogRecord>),
    /// Durable backend: the intent in `PendingDrain` must still be
    /// appended durably on the WAL handle, with no shard lock held.
    Durable(Arc<GroupCommitWal>, PendingDrain),
}

/// A logged drain: the intent's seq (`None` on memory backends) plus the
/// drained rows, ready for the archive pipeline.
type LoggedDrain = (Option<DrainSeq>, Vec<LogRecord>);

/// Logs a begun drain's intent (outside any lock) and produces the
/// `(seq, rows)` the archive pipeline consumes. On append failure the
/// drained rows come back with the error so the caller can re-lock and
/// restore them.
fn log_drain_intent(begun: BegunDrain) -> Result<LoggedDrain, (Error, Vec<LogRecord>)> {
    match begun {
        BegunDrain::Mem(rows) => Ok((None, rows)),
        BegunDrain::Durable(wal, pending) => match wal.append_durable(&pending.intent) {
            Ok(lsn) => {
                // Intents have no row-store apply; confirm immediately so
                // they never pin WAL truncation (the open archive op
                // blocks it for the whole drain window instead).
                wal.confirm_applied(lsn);
                Ok((Some(pending.seq), pending.rows))
            }
            Err(e) => Err((e, pending.rows)),
        },
    }
}

// One label per field across all shards: the worker never holds two
// shard locks — or two of backend/raft/window — at once (each is taken
// in its own scope), and the debug lock analysis enforces that.
struct ShardState {
    backend: OrderedMutex<Backend>,
    /// The durable shard's WAL, shared outside the backend lock so the
    /// ingest fast path stages/commits groups without serializing on the
    /// shard (`None` for in-memory backends).
    wal: Option<Arc<GroupCommitWal>>,
    raft: Option<OrderedMutex<InProcCluster>>,
    window: OrderedMutex<ShardWindow>,
}

/// One shard's drained rows: the shard, the WAL drain intent it logged
/// (None for in-memory backends), and the rows themselves.
pub type DrainedShard = (ShardId, Option<DrainSeq>, Vec<LogRecord>);

/// One worker node.
pub struct Worker {
    id: WorkerId,
    shards: HashMap<ShardId, ShardState>,
    schema: TableSchema,
    backpressure_bytes: usize,
    hooks: Arc<dyn CrashHooks>,
}

impl Worker {
    /// Creates a worker owning `shard_ids`. Durable shards (those with a
    /// `data_dir`) replay their WAL on open; with an [`ArchiveCatalog`]
    /// the replay reconciles drain intents against the drain-commit table
    /// so rows already on OSS are not resurrected. `hooks` injects
    /// simulated crash points ([`crate::hooks::noop_hooks`] in production).
    #[allow(clippy::too_many_arguments)] // construction-time wiring, called once per worker
    pub fn new(
        id: WorkerId,
        shard_ids: &[ShardId],
        schema: &TableSchema,
        backpressure_bytes: usize,
        raft_replicas: usize,
        data_dir: Option<&PathBuf>,
        wal_config: WalConfig,
        seed: u64,
        archive_catalog: Option<&ArchiveCatalog>,
        hooks: Arc<dyn CrashHooks>,
    ) -> Result<Self> {
        let mut shards = HashMap::new();
        for &shard in shard_ids {
            let backend = match data_dir {
                Some(dir) => {
                    let shard_dir = dir
                        .join(format!("worker-{}", id.raw()))
                        .join(format!("shard-{}", shard.raw()));
                    let store = match archive_catalog {
                        Some(catalog) => ShardStore::open_with(
                            shard_dir,
                            schema.clone(),
                            wal_config.clone(),
                            &CatalogResolver { catalog: catalog.clone(), shard },
                        )?,
                        None => ShardStore::open(shard_dir, schema.clone(), wal_config.clone())?,
                    };
                    Backend::Durable(store)
                }
                None => Backend::Mem(RowStore::new(schema.clone())),
            };
            let raft = if raft_replicas > 1 {
                let mut cluster = InProcCluster::new(
                    raft_replicas,
                    RaftConfig::default(),
                    seed ^ u64::from(shard.raw()),
                );
                cluster
                    .run_until_leader(500)
                    .ok_or_else(|| Error::Raft("shard group failed to elect".into()))?;
                Some(OrderedMutex::new("core.worker.raft", cluster))
            } else {
                None
            };
            let wal = match &backend {
                Backend::Durable(store) => Some(store.wal_handle()),
                Backend::Mem(_) => None,
            };
            shards.insert(
                shard,
                ShardState {
                    backend: OrderedMutex::new("core.worker.backend", backend),
                    wal,
                    raft,
                    window: OrderedMutex::new("core.worker.window", ShardWindow::default()),
                },
            );
        }
        Ok(Worker { id, shards, schema: schema.clone(), backpressure_bytes, hooks })
    }

    /// This worker's id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Shards owned by this worker.
    pub fn shard_ids(&self) -> Vec<ShardId> {
        let mut ids: Vec<ShardId> = self.shards.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn shard(&self, shard: ShardId) -> Result<&ShardState> {
        self.shards
            .get(&shard)
            .ok_or_else(|| Error::Cluster(format!("{shard} not on worker {}", self.id)))
    }

    /// Phase-one ingest of a batch into one shard — the lock-light fast
    /// path. Validation and encoding run with no locks held; the BFC
    /// admission check and the final row-store apply each take the shard
    /// lock only briefly; the (possibly fsyncing) WAL group append runs
    /// with *no* locks held, so concurrent producers coalesce into shared
    /// group commits instead of queueing on the shard.
    ///
    /// Replication overlaps local persistence: the batch is submitted to
    /// the Raft group (short `propose` critical section) *before* the WAL
    /// append, and the quorum wait happens after it — the ack requires
    /// the later of quorum and local-durable, not their sum.
    /// Consumes the batch — records move into the store, never cloned.
    pub fn append(&self, shard: ShardId, batch: RecordBatch) -> Result<()> {
        let state = self.shard(shard)?;
        // Validate + encode outside every lock (per-producer CPU work).
        for r in &batch.records {
            r.validate(&self.schema)?;
        }
        let wal_payload =
            state.wal.as_ref().map(|_| ShardStore::encode_batch_payload(&batch.records));
        // BFC admission under a short shard-lock scope.
        {
            let backend = state.backend.lock();
            if backend.bytes() + batch.approx_size() > self.backpressure_bytes {
                return Err(Error::Backpressure(format!(
                    "shard {shard} row store at {} bytes",
                    backend.bytes()
                )));
            }
        }
        // Submit to replication first: propose only (short raft lock),
        // capturing the log index to wait on after local persistence.
        let raft_index = match &state.raft {
            Some(raft) => Some(raft.lock().propose(encode_batch(&batch.records))?),
            None => None,
        };
        // Local WAL persistence with no locks held — producers staging
        // concurrently ride one group commit.
        let wal_lsn = match (&state.wal, wal_payload) {
            (Some(wal), Some(payload)) => Some(wal.append(&payload)?),
            _ => None,
        };
        // Now wait for quorum (the paper's sync_queue wait, §4.2): drive
        // the group until the proposed entry commits on the leader.
        if let (Some(raft), Some(index)) = (&state.raft, raft_index) {
            let mut cluster = raft.lock();
            let leader = cluster
                .any_leader()
                .ok_or_else(|| Error::Raft("shard group lost its leader".into()))?;
            let mut steps = 0;
            while cluster.node(leader).commit_index() < index {
                cluster.step();
                steps += 1;
                if steps > 1000 {
                    return Err(Error::Raft("replication stalled".into()));
                }
            }
        }
        // Window accounting happens only on success; tally before the
        // records move into the backend.
        let total = batch.len() as u64;
        let mut per_tenant: HashMap<TenantId, u64> = HashMap::new();
        for r in &batch.records {
            *per_tenant.entry(r.tenant_id).or_default() += 1;
        }
        state.backend.lock().apply_appended(batch, wal_lsn);
        let mut window = state.window.lock();
        window.total += total;
        for (tenant, n) in per_tenant {
            *window.per_tenant.entry(tenant).or_default() += n;
        }
        drop(window);
        // The batch is durable (WAL + row store) but the caller has not
        // seen Ok yet — the simulated-crash window where rows are
        // "in doubt": present after recovery, never acknowledged.
        self.hooks.reached(CrashPoint::AfterWalAppend);
        Ok(())
    }

    /// Scans one shard's real-time store.
    pub fn scan(
        &self,
        shard: ShardId,
        tenant: TenantId,
        range: TimeRange,
        preds: &[ColumnPredicate],
    ) -> Result<Vec<LogRecord>> {
        Ok(self.shard(shard)?.backend.lock().scan(tenant, range, preds))
    }

    /// Streams one shard's real-time rows for `tenant` within `range`
    /// through `f`, in arrival order, stopping early when `f` returns
    /// `false`. Runs under the shard lock but clones no records — the
    /// query layer's [`logstore_query::RowCollector`] aggregates or
    /// projects in place.
    pub fn for_each_record(
        &self,
        shard: ShardId,
        tenant: TenantId,
        range: TimeRange,
        f: impl FnMut(&LogRecord) -> bool,
    ) -> Result<()> {
        self.shard(shard)?.backend.lock().for_each_in(tenant, range, f);
        Ok(())
    }

    /// Buffered row-store bytes of one shard.
    pub fn buffered_bytes(&self, shard: ShardId) -> Result<usize> {
        Ok(self.shard(shard)?.backend.lock().bytes())
    }

    /// Buffered rows of one shard.
    pub fn buffered_rows(&self, shard: ShardId) -> Result<usize> {
        Ok(self.shard(shard)?.backend.lock().rows())
    }

    /// Tenants with buffered rows on one shard. On a durable shard right
    /// after open this is the set WAL replay resurrected — the input to
    /// recovery route restoration.
    pub fn buffered_tenants(&self, shard: ShardId) -> Result<Vec<TenantId>> {
        Ok(self.shard(shard)?.backend.lock().tenants())
    }

    /// Drains every shard whose buffer exceeds `flush_bytes` (or all when
    /// `force`), returning `(shard, drain seq, rows)` for the data builder
    /// (the seq is `Some` for durable shards, naming the WAL drain intent
    /// the shard logged). Every returned entry opens an in-flight archive
    /// op on its shard that the engine must close with exactly one
    /// [`Worker::ack_archived`] (upload succeeded) or
    /// [`Worker::restore_unarchived`] (upload failed) — WAL truncation
    /// stays blocked until all ops on a shard are closed.
    ///
    /// A shard whose drain intent fails to log is skipped (its rows are
    /// already back in the row store); the first such error is returned
    /// alongside the successful drains so the pass keeps going.
    pub fn drain_for_build(
        &self,
        flush_bytes: usize,
        force: bool,
    ) -> (Vec<DrainedShard>, Option<Error>) {
        let mut out = Vec::new();
        let mut first_error = None;
        for (&shard, state) in &self.shards {
            let begun = {
                let mut backend = state.backend.lock();
                if force || backend.bytes() >= flush_bytes {
                    backend.begin_drain_all()
                } else {
                    None
                }
            };
            let Some(begun) = begun else { continue };
            // The intent append (group commit; may fsync) runs with the
            // shard lock released so ingest keeps flowing during the drain.
            // The drained rows exist only in `begun` until the intent is
            // logged — the window the archive-op counter guards.
            logstore_sync::sync_point("core.worker.drain_window");
            match log_drain_intent(begun) {
                Ok((seq, rows)) => out.push((shard, seq, rows)),
                Err((e, rows)) => {
                    state.backend.lock().restore(rows);
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        out.sort_by_key(|(s, _, _)| *s);
        (out, first_error)
    }

    /// Drains one tenant from one shard (rebalance flush, §4.1.5). A
    /// non-empty drain (`Some`) opens an in-flight archive op; close it
    /// with [`Worker::ack_tenant_archived`] or
    /// [`Worker::restore_unarchived`].
    pub fn drain_tenant(
        &self,
        shard: ShardId,
        tenant: TenantId,
    ) -> Result<Option<(Option<DrainSeq>, Vec<LogRecord>)>> {
        let state = self.shard(shard)?;
        let Some(begun) = state.backend.lock().begin_drain_tenant(tenant) else {
            return Ok(None);
        };
        match log_drain_intent(begun) {
            Ok((seq, rows)) => Ok(Some((seq, rows))),
            Err((e, rows)) => {
                state.backend.lock().restore(rows);
                Err(e)
            }
        }
    }

    /// Puts drained rows that failed to archive back into the shard's
    /// store. The shard's WAL still covers them (no ack happened), so this
    /// restores queryability without re-logging anything.
    pub fn restore_unarchived(&self, shard: ShardId, rows: Vec<LogRecord>) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        self.shard(shard)?.backend.lock().restore(rows);
        Ok(())
    }

    /// The archive ack: called by the engine once drained rows are durable
    /// on OSS. Truncates the shard's fully-archived WAL prefix and compacts
    /// the replicated log. Checkpoint I/O errors propagate — the WAL keeps
    /// the extra segments (at-least-once replay), but the condition is
    /// loud instead of silently leaking disk.
    pub fn ack_archived(&self, shard: ShardId) -> Result<()> {
        let state = self.shard(shard)?;
        self.hooks.reached(CrashPoint::BeforeCheckpoint);
        state.backend.lock().close_archive_op();
        // A crash between the two lock scopes leaves the op closed but the
        // WAL untruncated — replay reconciles via the drain commit, and a
        // later quiescent pass truncates.
        self.hooks.reached(CrashPoint::BeforeTruncate);
        logstore_sync::sync_point("core.worker.ack_window");
        state.backend.lock().truncate_quiescent()?;
        self.checkpoint_raft(shard)
    }

    /// Acks a successful rebalance flush ([`Worker::drain_tenant`]): closes
    /// the tenant drain's in-flight archive op so WAL truncation is not
    /// blocked forever. Unlike [`Worker::ack_archived`] it does not compact
    /// the replicated log — the shard's other tenants are still only in the
    /// row store. Actual truncation happens only once the shard is
    /// quiescent (no other archive in flight, nothing buffered).
    pub fn ack_tenant_archived(&self, shard: ShardId) -> Result<()> {
        let state = self.shard(shard)?;
        self.hooks.reached(CrashPoint::BeforeCheckpoint);
        state.backend.lock().close_archive_op();
        self.hooks.reached(CrashPoint::BeforeTruncate);
        state.backend.lock().truncate_quiescent().map(|_| ())
    }

    /// Opportunistic WAL truncation: applies a truncation that an
    /// overlapping ack had to defer, once the shard is quiescent (no
    /// archive in flight, nothing buffered). Closes no archive op, so it
    /// can never strip WAL coverage from a drain still in flight. Forced
    /// build passes call this for shards that had nothing to drain.
    pub fn truncate_quiescent(&self, shard: ShardId) -> Result<usize> {
        self.shard(shard)?.backend.lock().truncate_quiescent()
    }

    /// Lifetime `(appended, archived)` record counters of a durable shard
    /// (`None` for in-memory backends). The accounting invariant —
    /// `buffered == appended − archived` — is what the simulation harness
    /// checks after every recovery.
    pub fn shard_counters(&self, shard: ShardId) -> Result<Option<(u64, u64)>> {
        Ok(self.shard(shard)?.backend.lock().counters())
    }

    /// After the drained rows are durable on OSS, compacts the shard's
    /// replicated log up to the applied point (the checkpoint task the
    /// paper's controller schedules). No-op for unreplicated shards.
    pub fn checkpoint_raft(&self, shard: ShardId) -> Result<()> {
        let state = self.shard(shard)?;
        let Some(raft) = &state.raft else { return Ok(()) };
        let mut cluster = raft.lock();
        let Some(leader) = cluster.any_leader() else { return Ok(()) };
        let applied = cluster.node(leader).commit_index();
        if applied > 0 {
            // The snapshot payload is the archive watermark; replicas that
            // fall behind rebuild their row store from OSS, not the log.
            cluster.node_mut(leader).compact(applied, applied.to_le_bytes().to_vec())?;
        }
        Ok(())
    }

    /// The replicated log's compaction point for `shard` (None when the
    /// shard is unreplicated). Test/observability hook.
    pub fn raft_snapshot_index(&self, shard: ShardId) -> Result<Option<u64>> {
        let state = self.shard(shard)?;
        Ok(state.raft.as_ref().map(|raft| {
            let cluster = raft.lock();
            match cluster.any_leader() {
                Some(leader) => cluster.node(leader).snapshot_index(),
                None => 0,
            }
        }))
    }

    /// Takes and resets this window's per-shard ingest counters.
    pub fn take_window(&self) -> HashMap<ShardId, ShardWindow> {
        self.shards
            .iter()
            .map(|(&shard, state)| (shard, std::mem::take(&mut *state.window.lock())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_types::{Timestamp, Value};

    fn rec(t: u64, ts: i64) -> LogRecord {
        LogRecord::new(
            TenantId(t),
            Timestamp(ts),
            vec![
                Value::from("ip"),
                Value::from("/a"),
                Value::I64(1),
                Value::Bool(false),
                Value::from("m"),
            ],
        )
    }

    fn worker(replicas: usize) -> Worker {
        Worker::new(
            WorkerId(0),
            &[ShardId(0), ShardId(1)],
            &TableSchema::request_log(),
            1 << 20,
            replicas,
            None,
            WalConfig::default(),
            7,
            None,
            crate::hooks::noop_hooks(),
        )
        .unwrap()
    }

    #[test]
    fn append_scan_and_window_metrics() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 10), rec(2, 20)])).unwrap();
        w.append(ShardId(1), RecordBatch::from_records(vec![rec(1, 30)])).unwrap();
        let hits = w.scan(ShardId(0), TenantId(1), TimeRange::all(), &[]).unwrap();
        assert_eq!(hits.len(), 1);
        let window = w.take_window();
        assert_eq!(window[&ShardId(0)].total, 2);
        assert_eq!(window[&ShardId(0)].per_tenant[&TenantId(1)], 1);
        assert_eq!(window[&ShardId(1)].total, 1);
        // Window resets after take.
        assert_eq!(w.take_window()[&ShardId(0)].total, 0);
    }

    #[test]
    fn unknown_shard_is_cluster_error() {
        let w = worker(1);
        let err = w.append(ShardId(9), RecordBatch::new()).unwrap_err();
        assert!(matches!(err, Error::Cluster(_)));
    }

    #[test]
    fn backpressure_on_full_rowstore() {
        let w = Worker::new(
            WorkerId(0),
            &[ShardId(0)],
            &TableSchema::request_log(),
            2000, // fits one batch, not many
            1,
            None,
            WalConfig::default(),
            7,
            None,
            crate::hooks::noop_hooks(),
        )
        .unwrap();
        let batch = RecordBatch::from_records((0..5).map(|i| rec(1, i)).collect());
        let mut hit_backpressure = false;
        for _ in 0..100 {
            match w.append(ShardId(0), batch.clone()) {
                Ok(()) => {}
                Err(Error::Backpressure(_)) => {
                    hit_backpressure = true;
                    break;
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(hit_backpressure);
        // Draining relieves the pressure.
        let (drained, err) = w.drain_for_build(0, true);
        assert!(err.is_none());
        assert!(!drained.is_empty());
        w.append(ShardId(0), batch).unwrap();
    }

    #[test]
    fn restore_unarchived_returns_rows_to_the_shard() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1), rec(2, 2)])).unwrap();
        let (mut drained, err) = w.drain_for_build(0, true);
        assert!(err.is_none());
        assert_eq!(drained.len(), 1);
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 0);
        // Upload "failed": the engine hands the rows back.
        let (shard, _seq, rows) = drained.pop().unwrap();
        w.restore_unarchived(shard, rows).unwrap();
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 2);
        let hits = w.scan(ShardId(0), TenantId(1), TimeRange::all(), &[]).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn ack_archived_is_clean_for_memory_backends() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1)])).unwrap();
        w.drain_for_build(0, true);
        w.ack_archived(ShardId(0)).unwrap();
    }

    #[test]
    fn raft_replicated_appends_apply() {
        let w = worker(3);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1), rec(1, 2)])).unwrap();
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 2);
        let hits = w.scan(ShardId(0), TenantId(1), TimeRange::all(), &[]).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn drain_for_build_respects_threshold() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1)])).unwrap();
        assert!(w.drain_for_build(usize::MAX, false).0.is_empty());
        let (drained, err) = w.drain_for_build(0, false);
        assert!(err.is_none());
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, ShardId(0));
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 0);
    }

    #[test]
    fn drain_tenant_for_rebalance() {
        let w = worker(1);
        w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1), rec(2, 2)])).unwrap();
        let (_seq, moved) = w.drain_tenant(ShardId(0), TenantId(1)).unwrap().unwrap();
        assert_eq!(moved.len(), 1);
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 1);
        assert!(w.drain_tenant(ShardId(0), TenantId(1)).unwrap().is_none());
    }

    #[test]
    fn durable_worker_recovers_from_wal() {
        let dir = std::env::temp_dir().join(format!(
            "logstore-worker-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let w = Worker::new(
                WorkerId(0),
                &[ShardId(0)],
                &TableSchema::request_log(),
                1 << 20,
                1,
                Some(&dir),
                WalConfig::default(),
                7,
                None,
                crate::hooks::noop_hooks(),
            )
            .unwrap();
            w.append(ShardId(0), RecordBatch::from_records(vec![rec(1, 1)])).unwrap();
        }
        let w = Worker::new(
            WorkerId(0),
            &[ShardId(0)],
            &TableSchema::request_log(),
            1 << 20,
            1,
            Some(&dir),
            WalConfig::default(),
            7,
            None,
            crate::hooks::noop_hooks(),
        )
        .unwrap();
        assert_eq!(w.buffered_rows(ShardId(0)).unwrap(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_payload_roundtrip() {
        let batch = RecordBatch::from_records(vec![rec(1, 5), rec(2, 6)]);
        let payload = encode_batch(&batch.records);
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded, batch.records);
    }
}
