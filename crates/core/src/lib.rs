//! The LogStore engine: a cluster-in-a-box implementation of the paper's
//! architecture (Fig 3).
//!
//! One [`engine::LogStore`] instance wires together:
//!
//! * **Workers** ([`worker`]) — shards with the two-phase write path:
//!   a write-optimized row store (phase one, optionally Raft-replicated and
//!   WAL-durable) drained by the **data builder** ([`databuilder`]) into
//!   per-tenant columnar LogBlocks uploaded to (simulated) OSS (phase two).
//! * **Brokers** ([`broker`]) — SQL parsing, weighted routing of writes,
//!   scatter/gather of reads over the real-time stores and the LogBlock
//!   map, with data skipping, multi-level caching and parallel prefetch.
//! * **The controller** ([`controller`]) — metadata/LogBlock-map
//!   management ([`metadata`]), the global traffic-control loop
//!   (max-flow/greedy balancers from `logstore-flow`), and data expiration.
//!
//! The cluster runs inside one process: workers are data structures, not
//! machines, which is exactly what the paper's scheduling-quality and
//! query-optimization experiments need (they measure algorithms, not
//! network stacks). Substitutions are documented in `DESIGN.md`.

#![forbid(unsafe_code)]

pub mod broker;
pub mod compactor;
pub mod config;
pub mod controller;
pub mod databuilder;
pub mod engine;
pub mod executor;
pub mod hooks;
pub mod metadata;
pub mod worker;

pub use compactor::{CompactionConfig, CompactionReport, CompactionRun, GcReport};
pub use config::{ClusterConfig, QueryOptions};
pub use engine::{ArchiveStats, IngestReport, LogStore, OpenParts, Store};
pub use executor::QueryPool;
pub use hooks::{noop_hooks, CrashHooks, CrashPoint, NoopHooks, SimCrash};
pub use metadata::{BuildGuard, DrainId, LogBlockEntry, MetadataStore, TenantInfo};
pub use worker::ArchiveCatalog;
