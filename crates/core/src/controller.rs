//! The replicated cluster controller and its message-passing control plane.
//!
//! Earlier revisions kept the controller as an in-process singleton called
//! by direct method invocation — controller death and network partitions
//! were scenarios the architecture literally could not express. This
//! module replaces that with the paper's actual shape (LogStore keeps its
//! control plane on a replicated coordination service):
//!
//! * **Explicit messages.** Brokers, workers and controller replicas talk
//!   through typed request/response envelopes ([`CtrlMsg`]) over a
//!   simulated network (`logstore-net`) with seeded drop / duplication /
//!   reorder / partition faults. Every facade call below is an RPC: the
//!   client sends a request, retransmits on silence, follows `NotLeader`
//!   redirects, and replicas deduplicate by request id so redelivery is
//!   harmless.
//! * **A Raft-replicated state machine.** Route tables, topology and
//!   rebalance decisions live in [`ControlState`] (`logstore-flow`),
//!   mutated only by [`CtrlCmd`]s committed through the `logstore-raft`
//!   log. The balancer — whose `HashMap` iteration is not deterministic —
//!   runs only on the leader, which proposes the *concrete* route table it
//!   produced (`CommitRebalance`): replicas apply decisions, never
//!   recompute them. Any replica serves linearizable reads after a commit
//!   barrier, and leader failover is an ordinary Raft election.
//! * **Snapshot catch-up.** The leader periodically compacts its log at
//!   the commit index with `ControlState::encode()` as the snapshot, so a
//!   lagging or freshly-healed replica restores `decode(snapshot)` and
//!   replays only the suffix.
//!
//! Client-side, brokers keep a per-tenant route cache keyed on the state's
//! `epoch`, which bumps only on route-*invalidating* commands (rebalance,
//! vacate) — the ingest hot path picks shards locally and pays an RPC only
//! on cache miss.
//!
//! Lock order (enforced by the `logstore-sync` analysis in debug builds):
//! `core.controller.cache` → `core.controller.plane`. The cache lock may
//! be held while taking the plane on a miss; never the reverse.

use crate::config::{BalancerKind, ClusterConfig};
use crate::metadata::MetadataStore;
use crate::worker::{ShardWindow, Worker};
use logstore_flow::balancer::{Balancer, GreedyBalancer, MaxFlowBalancer};
use logstore_flow::ctrl::{pick_routes, ControlState, CtrlCmd};
use logstore_flow::monitor::detect_hotspots;
use logstore_flow::sim::ClusterTopology;
use logstore_flow::{ControlAction, FlowControlConfig, TrafficSnapshot};
use logstore_net::{NetFaults, SimNet};
use logstore_oss::ObjectStore;
use logstore_raft::{InProcCluster, RaftConfig, Role};
use logstore_sync::OrderedMutex;
use logstore_types::{Error, NodeId, Result, ShardId, TenantId, Timestamp, WorkerId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A control-plane RPC request (client → replica).
#[derive(Debug, Clone)]
pub enum CtrlRequest {
    /// Routes for one tenant, lazily placing it on its ring home shard.
    Route {
        /// The tenant to route.
        tenant: TenantId,
    },
    /// The shards a read for `tenant` must fan out to.
    ReadShards {
        /// The tenant being queried.
        tenant: TenantId,
    },
    /// Registers a worker and its shards (idempotent in the state machine).
    RegisterWorker {
        /// The worker joining the cluster.
        worker: WorkerId,
        /// `(shard, capacity)` pairs it hosts.
        shards: Vec<(ShardId, u64)>,
    },
    /// Reinstalls recovered routes (equal weights) after a WAL replay.
    RestoreRoutes {
        /// The recovered tenant.
        tenant: TenantId,
        /// Shards holding its replayed rows.
        shards: Vec<ShardId>,
    },
    /// One control tick over the collected ingest windows.
    Tick {
        /// Per-worker, per-shard ingest windows.
        windows: HashMap<WorkerId, HashMap<ShardId, ShardWindow>>,
    },
    /// Acknowledges that a vacated route's rows were flushed to OSS.
    VacateDone {
        /// The vacated tenant.
        tenant: TenantId,
        /// The shard it vacated.
        shard: ShardId,
    },
    /// Vacated edges still awaiting their flush acknowledgement.
    Vacated,
    /// Total route-edge count (Fig 12(c)).
    RouteCount,
    /// The registered topology.
    Topology,
    /// The replica's encoded state (convergence assertions in tests).
    State,
}

/// A control-plane RPC response (replica → client).
#[derive(Debug, Clone)]
pub enum CtrlResponse {
    /// The tenant's routes. `routed` is false for the unplaced ring
    /// fallback (which must not be cached — lazy placement may follow).
    Routes {
        /// Normalized `(shard, weight)` pairs.
        routes: Vec<(ShardId, f64)>,
        /// True when the state machine holds explicit routes.
        routed: bool,
        /// State epoch at evaluation (cache key).
        epoch: u64,
    },
    /// Read fan-out shards.
    Shards {
        /// Sorted deduped shard set.
        shards: Vec<ShardId>,
        /// True when the tenant has explicit routes.
        routed: bool,
        /// State epoch at evaluation.
        epoch: u64,
    },
    /// Mutation acknowledged (committed by quorum).
    Ack {
        /// State epoch at evaluation.
        epoch: u64,
    },
    /// Control tick outcome.
    TickDone {
        /// What the tick decided.
        action: ControlAction,
        /// State epoch after the tick.
        epoch: u64,
    },
    /// Pending vacated edges.
    VacatedPairs {
        /// `(tenant, shard)` pairs, sorted.
        pairs: Vec<(TenantId, ShardId)>,
        /// State epoch at evaluation.
        epoch: u64,
    },
    /// Route-edge count.
    Count {
        /// The count.
        n: usize,
    },
    /// Registered topology.
    TopologySnapshot {
        /// Shards, workers, capacities, placement.
        topology: ClusterTopology,
    },
    /// Encoded replica state.
    StateBytes {
        /// `ControlState::encode()` output.
        bytes: Vec<u8>,
    },
    /// This replica is not the leader; retry there.
    NotLeader {
        /// The replica it believes is leading, if known.
        hint: Option<u32>,
    },
    /// The request failed terminally.
    Failed {
        /// Why.
        error: String,
    },
}

/// One message on the simulated control-plane network.
#[derive(Debug, Clone)]
pub enum CtrlMsg {
    /// Client request to a controller replica.
    Request {
        /// Client-unique request id (dedup key).
        id: u64,
        /// The request.
        req: CtrlRequest,
    },
    /// Replica response to the client.
    Response {
        /// Echoed request id.
        id: u64,
        /// The response.
        resp: CtrlResponse,
    },
    /// Fetch a worker's ingest window (controller → worker).
    WindowFetch {
        /// Request id (the worker caches its reply by id, because taking
        /// a window is destructive and fetches may be redelivered).
        id: u64,
    },
    /// A worker's ingest window (worker → controller).
    WindowData {
        /// Echoed request id.
        id: u64,
        /// The per-shard window.
        windows: HashMap<ShardId, ShardWindow>,
    },
}

/// Retransmit the in-flight request every this many net steps.
const RETX_INTERVAL: usize = 30;
/// Give up an RPC after this many net steps (covers several elections).
const RPC_BUDGET: usize = 6000;
/// Per-replica dedup cache size (completed request ids).
const DEDUP_CAP: usize = 256;
/// Leader log compaction threshold, in committed entries past the last
/// snapshot.
const COMPACT_EVERY: u64 = 64;

/// A read or proposal waiting for its commit barrier.
struct PendingReply {
    id: u64,
    from: u32,
    /// Fires once the replica's commit index reaches this.
    wait_index: u64,
    req: CtrlRequest,
    /// Tick action decided at serve time (the proposal carries the plan).
    action: Option<ControlAction>,
}

/// One replica's state machine plus its serving bookkeeping.
struct ReplicaSm {
    state: ControlState,
    /// Entries of the harness's applied log already folded into `state`.
    cursor: usize,
    /// Last snapshot index installed from a leader.
    installed_idx: u64,
    completed: HashMap<u64, CtrlResponse>,
    completed_order: VecDeque<u64>,
    pending: Vec<PendingReply>,
}

impl ReplicaSm {
    fn new() -> Self {
        ReplicaSm {
            state: ControlState::new(),
            cursor: 0,
            installed_idx: 0,
            completed: HashMap::new(),
            completed_order: VecDeque::new(),
            pending: Vec::new(),
        }
    }

    fn complete(&mut self, id: u64, resp: CtrlResponse) {
        if self.completed.insert(id, resp).is_none() {
            self.completed_order.push_back(id);
            while self.completed_order.len() > DEDUP_CAP {
                if let Some(old) = self.completed_order.pop_front() {
                    self.completed.remove(&old);
                }
            }
        }
    }
}

/// A worker's endpoint on the control-plane network.
struct WorkerEndpoint {
    worker: Arc<Worker>,
    /// Window responses by request id: `take_window` is destructive, so a
    /// redelivered fetch must replay the cached reply, not take again.
    served: HashMap<u64, HashMap<ShardId, ShardWindow>>,
    served_order: VecDeque<u64>,
}

/// The control plane: the Raft group, one state machine per replica, the
/// simulated network, and the attached worker endpoints.
struct ControlPlane {
    raft: InProcCluster,
    replicas: usize,
    sms: Vec<ReplicaSm>,
    net: SimNet<CtrlMsg>,
    /// Worker endpoints keyed by raw worker id.
    workers: BTreeMap<u32, WorkerEndpoint>,
    /// The currently-killed replica, if any (at most one at a time).
    killed: Option<u32>,
    /// Where the client sends first.
    leader_hint: u32,
    next_req: u64,
    balancer: Box<dyn Balancer>,
    flow: FlowControlConfig,
    /// Kill the leader right after the next rebalancing tick responds.
    arm_kill: bool,
}

impl ControlPlane {
    fn client_addr(&self) -> u32 {
        self.replicas as u32
    }

    fn worker_addr(&self, worker: u32) -> u32 {
        self.replicas as u32 + 1 + worker
    }

    fn next_live(&self, from: u32) -> u32 {
        let n = self.replicas as u32;
        let mut t = (from + 1) % n;
        while self.killed == Some(t) {
            t = (t + 1) % n;
        }
        t
    }

    /// One network tick: deliver envelopes, serve replicas and workers,
    /// step Raft, apply commits, fire pending replies, maybe compact.
    /// Returns the messages delivered to the client this tick.
    fn pump(&mut self) -> Vec<CtrlMsg> {
        // Preemption point for schedule exploration: each delivered batch
        // (and the dedup decisions inside it) is one atomic step.
        logstore_sync::sync_point("core.controller.pump");
        let mut to_client = Vec::new();
        for env in self.net.step() {
            if (env.to as usize) < self.replicas {
                if self.killed == Some(env.to) {
                    continue; // a dead replica's inbox goes nowhere
                }
                self.serve_replica(env.to as usize, env.from, env.msg);
            } else if env.to == self.client_addr() {
                to_client.push(env.msg);
            } else {
                self.serve_worker(env.to, env.from, env.msg);
            }
        }
        self.raft.step();
        self.apply_committed();
        self.flush_pending();
        self.maybe_compact();
        to_client
    }

    /// Serves one request at replica `i`: dedup, leadership check, then
    /// either a commit-barrier read or a proposal through the log.
    fn serve_replica(&mut self, i: usize, from: u32, msg: CtrlMsg) {
        let CtrlMsg::Request { id, req } = msg else { return };
        if let Some(resp) = self.sms[i].completed.get(&id).cloned() {
            self.respond(i, from, id, resp);
            return;
        }
        if self.sms[i].pending.iter().any(|p| p.id == id) {
            return; // duplicate of an in-flight request
        }
        let node_id = NodeId(i as u32);
        if self.raft.node(node_id).role() != Role::Leader {
            let hint = self.raft.any_leader().map(NodeId::raw);
            self.respond(i, from, id, CtrlResponse::NotLeader { hint });
            return;
        }
        // Mutations that are already satisfied degrade to barrier reads —
        // that is what makes redelivered requests harmless.
        let mut action = None;
        let proposal: Option<CtrlCmd> = match &req {
            CtrlRequest::Route { tenant } => {
                let sm = &self.sms[i].state;
                if sm.is_routed(*tenant) {
                    None
                } else {
                    match sm.home(*tenant) {
                        Some(home) => {
                            Some(CtrlCmd::SetRoute { tenant: *tenant, routes: vec![(home, 1.0)] })
                        }
                        None => {
                            let resp =
                                CtrlResponse::Failed { error: "no shards in ring".to_string() };
                            self.sms[i].complete(id, resp.clone());
                            self.respond(i, from, id, resp);
                            return;
                        }
                    }
                }
            }
            CtrlRequest::RegisterWorker { worker, shards } => {
                // The state machine is idempotent anyway; skipping the
                // proposal for an identical re-registration keeps the log
                // free of no-op entries.
                let mut probe = self.sms[i].state.clone();
                let cmd = CtrlCmd::RegisterWorker { worker: *worker, shards: shards.clone() };
                probe.apply(&cmd).then_some(cmd)
            }
            CtrlRequest::RestoreRoutes { tenant, shards } => {
                if self.sms[i].state.is_routed(*tenant) || shards.is_empty() {
                    None
                } else {
                    Some(CtrlCmd::SetRoute {
                        tenant: *tenant,
                        routes: shards.iter().map(|&s| (s, 1.0)).collect(),
                    })
                }
            }
            CtrlRequest::Tick { windows } => {
                let (a, proposal) =
                    plan_tick(&self.sms[i].state, windows, &self.flow, self.balancer.as_ref());
                action = Some(a);
                proposal
            }
            CtrlRequest::VacateDone { tenant, shard } => {
                let pending = self.sms[i].state.pending_vacated().contains(&(*tenant, *shard));
                pending.then_some(CtrlCmd::VacateRoute { tenant: *tenant, shard: *shard })
            }
            CtrlRequest::ReadShards { .. }
            | CtrlRequest::Vacated
            | CtrlRequest::RouteCount
            | CtrlRequest::Topology
            | CtrlRequest::State => None,
        };
        let wait_index = match proposal {
            Some(cmd) => match self.raft.node_mut(node_id).propose(cmd.encode()) {
                Ok(index) => index,
                Err(e) => {
                    self.respond(i, from, id, CtrlResponse::Failed { error: e.to_string() });
                    return;
                }
            },
            // Linearizable read: all entries present at receipt must commit
            // first (the election no-op barrier makes this live for a fresh
            // leader).
            None => self.raft.node(node_id).log_len(),
        };
        self.sms[i].pending.push(PendingReply { id, from, wait_index, req, action });
    }

    /// Serves a worker endpoint: window fetches with replay-by-id.
    fn serve_worker(&mut self, to: u32, from: u32, msg: CtrlMsg) {
        let CtrlMsg::WindowFetch { id } = msg else { return };
        let Some(worker) = to.checked_sub(self.replicas as u32 + 1) else { return };
        let Some(ep) = self.workers.get_mut(&worker) else { return };
        let windows = match ep.served.get(&id) {
            Some(cached) => cached.clone(),
            None => {
                let fresh = ep.worker.take_window();
                ep.served.insert(id, fresh.clone());
                ep.served_order.push_back(id);
                while ep.served_order.len() > DEDUP_CAP {
                    if let Some(old) = ep.served_order.pop_front() {
                        ep.served.remove(&old);
                    }
                }
                fresh
            }
        };
        self.net.send(to, from, CtrlMsg::WindowData { id, windows });
    }

    fn respond(&mut self, i: usize, to: u32, id: u64, resp: CtrlResponse) {
        self.net.send(i as u32, to, CtrlMsg::Response { id, resp });
    }

    /// Folds newly-committed log entries (and installed snapshots) into
    /// each replica's state machine.
    fn apply_committed(&mut self) {
        for i in 0..self.replicas {
            let node_id = NodeId(i as u32);
            if let Some((idx, data)) = self.raft.installed_snapshot(node_id) {
                if *idx != self.sms[i].installed_idx {
                    let idx = *idx;
                    if let Ok(state) = ControlState::decode(data) {
                        self.sms[i].state = state;
                    }
                    self.sms[i].installed_idx = idx;
                }
            }
            let applied = self.raft.applied(node_id);
            while self.sms[i].cursor < applied.len() {
                let payload = &applied[self.sms[i].cursor];
                if let Ok(cmd) = CtrlCmd::decode(payload) {
                    self.sms[i].state.apply(&cmd);
                }
                self.sms[i].cursor += 1;
            }
        }
    }

    /// Fires pending replies whose barrier committed; bounces the pending
    /// queue of any replica that lost leadership.
    fn flush_pending(&mut self) {
        for i in 0..self.replicas {
            if self.sms[i].pending.is_empty() || self.killed == Some(i as u32) {
                continue;
            }
            let node_id = NodeId(i as u32);
            if self.raft.node(node_id).role() != Role::Leader {
                let hint = self.raft.any_leader().map(NodeId::raw);
                for p in std::mem::take(&mut self.sms[i].pending) {
                    self.respond(i, p.from, p.id, CtrlResponse::NotLeader { hint });
                }
                continue;
            }
            let commit = self.raft.node(node_id).commit_index();
            let mut still_waiting = Vec::new();
            for p in std::mem::take(&mut self.sms[i].pending) {
                if p.wait_index > commit {
                    still_waiting.push(p);
                    continue;
                }
                let resp = self.evaluate(i, &p);
                self.sms[i].complete(p.id, resp.clone());
                self.respond(i, p.from, p.id, resp);
            }
            self.sms[i].pending = still_waiting;
        }
    }

    /// Evaluates a barrier-cleared request against replica `i`'s state.
    fn evaluate(&self, i: usize, p: &PendingReply) -> CtrlResponse {
        let sm = &self.sms[i].state;
        let epoch = sm.epoch();
        match &p.req {
            CtrlRequest::Route { tenant } => match sm.routes(*tenant) {
                Some(routes) => {
                    CtrlResponse::Routes { routes: routes.to_vec(), routed: true, epoch }
                }
                None => match sm.home(*tenant) {
                    Some(home) => {
                        CtrlResponse::Routes { routes: vec![(home, 1.0)], routed: false, epoch }
                    }
                    None => CtrlResponse::Failed { error: "no shards in ring".to_string() },
                },
            },
            CtrlRequest::ReadShards { tenant } => CtrlResponse::Shards {
                shards: sm.read_shards(*tenant),
                routed: sm.is_routed(*tenant),
                epoch,
            },
            CtrlRequest::RegisterWorker { .. }
            | CtrlRequest::RestoreRoutes { .. }
            | CtrlRequest::VacateDone { .. } => CtrlResponse::Ack { epoch },
            CtrlRequest::Tick { .. } => CtrlResponse::TickDone {
                action: p.action.clone().unwrap_or(ControlAction::None),
                epoch,
            },
            CtrlRequest::Vacated => {
                CtrlResponse::VacatedPairs { pairs: sm.pending_vacated(), epoch }
            }
            CtrlRequest::RouteCount => CtrlResponse::Count { n: sm.route_count() },
            CtrlRequest::Topology => CtrlResponse::TopologySnapshot { topology: sm.topology() },
            CtrlRequest::State => CtrlResponse::StateBytes { bytes: sm.encode() },
        }
    }

    /// Leader-side log compaction through Raft's snapshot hook: encode the
    /// applied state at the commit index, so healed laggards catch up by
    /// snapshot + suffix instead of full replay.
    fn maybe_compact(&mut self) {
        let Some(leader) = self.raft.sole_leader() else { return };
        if self.killed == Some(leader.raw()) {
            return;
        }
        let node = self.raft.node(leader);
        let commit = node.commit_index();
        if commit < node.snapshot_index() + COMPACT_EVERY {
            return;
        }
        let data = self.sms[leader.raw() as usize].state.encode();
        let _ = self.raft.node_mut(leader).compact(commit, data);
    }

    /// One client RPC: send, retransmit on silence, follow `NotLeader`
    /// redirects, and return the first non-redirect response.
    fn rpc(&mut self, req: CtrlRequest) -> Result<CtrlResponse> {
        let id = self.next_req;
        self.next_req += 1;
        let client = self.client_addr();
        let mut target = self.leader_hint;
        if self.killed == Some(target) {
            target = self.next_live(target);
        }
        let mut since_send = RETX_INTERVAL; // send immediately
        for _ in 0..RPC_BUDGET {
            if since_send >= RETX_INTERVAL {
                since_send = 0;
                if self.killed == Some(target) {
                    target = self.next_live(target);
                }
                self.net.send(client, target, CtrlMsg::Request { id, req: req.clone() });
            }
            since_send += 1;
            for msg in self.pump() {
                let CtrlMsg::Response { id: rid, resp } = msg else { continue };
                if rid != id {
                    continue; // a late response to an older request
                }
                match resp {
                    CtrlResponse::NotLeader { hint } => {
                        let next = hint
                            .filter(|&h| (h as usize) < self.replicas && self.killed != Some(h))
                            .unwrap_or_else(|| self.next_live(target));
                        target = if next == target { self.next_live(target) } else { next };
                        since_send = RETX_INTERVAL; // redirect: resend now
                    }
                    CtrlResponse::Failed { error } => return Err(Error::Cluster(error)),
                    other => {
                        self.leader_hint = target;
                        return Ok(other);
                    }
                }
            }
        }
        Err(Error::Cluster(format!("control plane unreachable (request {id} timed out)")))
    }

    /// Fetches every attached worker's ingest window over the network.
    fn fetch_windows(&mut self) -> Result<HashMap<WorkerId, HashMap<ShardId, ShardWindow>>> {
        let mut out = HashMap::new();
        let targets: Vec<u32> = self.workers.keys().copied().collect();
        let client = self.client_addr();
        for w in targets {
            let id = self.next_req;
            self.next_req += 1;
            let addr = self.worker_addr(w);
            let mut since_send = RETX_INTERVAL;
            let mut got = None;
            'wait: for _ in 0..RPC_BUDGET {
                if since_send >= RETX_INTERVAL {
                    since_send = 0;
                    self.net.send(client, addr, CtrlMsg::WindowFetch { id });
                }
                since_send += 1;
                for msg in self.pump() {
                    let CtrlMsg::WindowData { id: rid, windows } = msg else { continue };
                    if rid == id {
                        got = Some(windows);
                        break 'wait;
                    }
                }
            }
            match got {
                Some(windows) => {
                    out.insert(WorkerId(w), windows);
                }
                None => return Err(Error::Cluster(format!("worker-{w} window fetch timed out"))),
            }
        }
        Ok(out)
    }

    /// Kills the current leader (isolates its Raft node and blackholes its
    /// inbox). At most one replica is down at a time: a pending kill heals
    /// first. No-op below 3 replicas — there would be no quorum left.
    fn kill_leader(&mut self) -> Option<u32> {
        if self.replicas < 3 {
            return None;
        }
        let leader = self.raft.any_leader()?;
        if self.killed == Some(leader.raw()) {
            return None;
        }
        if self.killed.take().is_some() {
            self.raft.heal();
        }
        self.raft.isolate(leader);
        self.killed = Some(leader.raw());
        Some(leader.raw())
    }

    fn heal(&mut self) {
        self.raft.heal();
        self.killed = None;
    }

    /// Pumps until every live replica converged on one commit index under
    /// a sole leader (test/assertion support).
    fn settle(&mut self) {
        for _ in 0..RPC_BUDGET {
            let _ = self.pump();
            if self.raft.sole_leader().is_none() {
                continue;
            }
            let live: Vec<u64> = (0..self.replicas)
                .filter(|&i| self.killed != Some(i as u32))
                .map(|i| self.raft.node(NodeId(i as u32)).commit_index())
                .collect();
            if self.net.idle() && live.windows(2).all(|w| w[0] == w[1]) {
                return;
            }
        }
    }
}

/// Computes one control tick on the leader: hotspot detection, then either
/// nothing, a scale-out request, or a concrete rebalancing plan to propose.
fn plan_tick(
    state: &ControlState,
    windows: &HashMap<WorkerId, HashMap<ShardId, ShardWindow>>,
    flow: &FlowControlConfig,
    balancer: &dyn Balancer,
) -> (ControlAction, Option<CtrlCmd>) {
    let snapshot = snapshot_from_windows(state, windows);
    let hotspots = detect_hotspots(&snapshot, flow.alpha);
    if hotspots.is_empty() {
        return (ControlAction::None, None);
    }
    let demand = snapshot.total_traffic();
    let usable = (snapshot.total_worker_capacity() as f64 * flow.alpha) as u64;
    if demand > usable {
        return (ControlAction::ScaleCluster { demand, usable_capacity: usable }, None);
    }
    let current = state.routing_table();
    let routes_before = current.route_count();
    match balancer.rebalance(&snapshot, &current, flow) {
        Ok(plan) => {
            let routes_after = plan.route_count();
            let mut assignments: Vec<(TenantId, Vec<(ShardId, f64)>)> = plan
                .iter()
                .map(|(t, rs)| (t, rs.iter().map(|r| (r.shard, r.weight)).collect()))
                .collect();
            // The balancer iterates HashMaps; the proposed payload must not.
            assignments.sort_by_key(|(t, _)| *t);
            (
                ControlAction::Rebalanced { routes_before, routes_after },
                Some(CtrlCmd::CommitRebalance { assignments }),
            )
        }
        // A planner failure leaves the current table in force.
        Err(_) => (ControlAction::None, None),
    }
}

/// Assembles the monitor's snapshot from the replicated topology and the
/// collected ingest windows.
fn snapshot_from_windows(
    state: &ControlState,
    windows: &HashMap<WorkerId, HashMap<ShardId, ShardWindow>>,
) -> TrafficSnapshot {
    let topology = state.topology();
    let mut snapshot = TrafficSnapshot {
        shard_capacity: topology.shard_capacity,
        worker_capacity: topology.worker_capacity,
        shard_to_worker: topology.shard_to_worker,
        ..Default::default()
    };
    for (&worker, shards) in windows {
        for (&shard, window) in shards {
            *snapshot.shard_load.entry(shard).or_default() += window.total;
            *snapshot.worker_load.entry(worker).or_default() += window.total;
            for (&tenant, &count) in &window.per_tenant {
                *snapshot.tenant_traffic.entry(tenant).or_default() += count;
                snapshot.shard_tenants.entry(shard).or_default().push((tenant, count));
            }
        }
    }
    snapshot
}

/// The broker-side route cache, keyed on the control state's epoch.
#[derive(Default)]
struct RouteCache {
    epoch: u64,
    routes: HashMap<TenantId, Vec<(ShardId, f64)>>,
    read_shards: HashMap<TenantId, Vec<ShardId>>,
}

impl RouteCache {
    /// Adopts a response's epoch; a newer epoch invalidates everything
    /// (some rebalance or vacate has changed routes under us).
    fn observe_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.routes.clear();
            self.read_shards.clear();
            self.epoch = epoch;
        }
    }

    fn invalidate(&mut self, tenant: TenantId) {
        self.routes.remove(&tenant);
        self.read_shards.remove(&tenant);
    }
}

/// The engine-side controller facade: every method is a client RPC into
/// the replicated control plane (plus a route cache on the hot paths).
pub struct ClusterController {
    metadata: Arc<MetadataStore>,
    balancer_kind: BalancerKind,
    cache: OrderedMutex<RouteCache>,
    plane: OrderedMutex<ControlPlane>,
    vacated_processed: AtomicU64,
}

impl ClusterController {
    /// Builds the control plane from the cluster configuration and elects
    /// the first leader. Workers join via [`ClusterController::register_worker`]
    /// — the topology starts empty.
    pub fn new(config: &ClusterConfig, metadata: Arc<MetadataStore>) -> Self {
        let replicas = config.controller_replicas.max(1);
        let balancer: Box<dyn Balancer> = match config.balancer {
            BalancerKind::Greedy => Box::new(GreedyBalancer),
            // `None` still needs a planner instance; its tick is never run.
            BalancerKind::MaxFlow | BalancerKind::None => Box::new(MaxFlowBalancer),
        };
        let mut plane = ControlPlane {
            raft: InProcCluster::new(replicas, RaftConfig::default(), config.seed ^ 0xC7A1),
            replicas,
            sms: (0..replicas).map(|_| ReplicaSm::new()).collect(),
            net: SimNet::new(config.seed ^ 0x0e47),
            workers: BTreeMap::new(),
            killed: None,
            leader_hint: 0,
            next_req: 0,
            balancer,
            flow: config.flow.clone(),
            arm_kill: false,
        };
        if let Some(leader) = plane.raft.run_until_leader(RPC_BUDGET) {
            plane.leader_hint = leader.raw();
        }
        ClusterController {
            metadata,
            balancer_kind: config.balancer,
            cache: OrderedMutex::new("core.controller.cache", RouteCache::default()),
            plane: OrderedMutex::new("core.controller.plane", plane),
            vacated_processed: AtomicU64::new(0),
        }
    }

    /// Attaches a worker's endpoint to the control-plane network so ticks
    /// can fetch its ingest windows by message.
    pub fn attach_worker(&self, worker: &Arc<Worker>) {
        let mut plane = self.plane.lock();
        plane.workers.insert(
            worker.id().raw(),
            WorkerEndpoint {
                worker: Arc::clone(worker),
                served: HashMap::new(),
                served_order: VecDeque::new(),
            },
        );
    }

    /// Registers a worker and its shards through the replicated log
    /// (`ScaleCluster`, Algorithm 1 lines 25–27). Idempotent under
    /// redelivery: re-registering the identical shard set neither
    /// double-registers shards nor perturbs the consistent-hash ring.
    pub fn register_worker(
        &self,
        worker: WorkerId,
        shard_ids: &[ShardId],
        shard_capacity: u64,
    ) -> Result<()> {
        let shards = shard_ids.iter().map(|&s| (s, shard_capacity)).collect();
        let resp = self.plane.lock().rpc(CtrlRequest::RegisterWorker { worker, shards })?;
        match resp {
            CtrlResponse::Ack { .. } => Ok(()),
            other => Err(unexpected("RegisterWorker", &other)),
        }
    }

    /// Snapshot of the registered topology.
    pub fn topology(&self) -> ClusterTopology {
        let resp = self.plane.lock().rpc(CtrlRequest::Topology);
        match resp {
            Ok(CtrlResponse::TopologySnapshot { topology }) => topology,
            _ => ClusterTopology::default(),
        }
    }

    /// Shard that should receive one record of `tenant` (cached weighted
    /// pick; on miss, an RPC that lazily places the tenant on its ring
    /// home shard).
    pub fn pick_shard(&self, tenant: TenantId, selector: u64) -> Result<ShardId> {
        let mut cache = self.cache.lock();
        if let Some(routes) = cache.routes.get(&tenant) {
            if let Some(shard) = pick_routes(routes, selector) {
                return Ok(shard);
            }
        }
        let resp = self.plane.lock().rpc(CtrlRequest::Route { tenant })?;
        match resp {
            CtrlResponse::Routes { routes, routed, epoch } => {
                cache.observe_epoch(epoch);
                let shard = pick_routes(&routes, selector)
                    .ok_or_else(|| Error::Cluster(format!("no route for {tenant}")))?;
                if routed && epoch == cache.epoch {
                    cache.routes.insert(tenant, routes);
                }
                Ok(shard)
            }
            other => Err(unexpected("Route", &other)),
        }
    }

    /// Reinstalls routes for a tenant recovered from durable shard state
    /// (WAL replay found its rows on `shards`). Restored routes use equal
    /// weights; the next control tick re-optimizes them.
    pub fn restore_routes(&self, tenant: TenantId, shards: &[ShardId]) -> Result<()> {
        if shards.is_empty() {
            return Ok(());
        }
        let mut cache = self.cache.lock();
        let resp = self
            .plane
            .lock()
            .rpc(CtrlRequest::RestoreRoutes { tenant, shards: shards.to_vec() })?;
        match resp {
            CtrlResponse::Ack { epoch } => {
                cache.observe_epoch(epoch);
                cache.invalidate(tenant);
                Ok(())
            }
            other => Err(unexpected("RestoreRoutes", &other)),
        }
    }

    /// `(tenant, shard)` pairs vacated by a rebalance and not yet
    /// flush-acknowledged — the shards whose buffered rows for that tenant
    /// should be "packaged and flushed to OSS" (paper §4.1.5).
    pub fn vacated_routes(&self) -> Vec<(TenantId, ShardId)> {
        match self.plane.lock().rpc(CtrlRequest::Vacated) {
            Ok(CtrlResponse::VacatedPairs { pairs, .. }) => pairs,
            _ => Vec::new(),
        }
    }

    /// Acknowledges one vacated route's flush: the edge leaves the pending
    /// set and the read settling window, through the replicated log.
    pub fn vacate_done(&self, tenant: TenantId, shard: ShardId) -> Result<()> {
        let mut cache = self.cache.lock();
        let resp = self.plane.lock().rpc(CtrlRequest::VacateDone { tenant, shard })?;
        match resp {
            CtrlResponse::Ack { epoch } => {
                cache.observe_epoch(epoch);
                self.vacated_processed.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            other => Err(unexpected("VacateDone", &other)),
        }
    }

    /// Lifetime count of vacated routes this client has flush-acknowledged.
    pub fn vacated_processed(&self) -> u64 {
        self.vacated_processed.load(Ordering::Relaxed)
    }

    /// Shards a read for `tenant` must consult (old ∪ new plans while a
    /// rebalance settles; the ring home for unplaced tenants).
    pub fn read_shards(&self, tenant: TenantId) -> Vec<ShardId> {
        let mut cache = self.cache.lock();
        if let Some(shards) = cache.read_shards.get(&tenant) {
            return shards.clone();
        }
        match self.plane.lock().rpc(CtrlRequest::ReadShards { tenant }) {
            Ok(CtrlResponse::Shards { shards, routed, epoch }) => {
                cache.observe_epoch(epoch);
                if routed && epoch == cache.epoch {
                    cache.read_shards.insert(tenant, shards.clone());
                }
                shards
            }
            _ => Vec::new(),
        }
    }

    /// Current route-edge count (Fig 12(c)).
    pub fn route_count(&self) -> usize {
        match self.plane.lock().rpc(CtrlRequest::RouteCount) {
            Ok(CtrlResponse::Count { n }) => n,
            _ => 0,
        }
    }

    /// One traffic-control tick: fetches every worker's ingest window over
    /// the network, then asks the leader to plan. A rebalance is proposed
    /// as a concrete `CommitRebalance` and acknowledged only after quorum.
    /// With [`BalancerKind::None`] this is a no-op (no network activity).
    pub fn control_tick(&self) -> Result<ControlAction> {
        if self.balancer_kind == BalancerKind::None {
            return Ok(ControlAction::None);
        }
        let mut cache = self.cache.lock();
        let mut plane = self.plane.lock();
        let windows = plane.fetch_windows()?;
        let resp = plane.rpc(CtrlRequest::Tick { windows })?;
        let CtrlResponse::TickDone { action, epoch } = resp else {
            return Err(unexpected("Tick", &resp));
        };
        if plane.arm_kill && matches!(action, ControlAction::Rebalanced { .. }) {
            // Mid-rebalance kill: the plan is committed, the vacated-route
            // flushes have not happened yet — they must survive failover.
            plane.arm_kill = false;
            plane.kill_leader();
        }
        drop(plane);
        cache.observe_epoch(epoch);
        Ok(action)
    }

    /// Kills the current controller leader (simtest fault). Returns the
    /// killed replica, or `None` when there is no quorum to spare or no
    /// leader to kill.
    pub fn kill_controller_leader(&self) -> Option<u32> {
        self.plane.lock().kill_leader()
    }

    /// Arms a leader kill that fires right after the next rebalancing tick
    /// — the "kill the leader mid-rebalance" scenario.
    pub fn arm_kill_on_rebalance(&self) {
        self.plane.lock().arm_kill = true;
    }

    /// Revives every killed replica and heals all controller partitions.
    pub fn heal_controllers(&self) {
        let mut plane = self.plane.lock();
        plane.arm_kill = false;
        plane.heal();
    }

    /// Configures control-plane network faults (seeded, deterministic).
    pub fn set_net_faults(&self, drop_probability: f64, duplicate_probability: f64, reorder: bool) {
        self.plane.lock().net.set_faults(NetFaults {
            drop_probability,
            duplicate_probability,
            reorder,
            max_delay: 4,
        });
    }

    /// Restores a perfect control-plane network.
    pub fn clear_net_faults(&self) {
        self.plane.lock().net.set_faults(NetFaults::default());
    }

    /// The current controller leader replica, if one is elected.
    pub fn controller_leader(&self) -> Option<u32> {
        self.plane.lock().raft.any_leader().map(NodeId::raw)
    }

    /// Encoded state of every live replica after letting the group settle
    /// — byte-identical entries are the convergence oracle of the
    /// failover tests.
    pub fn replica_states(&self) -> Vec<(u32, Vec<u8>)> {
        let mut plane = self.plane.lock();
        plane.settle();
        (0..plane.replicas)
            .filter(|&i| plane.killed != Some(i as u32))
            .map(|i| (i as u32, plane.sms[i].state.encode()))
            .collect()
    }

    /// Runs the expiration task over every registered tenant: expired
    /// LogBlocks move from the map to the persistent tombstone list (one
    /// atomic metadata transaction per tenant), then a GC pass deletes the
    /// tombstoned objects from OSS. Returns the number of deleted objects.
    ///
    /// The ordering is load-bearing: the map swap happens *before* any
    /// delete, and a failed delete keeps its tombstone — so one tenant's
    /// OSS error neither aborts the other tenants' expiration nor leaks
    /// the object (the next pass retries it).
    pub fn run_expiration<S: ObjectStore>(&self, store: &S, now: Timestamp) -> Result<u64> {
        for tenant in self.metadata.tenants() {
            self.metadata.expire(tenant, now);
        }
        let report =
            crate::compactor::run_gc(store, &self.metadata, None, &crate::hooks::NoopHooks);
        Ok(report.deleted)
    }

    /// Tick entry point for tests that hand-craft windows instead of
    /// attaching workers.
    #[cfg(test)]
    fn control_tick_with(
        &self,
        windows: HashMap<WorkerId, HashMap<ShardId, ShardWindow>>,
    ) -> Result<ControlAction> {
        if self.balancer_kind == BalancerKind::None {
            return Ok(ControlAction::None);
        }
        let mut cache = self.cache.lock();
        let resp = self.plane.lock().rpc(CtrlRequest::Tick { windows })?;
        let CtrlResponse::TickDone { action, epoch } = resp else {
            return Err(unexpected("Tick", &resp));
        };
        cache.observe_epoch(epoch);
        Ok(action)
    }
}

fn unexpected(what: &str, resp: &CtrlResponse) -> Error {
    Error::Cluster(format!("unexpected control-plane response to {what}: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::LogBlockEntry;
    use logstore_oss::MemoryStore;

    /// A controller with the `for_testing` topology registered explicitly
    /// (workers no longer arrive via the constructor).
    fn controller(balancer: BalancerKind) -> ClusterController {
        let mut config = ClusterConfig::for_testing();
        config.balancer = balancer;
        let c = ClusterController::new(&config, Arc::new(MetadataStore::new()));
        for w in 0..config.workers {
            let shard_ids: Vec<ShardId> = (0..config.shards_per_worker)
                .map(|s| ShardId(w * config.shards_per_worker + s))
                .collect();
            c.register_worker(WorkerId(w), &shard_ids, config.shard_capacity).unwrap();
        }
        c
    }

    #[test]
    fn pick_shard_is_stable_per_tenant() {
        let c = controller(BalancerKind::MaxFlow);
        let s1 = c.pick_shard(TenantId(5), 0).unwrap();
        let s2 = c.pick_shard(TenantId(5), 1).unwrap();
        assert_eq!(s1, s2, "single-route tenant always lands on its home shard");
        assert_eq!(c.read_shards(TenantId(5)), vec![s1]);
    }

    #[test]
    fn register_worker_redelivery_is_idempotent() {
        let c = controller(BalancerKind::MaxFlow);
        let before = c.topology();
        let states = c.replica_states();
        // Redeliver worker 0's registration several times.
        for _ in 0..3 {
            c.register_worker(WorkerId(0), &[ShardId(0), ShardId(1)], 100_000).unwrap();
        }
        assert_eq!(c.topology().shard_capacity, before.shard_capacity);
        assert_eq!(
            c.replica_states(),
            states,
            "redelivered registration must not change a single replicated byte"
        );
    }

    #[test]
    fn control_tick_rebalances_hot_tenant() {
        let c = controller(BalancerKind::MaxFlow);
        let hot = TenantId(1);
        let home = c.pick_shard(hot, 0).unwrap();
        // Simulate a window where the tenant hammers its home shard well
        // beyond capacity * alpha (capacity 100k, alpha 0.85).
        let mut shard_windows = HashMap::new();
        let window = ShardWindow { total: 200_000, per_tenant: HashMap::from([(hot, 200_000)]) };
        shard_windows.insert(home, window);
        let worker = c.topology().shard_to_worker[&home];
        let mut windows = HashMap::new();
        windows.insert(worker, shard_windows);
        let action = c.control_tick_with(windows).unwrap();
        assert!(
            matches!(action, ControlAction::Rebalanced { .. }),
            "expected rebalance, got {action:?}"
        );
        assert!(c.read_shards(hot).len() > 1, "hot tenant must gain shards");
        assert!(!c.vacated_routes().is_empty() || c.read_shards(hot).contains(&home));
    }

    #[test]
    fn balancer_none_never_acts() {
        let c = controller(BalancerKind::None);
        let hot = TenantId(1);
        let home = c.pick_shard(hot, 0).unwrap();
        let mut shard_windows = HashMap::new();
        let window = ShardWindow { total: 500_000, per_tenant: HashMap::from([(hot, 500_000)]) };
        shard_windows.insert(home, window);
        let mut windows = HashMap::new();
        windows.insert(c.topology().shard_to_worker[&home], shard_windows);
        assert_eq!(c.control_tick_with(windows).unwrap(), ControlAction::None);
        assert_eq!(c.read_shards(hot), vec![home]);
    }

    #[test]
    fn leader_kill_and_heal_keeps_serving() {
        let c = controller(BalancerKind::MaxFlow);
        let t = TenantId(7);
        let before = c.pick_shard(t, 0).unwrap();
        let killed = c.kill_controller_leader().expect("kill the leader");
        // Cached routes keep serving instantly; a fresh RPC must drive the
        // election through and land on a new leader with the same answer.
        assert_eq!(c.read_shards(t), vec![before]);
        assert_eq!(c.pick_shard(t, 0).unwrap(), before);
        assert_ne!(c.controller_leader(), Some(killed));
        c.heal_controllers();
        let states = c.replica_states();
        assert_eq!(states.len(), 3, "all replicas live after heal");
        assert!(
            states.windows(2).all(|w| w[0].1 == w[1].1),
            "replicas must converge byte-identically after heal"
        );
    }

    #[test]
    fn rpc_survives_network_faults() {
        let c = controller(BalancerKind::MaxFlow);
        c.set_net_faults(0.3, 0.3, true);
        let t = TenantId(11);
        let shard = c.pick_shard(t, 0).unwrap();
        for sel in 0..50 {
            assert_eq!(c.pick_shard(t, sel).unwrap(), shard, "routes stable under faults");
        }
        assert_eq!(c.read_shards(t), vec![shard]);
        c.clear_net_faults();
        let states = c.replica_states();
        assert!(states.windows(2).all(|w| w[0].1 == w[1].1));
    }

    #[test]
    fn expiration_deletes_from_store() {
        let metadata = Arc::new(MetadataStore::new());
        let config = ClusterConfig::for_testing();
        let c = ClusterController::new(&config, Arc::clone(&metadata));
        let store = MemoryStore::new();
        let tenant = TenantId(9);
        metadata.set_retention(tenant, Some(1000));
        let path = metadata.allocate_block_path(tenant);
        store.put(&path, b"block").unwrap();
        metadata
            .register_block(
                tenant,
                LogBlockEntry {
                    path: path.clone(),
                    min_ts: Timestamp(0),
                    max_ts: Timestamp(10),
                    rows: 1,
                    bytes: 5,
                },
            )
            .unwrap();
        let deleted = c.run_expiration(&store, Timestamp(5000)).unwrap();
        assert_eq!(deleted, 1);
        assert!(store.get(&path).is_err());
        assert!(metadata.all_blocks(tenant).is_empty());
    }
}
