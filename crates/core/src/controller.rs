//! The cluster controller: routing, traffic control, expiration.
//!
//! Wraps the flow-control loop of `logstore-flow` with the engine's
//! concerns: lazy route initialization by consistent hashing, snapshot
//! assembly from worker ingest windows, and the background expiration task
//! that deletes expired LogBlocks from OSS.

use crate::config::{BalancerKind, ClusterConfig};
use crate::metadata::MetadataStore;
use crate::worker::ShardWindow;
use logstore_flow::balancer::{Balancer, GreedyBalancer, MaxFlowBalancer};
use logstore_flow::sim::ClusterTopology;
use logstore_flow::{ConsistentHashRing, ControlAction, TrafficController, TrafficSnapshot};
use logstore_oss::ObjectStore;
use logstore_sync::{OrderedMutex, OrderedRwLock};
use logstore_types::{Result, ShardId, TenantId, Timestamp, WorkerId};
use std::collections::HashMap;
use std::sync::Arc;

/// The engine-side controller.
///
/// Lock order (enforced by the `logstore-sync` analysis in debug builds):
/// `traffic` → `ring` (pick_shard, read_shards) and `topology` → `ring`
/// (register_worker). `ring` is always innermost; never take `traffic` or
/// `topology` while holding it.
pub struct ClusterController {
    topology: OrderedRwLock<ClusterTopology>,
    ring: OrderedRwLock<ConsistentHashRing>,
    traffic: OrderedMutex<TrafficController>,
    balancer_kind: BalancerKind,
    metadata: Arc<MetadataStore>,
}

impl ClusterController {
    /// Builds the controller from the cluster configuration.
    pub fn new(config: &ClusterConfig, metadata: Arc<MetadataStore>) -> Self {
        let topology = ClusterTopology::homogeneous(
            config.workers,
            config.shards_per_worker,
            config.shard_capacity,
        );
        let shards = topology.shards();
        let ring = ConsistentHashRing::new(&shards);
        let balancer: Box<dyn Balancer> = match config.balancer {
            BalancerKind::Greedy => Box::new(GreedyBalancer),
            // `None` still needs a planner instance; its tick is never run.
            BalancerKind::MaxFlow | BalancerKind::None => Box::new(MaxFlowBalancer),
        };
        let traffic = TrafficController::new(config.flow.clone(), balancer);
        ClusterController {
            topology: OrderedRwLock::new("core.controller.topology", topology),
            ring: OrderedRwLock::new("core.controller.ring", ring),
            traffic: OrderedMutex::new("core.controller.traffic", traffic),
            balancer_kind: config.balancer,
            metadata,
        }
    }

    /// Snapshot of the current topology.
    pub fn topology(&self) -> ClusterTopology {
        self.topology.read().clone()
    }

    /// Registers a new worker and its shards (`ScaleCluster`, Algorithm 1
    /// lines 25–27). The hash ring is rebuilt over the grown shard set;
    /// existing tenants keep their routes (consistent hashing only places
    /// *new* tenants), so scaling out never moves data — the next control
    /// tick spreads hot tenants onto the new capacity.
    pub fn register_worker(
        &self,
        worker: logstore_types::WorkerId,
        shard_ids: &[ShardId],
        shard_capacity: u64,
    ) {
        let mut topology = self.topology.write();
        let mut worker_capacity = 0;
        for &shard in shard_ids {
            topology.shard_capacity.insert(shard, shard_capacity);
            topology.shard_to_worker.insert(shard, worker);
            worker_capacity += shard_capacity;
        }
        topology.worker_capacity.insert(worker, worker_capacity);
        *self.ring.write() = ConsistentHashRing::new(&topology.shards());
    }

    /// Shard that should receive one record of `tenant` (lazy route init +
    /// weighted pick).
    pub fn pick_shard(&self, tenant: TenantId, selector: u64) -> Result<ShardId> {
        let mut traffic = self.traffic.lock();
        if traffic.routes().routes(tenant).is_none() {
            let ring = self.ring.read();
            let home = ring
                .assign(tenant)
                .ok_or_else(|| logstore_types::Error::Cluster("no shards in ring".into()))?;
            traffic.init_routes(&[tenant], &ring)?;
            // init_routes only touches tenants it can assign; make sure.
            if traffic.routes().routes(tenant).is_none() {
                return Ok(home);
            }
        }
        traffic
            .routes()
            .pick(tenant, selector)
            .ok_or_else(|| logstore_types::Error::Cluster(format!("no route for {tenant}")))
    }

    /// Reinstalls routes for a tenant recovered from durable shard state
    /// (WAL replay found its rows on `shards`). Restored routes use equal
    /// weights; the next control tick re-optimizes them. Without this, a
    /// restart forgets every rebalance and rows replayed onto non-home
    /// shards would be invisible to reads.
    pub fn restore_routes(&self, tenant: TenantId, shards: &[ShardId]) -> Result<()> {
        self.traffic.lock().restore_routes(tenant, shards)
    }

    /// `(tenant, shard)` pairs present in the previous plan but absent from
    /// the current one — the shards whose buffered rows for that tenant
    /// should be "packaged and flushed to OSS" after a rebalance
    /// (paper §4.1.5: no data migration between nodes).
    pub fn vacated_routes(&self) -> Vec<(TenantId, ShardId)> {
        let traffic = self.traffic.lock();
        let current = traffic.routes();
        let mut vacated = Vec::new();
        for (tenant, old_routes) in traffic.previous_routes().iter() {
            let current_shards: Vec<ShardId> =
                current.routes(tenant).into_iter().flatten().map(|r| r.shard).collect();
            for r in old_routes {
                if !current_shards.contains(&r.shard) {
                    vacated.push((tenant, r.shard));
                }
            }
        }
        vacated.sort_unstable_by_key(|(t, s)| (t.raw(), s.raw()));
        vacated
    }

    /// Shards a read for `tenant` must consult.
    pub fn read_shards(&self, tenant: TenantId) -> Vec<ShardId> {
        let traffic = self.traffic.lock();
        let shards = traffic.read_shards(tenant);
        if shards.is_empty() {
            // Unrouted tenant: its home shard plus nothing else.
            self.ring.read().assign(tenant).into_iter().collect()
        } else {
            shards
        }
    }

    /// Current route-edge count (Fig 12(c)).
    pub fn route_count(&self) -> usize {
        self.traffic.lock().routes().route_count()
    }

    /// Assembles a [`TrafficSnapshot`] from per-worker ingest windows and
    /// runs one control tick. With [`BalancerKind::None`] this is a no-op.
    pub fn control_tick(
        &self,
        windows: &HashMap<WorkerId, HashMap<ShardId, ShardWindow>>,
    ) -> Result<ControlAction> {
        if self.balancer_kind == BalancerKind::None {
            return Ok(ControlAction::None);
        }
        let snapshot = self.snapshot_from_windows(windows);
        self.traffic.lock().tick(&snapshot)
    }

    /// Builds the monitor snapshot (public for experiment harnesses).
    pub fn snapshot_from_windows(
        &self,
        windows: &HashMap<WorkerId, HashMap<ShardId, ShardWindow>>,
    ) -> TrafficSnapshot {
        let topology = self.topology.read();
        let mut snapshot = TrafficSnapshot {
            shard_capacity: topology.shard_capacity.clone(),
            worker_capacity: topology.worker_capacity.clone(),
            shard_to_worker: topology.shard_to_worker.clone(),
            ..Default::default()
        };
        for (&worker, shards) in windows {
            for (&shard, window) in shards {
                *snapshot.shard_load.entry(shard).or_default() += window.total;
                *snapshot.worker_load.entry(worker).or_default() += window.total;
                for (&tenant, &count) in &window.per_tenant {
                    *snapshot.tenant_traffic.entry(tenant).or_default() += count;
                    snapshot.shard_tenants.entry(shard).or_default().push((tenant, count));
                }
            }
        }
        snapshot
    }

    /// Runs the expiration task over every registered tenant: expired
    /// LogBlocks move from the map to the persistent tombstone list (one
    /// atomic metadata transaction per tenant), then a GC pass deletes the
    /// tombstoned objects from OSS. Returns the number of deleted objects.
    ///
    /// The ordering is load-bearing: the map swap happens *before* any
    /// delete, and a failed delete keeps its tombstone — so one tenant's
    /// OSS error neither aborts the other tenants' expiration nor leaks
    /// the object (the next pass retries it). The historical ordering
    /// (delete inline, `?` on failure) did both.
    pub fn run_expiration<S: ObjectStore>(&self, store: &S, now: Timestamp) -> Result<u64> {
        for tenant in self.metadata.tenants() {
            self.metadata.expire(tenant, now);
        }
        let report =
            crate::compactor::run_gc(store, &self.metadata, None, &crate::hooks::NoopHooks);
        Ok(report.deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::LogBlockEntry;
    use logstore_oss::MemoryStore;

    fn controller(balancer: BalancerKind) -> ClusterController {
        let mut config = ClusterConfig::for_testing();
        config.balancer = balancer;
        ClusterController::new(&config, Arc::new(MetadataStore::new()))
    }

    #[test]
    fn pick_shard_is_stable_per_tenant() {
        let c = controller(BalancerKind::MaxFlow);
        let s1 = c.pick_shard(TenantId(5), 0).unwrap();
        let s2 = c.pick_shard(TenantId(5), 1).unwrap();
        assert_eq!(s1, s2, "single-route tenant always lands on its home shard");
        assert_eq!(c.read_shards(TenantId(5)), vec![s1]);
    }

    #[test]
    fn control_tick_rebalances_hot_tenant() {
        let c = controller(BalancerKind::MaxFlow);
        let hot = TenantId(1);
        let home = c.pick_shard(hot, 0).unwrap();
        // Simulate a window where the tenant hammers its home shard well
        // beyond capacity * alpha (capacity 100k, alpha 0.85).
        let mut shard_windows = HashMap::new();
        let window = ShardWindow { total: 200_000, per_tenant: HashMap::from([(hot, 200_000)]) };
        shard_windows.insert(home, window);
        let worker = c.topology().shard_to_worker[&home];
        let mut windows = HashMap::new();
        windows.insert(worker, shard_windows);
        let action = c.control_tick(&windows).unwrap();
        assert!(
            matches!(action, ControlAction::Rebalanced { .. }),
            "expected rebalance, got {action:?}"
        );
        assert!(c.read_shards(hot).len() > 1, "hot tenant must gain shards");
    }

    #[test]
    fn balancer_none_never_acts() {
        let c = controller(BalancerKind::None);
        let hot = TenantId(1);
        let home = c.pick_shard(hot, 0).unwrap();
        let mut shard_windows = HashMap::new();
        let window = ShardWindow { total: 500_000, per_tenant: HashMap::from([(hot, 500_000)]) };
        shard_windows.insert(home, window);
        let mut windows = HashMap::new();
        windows.insert(c.topology().shard_to_worker[&home], shard_windows);
        assert_eq!(c.control_tick(&windows).unwrap(), ControlAction::None);
        assert_eq!(c.read_shards(hot), vec![home]);
    }

    #[test]
    fn expiration_deletes_from_store() {
        let metadata = Arc::new(MetadataStore::new());
        let config = ClusterConfig::for_testing();
        let c = ClusterController::new(&config, Arc::clone(&metadata));
        let store = MemoryStore::new();
        let tenant = TenantId(9);
        metadata.set_retention(tenant, Some(1000));
        let path = metadata.allocate_block_path(tenant);
        store.put(&path, b"block").unwrap();
        metadata
            .register_block(
                tenant,
                LogBlockEntry {
                    path: path.clone(),
                    min_ts: Timestamp(0),
                    max_ts: Timestamp(10),
                    rows: 1,
                    bytes: 5,
                },
            )
            .unwrap();
        let deleted = c.run_expiration(&store, Timestamp(5000)).unwrap();
        assert_eq!(deleted, 1);
        assert!(store.get(&path).is_err());
        assert!(metadata.all_blocks(tenant).is_empty());
    }
}
