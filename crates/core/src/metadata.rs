//! Controller metadata: tenants, retention, and the LogBlock map.
//!
//! The LogBlock map is the `<tenant_id, min_ts, max_ts> → LogBlock` index
//! of Fig 8 ① — the first level of data skipping — and the unit of
//! per-tenant expiration and billing (paper §3.1).

use logstore_sync::OrderedRwLock;
use logstore_types::{Error, Result, ShardId, TenantId, TimeRange, Timestamp};
use logstore_wal::DrainSeq;
use std::collections::HashMap;

/// Durable identity of one shard drain across the whole cluster: the
/// shard plus its per-shard [`DrainSeq`]. The key of the drain-commit
/// table that makes the archive upload exactly-once across crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DrainId {
    /// The shard the rows were drained from.
    pub shard: ShardId,
    /// That shard's drain sequence number.
    pub seq: DrainSeq,
}

/// One archived LogBlock of one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogBlockEntry {
    /// OSS object path.
    pub path: String,
    /// Smallest `ts` in the block.
    pub min_ts: Timestamp,
    /// Largest `ts` in the block.
    pub max_ts: Timestamp,
    /// Row count.
    pub rows: u64,
    /// Packed size in bytes.
    pub bytes: u64,
}

impl LogBlockEntry {
    /// The block's time coverage.
    pub fn time_range(&self) -> TimeRange {
        TimeRange::new(self.min_ts, self.max_ts)
    }
}

/// Per-tenant registration: retention policy and usage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantInfo {
    /// Data older than this many milliseconds may be expired
    /// (None = keep forever, the archival tenants).
    pub retention_ms: Option<i64>,
    /// Total archived rows.
    pub archived_rows: u64,
    /// Total archived bytes (the billing meter).
    pub archived_bytes: u64,
}

/// The controller's metadata database.
#[derive(Debug)]
pub struct MetadataStore {
    inner: OrderedRwLock<Inner>,
}

impl Default for MetadataStore {
    fn default() -> Self {
        MetadataStore { inner: OrderedRwLock::new("core.metadata.inner", Inner::default()) }
    }
}

#[derive(Debug, Default)]
struct Inner {
    tenants: HashMap<TenantId, TenantInfo>,
    // Per tenant, blocks in registration order (chronological for a given
    // shard; overlapping across shards is fine — pruning uses time ranges).
    blocks: HashMap<TenantId, Vec<LogBlockEntry>>,
    next_block_seq: u64,
    // Drain-commit table: how many leading chunks of each drain are
    // durable and registered. WAL replay consults this (via the worker's
    // resolver) to keep committed rows out of the row store.
    drain_commits: HashMap<DrainId, u64>,
}

impl MetadataStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a tenant's retention policy.
    pub fn set_retention(&self, tenant: TenantId, retention_ms: Option<i64>) {
        self.inner.write().tenants.entry(tenant).or_default().retention_ms = retention_ms;
    }

    /// Tenant info snapshot.
    pub fn tenant_info(&self, tenant: TenantId) -> TenantInfo {
        self.inner.read().tenants.get(&tenant).cloned().unwrap_or_default()
    }

    /// Allocates a unique LogBlock object path for a tenant. Per-tenant
    /// OSS directories give the physical isolation of §3.1.
    pub fn allocate_block_path(&self, tenant: TenantId) -> String {
        let seq = {
            let mut inner = self.inner.write();
            inner.next_block_seq += 1;
            inner.next_block_seq
        };
        format!("tenants/{}/blk-{seq:012}.pack", tenant.raw())
    }

    /// Registers an uploaded LogBlock.
    pub fn register_block(&self, tenant: TenantId, entry: LogBlockEntry) -> Result<()> {
        if entry.min_ts > entry.max_ts {
            return Err(Error::invalid("block time range inverted"));
        }
        let mut inner = self.inner.write();
        let info = inner.tenants.entry(tenant).or_default();
        info.archived_rows += entry.rows;
        info.archived_bytes += entry.bytes;
        inner.blocks.entry(tenant).or_default().push(entry);
        Ok(())
    }

    /// Atomically registers every block an archive drain uploaded and
    /// records that its first `chunks` chunks are durable. One metadata
    /// transaction is what makes the upload exactly-once: a crash before
    /// this call leaves no trace (replay restores every drained row, the
    /// orphaned objects are garbage, not duplicates); a crash after it
    /// leaves the commit visible, so replay keeps the registered rows out.
    pub fn commit_drain(
        &self,
        id: DrainId,
        blocks: Vec<(TenantId, LogBlockEntry)>,
        chunks: u64,
    ) -> Result<()> {
        for (_, entry) in &blocks {
            if entry.min_ts > entry.max_ts {
                return Err(Error::invalid("block time range inverted"));
            }
        }
        let mut inner = self.inner.write();
        if inner.drain_commits.contains_key(&id) {
            return Err(Error::invalid(format!("drain {id:?} committed twice")));
        }
        for (tenant, entry) in blocks {
            let info = inner.tenants.entry(tenant).or_default();
            info.archived_rows += entry.rows;
            info.archived_bytes += entry.bytes;
            inner.blocks.entry(tenant).or_default().push(entry);
        }
        inner.drain_commits.insert(id, chunks);
        Ok(())
    }

    /// How many leading chunks of drain `id` were committed (`None` if the
    /// drain never committed).
    pub fn drain_commit(&self, id: DrainId) -> Option<u64> {
        self.inner.read().drain_commits.get(&id).copied()
    }

    /// LogBlock-map pruning (Fig 8 ①): blocks of `tenant` overlapping
    /// `range`.
    pub fn blocks_for(&self, tenant: TenantId, range: TimeRange) -> Vec<LogBlockEntry> {
        self.inner
            .read()
            .blocks
            .get(&tenant)
            .map(|blocks| {
                blocks.iter().filter(|b| b.time_range().overlaps(&range)).cloned().collect()
            })
            .unwrap_or_default()
    }

    /// All blocks of a tenant.
    pub fn all_blocks(&self, tenant: TenantId) -> Vec<LogBlockEntry> {
        self.inner.read().blocks.get(&tenant).cloned().unwrap_or_default()
    }

    /// Total block count (all tenants).
    pub fn block_count(&self) -> usize {
        self.inner.read().blocks.values().map(Vec::len).sum()
    }

    /// Tenants with registered data.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut t: Vec<TenantId> = self.inner.read().blocks.keys().copied().collect();
        t.sort_unstable();
        t
    }

    /// Removes expired blocks of `tenant` as of `now` per its retention
    /// policy, returning the object paths to delete from OSS.
    pub fn expire(&self, tenant: TenantId, now: Timestamp) -> Vec<String> {
        let mut inner = self.inner.write();
        let Some(retention) = inner.tenants.get(&tenant).and_then(|t| t.retention_ms) else {
            return Vec::new();
        };
        let cutoff = Timestamp(now.millis().saturating_sub(retention));
        let Some(blocks) = inner.blocks.get_mut(&tenant) else {
            return Vec::new();
        };
        let mut expired = Vec::new();
        let mut removed_rows = 0;
        let mut removed_bytes = 0;
        blocks.retain(|b| {
            // A block expires only when *all* its data is past the cutoff.
            if b.max_ts < cutoff {
                expired.push(b.path.clone());
                removed_rows += b.rows;
                removed_bytes += b.bytes;
                false
            } else {
                true
            }
        });
        if let Some(info) = inner.tenants.get_mut(&tenant) {
            info.archived_rows -= removed_rows;
            info.archived_bytes -= removed_bytes;
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, min: i64, max: i64, rows: u64) -> LogBlockEntry {
        LogBlockEntry {
            path: path.to_string(),
            min_ts: Timestamp(min),
            max_ts: Timestamp(max),
            rows,
            bytes: rows * 100,
        }
    }

    #[test]
    fn register_and_prune_by_time() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("a", 0, 100, 10)).unwrap();
        m.register_block(t, entry("b", 101, 200, 10)).unwrap();
        m.register_block(t, entry("c", 201, 300, 10)).unwrap();
        let hits = m.blocks_for(t, TimeRange::new(Timestamp(150), Timestamp(250)));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].path, "b");
        assert_eq!(hits[1].path, "c");
        assert!(m.blocks_for(t, TimeRange::new(Timestamp(500), Timestamp(600))).is_empty());
        assert!(m.blocks_for(TenantId(9), TimeRange::all()).is_empty());
        assert_eq!(m.block_count(), 3);
    }

    #[test]
    fn tenant_isolation_in_paths() {
        let m = MetadataStore::new();
        let p1 = m.allocate_block_path(TenantId(1));
        let p2 = m.allocate_block_path(TenantId(2));
        assert!(p1.starts_with("tenants/1/"));
        assert!(p2.starts_with("tenants/2/"));
        assert_ne!(p1, p2);
    }

    #[test]
    fn billing_counters_accumulate() {
        let m = MetadataStore::new();
        let t = TenantId(3);
        m.register_block(t, entry("a", 0, 10, 100)).unwrap();
        m.register_block(t, entry("b", 11, 20, 50)).unwrap();
        let info = m.tenant_info(t);
        assert_eq!(info.archived_rows, 150);
        assert_eq!(info.archived_bytes, 15_000);
    }

    #[test]
    fn expiration_respects_retention_and_block_boundaries() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.set_retention(t, Some(100));
        m.register_block(t, entry("old", 0, 50, 10)).unwrap();
        m.register_block(t, entry("straddles", 60, 150, 10)).unwrap();
        m.register_block(t, entry("fresh", 160, 200, 10)).unwrap();
        let expired = m.expire(t, Timestamp(200));
        assert_eq!(expired, vec!["old"]); // cutoff = 100; only max_ts < 100
        assert_eq!(m.all_blocks(t).len(), 2);
        assert_eq!(m.tenant_info(t).archived_rows, 20);
    }

    #[test]
    fn no_retention_means_no_expiry() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("keep", 0, 1, 1)).unwrap();
        assert!(m.expire(t, Timestamp(i64::MAX)).is_empty());
        assert_eq!(m.all_blocks(t).len(), 1);
    }

    #[test]
    fn inverted_range_rejected() {
        let m = MetadataStore::new();
        assert!(m.register_block(TenantId(1), entry("bad", 10, 5, 1)).is_err());
    }
}
