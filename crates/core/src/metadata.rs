//! Controller metadata: tenants, retention, and the LogBlock map.
//!
//! The LogBlock map is the `<tenant_id, min_ts, max_ts> → LogBlock` index
//! of Fig 8 ① — the first level of data skipping — and the unit of
//! per-tenant expiration and billing (paper §3.1).

use logstore_sync::OrderedRwLock;
use logstore_types::{Error, Result, ShardId, TenantId, TimeRange, Timestamp};
use logstore_wal::DrainSeq;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Durable identity of one shard drain across the whole cluster: the
/// shard plus its per-shard [`DrainSeq`]. The key of the drain-commit
/// table that makes the archive upload exactly-once across crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DrainId {
    /// The shard the rows were drained from.
    pub shard: ShardId,
    /// That shard's drain sequence number.
    pub seq: DrainSeq,
}

/// One archived LogBlock of one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogBlockEntry {
    /// OSS object path.
    pub path: String,
    /// Smallest `ts` in the block.
    pub min_ts: Timestamp,
    /// Largest `ts` in the block.
    pub max_ts: Timestamp,
    /// Row count.
    pub rows: u64,
    /// Packed size in bytes.
    pub bytes: u64,
}

impl LogBlockEntry {
    /// The block's time coverage.
    pub fn time_range(&self) -> TimeRange {
        TimeRange::new(self.min_ts, self.max_ts)
    }
}

/// Per-tenant registration: retention policy and usage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantInfo {
    /// Data older than this many milliseconds may be expired
    /// (None = keep forever, the archival tenants).
    pub retention_ms: Option<i64>,
    /// Total archived rows.
    pub archived_rows: u64,
    /// Total archived bytes (the billing meter).
    pub archived_bytes: u64,
}

/// The controller's metadata database.
#[derive(Debug)]
pub struct MetadataStore {
    inner: OrderedRwLock<Inner>,
    // Uploads currently between `allocate_block_path` and their commit.
    // While this is non-zero, `sweep_stale_pending` refuses to reclassify
    // pending paths as garbage: a builder registers itself *before*
    // allocating, so any path a live build holds is protected. Kept as an
    // atomic (not in `Inner`) so [`BuildGuard::drop`] never takes a lock.
    builds_in_flight: AtomicU64,
}

impl Default for MetadataStore {
    fn default() -> Self {
        MetadataStore {
            inner: OrderedRwLock::new("core.metadata.inner", Inner::default()),
            builds_in_flight: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    tenants: HashMap<TenantId, TenantInfo>,
    // Per tenant, blocks in registration order (chronological for a given
    // shard; overlapping across shards is fine — pruning uses time ranges).
    blocks: HashMap<TenantId, Vec<LogBlockEntry>>,
    next_block_seq: u64,
    // Drain-commit table: how many leading chunks of each drain are
    // durable and registered. WAL replay consults this (via the worker's
    // resolver) to keep committed rows out of the row store.
    drain_commits: HashMap<DrainId, u64>,
    // Bumped on every mutation that *removes* a path from the live map
    // (expire, compaction swap). Queries snapshot it before scattering;
    // a changed version explains a NotFound on a block that was mapped.
    map_version: u64,
    // Paths whose objects must eventually be deleted from OSS but are no
    // longer (or were never) in the live map. Persistent until a delete
    // succeeds: a failed delete stays here and is retried by the next GC
    // pass, so no object is ever leaked by a transient OSS error.
    tombstones: BTreeSet<String>,
    // Allocated paths whose upload has not committed yet. Cleared by
    // `register_block` / `commit_drain` / `commit_compaction`; a path
    // still here after its build died (crash between put and commit) is
    // an orphaned object, swept into `tombstones` by the GC pass.
    pending_paths: BTreeSet<String>,
}

/// RAII registration of an in-flight build (archive upload or compaction).
/// While any guard is alive, [`MetadataStore::sweep_stale_pending`] leaves
/// pending paths alone. Take the guard *before* allocating paths.
#[derive(Debug)]
pub struct BuildGuard<'a> {
    meta: &'a MetadataStore,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        self.meta.builds_in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl MetadataStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a tenant's retention policy.
    pub fn set_retention(&self, tenant: TenantId, retention_ms: Option<i64>) {
        self.inner.write().tenants.entry(tenant).or_default().retention_ms = retention_ms;
    }

    /// Tenant info snapshot.
    pub fn tenant_info(&self, tenant: TenantId) -> TenantInfo {
        self.inner.read().tenants.get(&tenant).cloned().unwrap_or_default()
    }

    /// Registers an in-flight build. Hold the returned guard across the
    /// whole allocate→upload→commit window so the GC pass cannot sweep the
    /// build's pending paths out from under it.
    pub fn begin_build(&self) -> BuildGuard<'_> {
        self.builds_in_flight.fetch_add(1, Ordering::SeqCst);
        BuildGuard { meta: self }
    }

    /// Allocates a unique LogBlock object path for a tenant. Per-tenant
    /// OSS directories give the physical isolation of §3.1. The path is
    /// recorded as a *pending intent* until a commit registers it, so an
    /// object orphaned by a crash between upload and commit is found and
    /// deleted by GC rather than leaked.
    pub fn allocate_block_path(&self, tenant: TenantId) -> String {
        let mut inner = self.inner.write();
        inner.next_block_seq += 1;
        let path = format!("tenants/{}/blk-{:012}.pack", tenant.raw(), inner.next_block_seq);
        inner.pending_paths.insert(path.clone());
        path
    }

    /// Registers an uploaded LogBlock.
    pub fn register_block(&self, tenant: TenantId, entry: LogBlockEntry) -> Result<()> {
        if entry.min_ts > entry.max_ts {
            return Err(Error::invalid("block time range inverted"));
        }
        let mut inner = self.inner.write();
        inner.pending_paths.remove(&entry.path);
        let info = inner.tenants.entry(tenant).or_default();
        info.archived_rows += entry.rows;
        info.archived_bytes += entry.bytes;
        inner.blocks.entry(tenant).or_default().push(entry);
        Ok(())
    }

    /// Atomically registers every block an archive drain uploaded and
    /// records that its first `chunks` chunks are durable. One metadata
    /// transaction is what makes the upload exactly-once: a crash before
    /// this call leaves no trace (replay restores every drained row, the
    /// orphaned objects are garbage, not duplicates); a crash after it
    /// leaves the commit visible, so replay keeps the registered rows out.
    pub fn commit_drain(
        &self,
        id: DrainId,
        blocks: Vec<(TenantId, LogBlockEntry)>,
        chunks: u64,
    ) -> Result<()> {
        for (_, entry) in &blocks {
            if entry.min_ts > entry.max_ts {
                return Err(Error::invalid("block time range inverted"));
            }
        }
        let mut inner = self.inner.write();
        if inner.drain_commits.contains_key(&id) {
            return Err(Error::invalid(format!("drain {id:?} committed twice")));
        }
        for (tenant, entry) in blocks {
            inner.pending_paths.remove(&entry.path);
            let info = inner.tenants.entry(tenant).or_default();
            info.archived_rows += entry.rows;
            info.archived_bytes += entry.bytes;
            inner.blocks.entry(tenant).or_default().push(entry);
        }
        inner.drain_commits.insert(id, chunks);
        Ok(())
    }

    /// How many leading chunks of drain `id` were committed (`None` if the
    /// drain never committed).
    pub fn drain_commit(&self, id: DrainId) -> Option<u64> {
        self.inner.read().drain_commits.get(&id).copied()
    }

    /// LogBlock-map pruning (Fig 8 ①): blocks of `tenant` overlapping
    /// `range`.
    pub fn blocks_for(&self, tenant: TenantId, range: TimeRange) -> Vec<LogBlockEntry> {
        self.inner
            .read()
            .blocks
            .get(&tenant)
            .map(|blocks| {
                blocks.iter().filter(|b| b.time_range().overlaps(&range)).cloned().collect()
            })
            .unwrap_or_default()
    }

    /// All blocks of a tenant.
    pub fn all_blocks(&self, tenant: TenantId) -> Vec<LogBlockEntry> {
        self.inner.read().blocks.get(&tenant).cloned().unwrap_or_default()
    }

    /// Total block count (all tenants).
    pub fn block_count(&self) -> usize {
        self.inner.read().blocks.values().map(Vec::len).sum()
    }

    /// Tenants with registered data.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut t: Vec<TenantId> = self.inner.read().blocks.keys().copied().collect();
        t.sort_unstable();
        t
    }

    /// Removes expired blocks of `tenant` as of `now` per its retention
    /// policy. The removed paths move to the tombstone list in the *same*
    /// metadata transaction — the map swap and the tombstoning are atomic,
    /// so the subsequent OSS deletes can fail (or the process can crash)
    /// without leaking an object: the path is either live in the map or on
    /// the tombstone list, never forgotten. Returns the newly tombstoned
    /// paths.
    pub fn expire(&self, tenant: TenantId, now: Timestamp) -> Vec<String> {
        let mut inner = self.inner.write();
        let Some(retention) = inner.tenants.get(&tenant).and_then(|t| t.retention_ms) else {
            return Vec::new();
        };
        let cutoff = Timestamp(now.millis().saturating_sub(retention));
        let Some(blocks) = inner.blocks.get_mut(&tenant) else {
            return Vec::new();
        };
        let mut expired = Vec::new();
        let mut removed_rows = 0u64;
        let mut removed_bytes = 0u64;
        blocks.retain(|b| {
            // A block expires only when *all* its data is past the cutoff.
            if b.max_ts < cutoff {
                expired.push(b.path.clone());
                removed_rows += b.rows;
                removed_bytes += b.bytes;
                false
            } else {
                true
            }
        });
        if expired.is_empty() {
            return expired;
        }
        if let Some(info) = inner.tenants.get_mut(&tenant) {
            // Saturating: if accounting ever drifts, clamp to zero instead
            // of underflow-panicking the expiration pass.
            info.archived_rows = info.archived_rows.saturating_sub(removed_rows);
            info.archived_bytes = info.archived_bytes.saturating_sub(removed_bytes);
        }
        inner.tombstones.extend(expired.iter().cloned());
        inner.map_version += 1;
        expired
    }

    /// The current map version. Bumped whenever a path leaves the live map
    /// (expiration or compaction swap); a query that hits NotFound on a
    /// block can compare versions to recognise a stale plan.
    pub fn map_version(&self) -> u64 {
        self.inner.read().map_version
    }

    /// Whether `path` is currently in `tenant`'s live block map.
    pub fn is_block_mapped(&self, tenant: TenantId, path: &str) -> bool {
        self.inner
            .read()
            .blocks
            .get(&tenant)
            .is_some_and(|blocks| blocks.iter().any(|b| b.path == path))
    }

    /// Plans one compaction: verifies every source is currently mapped for
    /// `tenant` and allocates the merged block's path (as a pending
    /// intent). The sources stay live — a crash from here until the commit
    /// loses nothing but the (garbage-collected) merged upload.
    pub fn begin_compaction(&self, tenant: TenantId, sources: &[String]) -> Result<String> {
        if sources.len() < 2 {
            return Err(Error::invalid("compaction needs at least two source blocks"));
        }
        {
            let inner = self.inner.read();
            let blocks = inner
                .blocks
                .get(&tenant)
                .ok_or_else(|| Error::Stale(format!("tenant {tenant:?} has no blocks")))?;
            for src in sources {
                if !blocks.iter().any(|b| &b.path == src) {
                    return Err(Error::Stale(format!("source block {src} is no longer mapped")));
                }
            }
        }
        Ok(self.allocate_block_path(tenant))
    }

    /// Commits one compaction atomically: re-verifies the sources are
    /// still mapped (a concurrent expire or compact may have won), swaps
    /// them out for `merged` in one transaction, moves their paths to the
    /// tombstone list and bumps the map version. On a verification failure
    /// nothing changes — the caller aborts (tombstoning the merged path).
    pub fn commit_compaction(
        &self,
        tenant: TenantId,
        merged: LogBlockEntry,
        sources: &[String],
    ) -> Result<()> {
        if merged.min_ts > merged.max_ts {
            return Err(Error::invalid("block time range inverted"));
        }
        let mut inner = self.inner.write();
        let blocks = inner
            .blocks
            .get_mut(&tenant)
            .ok_or_else(|| Error::Stale(format!("tenant {tenant:?} has no blocks")))?;
        for src in sources {
            if !blocks.iter().any(|b| &b.path == src) {
                return Err(Error::Stale(format!("source block {src} is no longer mapped")));
            }
        }
        let (mut removed_rows, mut removed_bytes) = (0u64, 0u64);
        blocks.retain(|b| {
            if sources.contains(&b.path) {
                removed_rows += b.rows;
                removed_bytes += b.bytes;
                false
            } else {
                true
            }
        });
        let (path, rows, bytes) = (merged.path.clone(), merged.rows, merged.bytes);
        blocks.push(merged);
        if let Some(info) = inner.tenants.get_mut(&tenant) {
            info.archived_rows = info.archived_rows.saturating_sub(removed_rows) + rows;
            info.archived_bytes = info.archived_bytes.saturating_sub(removed_bytes) + bytes;
        }
        inner.pending_paths.remove(&path);
        inner.tombstones.extend(sources.iter().cloned());
        inner.map_version += 1;
        Ok(())
    }

    /// Aborts a planned compaction: the merged path (which may or may not
    /// have been uploaded) moves from pending to the tombstone list, so GC
    /// deletes whatever made it to OSS. Idempotent; a path that already
    /// committed is left alone.
    pub fn abort_compaction(&self, path: &str) {
        let mut inner = self.inner.write();
        if inner.pending_paths.remove(path) {
            inner.tombstones.insert(path.to_string());
        }
    }

    /// Snapshot of the tombstone list.
    pub fn tombstones(&self) -> Vec<String> {
        self.inner.read().tombstones.iter().cloned().collect()
    }

    /// Drops one tombstone after its object was deleted from OSS.
    pub fn remove_tombstone(&self, path: &str) {
        self.inner.write().tombstones.remove(path);
    }

    /// Snapshot of the pending (allocated, uncommitted) paths.
    pub fn pending_paths(&self) -> Vec<String> {
        self.inner.read().pending_paths.iter().cloned().collect()
    }

    /// Reclassifies pending paths as garbage: every pending path moves to
    /// the tombstone list. Only legal when no build is in flight (a crash
    /// left them behind); with live builds this is a no-op returning 0.
    pub fn sweep_stale_pending(&self) -> usize {
        let mut inner = self.inner.write();
        // Checked under the write lock: a build registers itself before
        // allocating, and allocation needs this lock — so a count of zero
        // here proves no live build owns any currently-pending path.
        if self.builds_in_flight.load(Ordering::SeqCst) != 0 {
            return 0;
        }
        let stale = std::mem::take(&mut inner.pending_paths);
        let swept = stale.len();
        inner.tombstones.extend(stale);
        swept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, min: i64, max: i64, rows: u64) -> LogBlockEntry {
        LogBlockEntry {
            path: path.to_string(),
            min_ts: Timestamp(min),
            max_ts: Timestamp(max),
            rows,
            bytes: rows * 100,
        }
    }

    #[test]
    fn register_and_prune_by_time() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("a", 0, 100, 10)).unwrap();
        m.register_block(t, entry("b", 101, 200, 10)).unwrap();
        m.register_block(t, entry("c", 201, 300, 10)).unwrap();
        let hits = m.blocks_for(t, TimeRange::new(Timestamp(150), Timestamp(250)));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].path, "b");
        assert_eq!(hits[1].path, "c");
        assert!(m.blocks_for(t, TimeRange::new(Timestamp(500), Timestamp(600))).is_empty());
        assert!(m.blocks_for(TenantId(9), TimeRange::all()).is_empty());
        assert_eq!(m.block_count(), 3);
    }

    #[test]
    fn tenant_isolation_in_paths() {
        let m = MetadataStore::new();
        let p1 = m.allocate_block_path(TenantId(1));
        let p2 = m.allocate_block_path(TenantId(2));
        assert!(p1.starts_with("tenants/1/"));
        assert!(p2.starts_with("tenants/2/"));
        assert_ne!(p1, p2);
    }

    #[test]
    fn billing_counters_accumulate() {
        let m = MetadataStore::new();
        let t = TenantId(3);
        m.register_block(t, entry("a", 0, 10, 100)).unwrap();
        m.register_block(t, entry("b", 11, 20, 50)).unwrap();
        let info = m.tenant_info(t);
        assert_eq!(info.archived_rows, 150);
        assert_eq!(info.archived_bytes, 15_000);
    }

    #[test]
    fn expiration_respects_retention_and_block_boundaries() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.set_retention(t, Some(100));
        m.register_block(t, entry("old", 0, 50, 10)).unwrap();
        m.register_block(t, entry("straddles", 60, 150, 10)).unwrap();
        m.register_block(t, entry("fresh", 160, 200, 10)).unwrap();
        let expired = m.expire(t, Timestamp(200));
        assert_eq!(expired, vec!["old"]); // cutoff = 100; only max_ts < 100
        assert_eq!(m.all_blocks(t).len(), 2);
        assert_eq!(m.tenant_info(t).archived_rows, 20);
    }

    #[test]
    fn no_retention_means_no_expiry() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("keep", 0, 1, 1)).unwrap();
        assert!(m.expire(t, Timestamp(i64::MAX)).is_empty());
        assert_eq!(m.all_blocks(t).len(), 1);
    }

    #[test]
    fn inverted_range_rejected() {
        let m = MetadataStore::new();
        assert!(m.register_block(TenantId(1), entry("bad", 10, 5, 1)).is_err());
    }

    #[test]
    fn expire_moves_paths_to_tombstones_and_bumps_version() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.set_retention(t, Some(100));
        m.register_block(t, entry("old", 0, 50, 10)).unwrap();
        m.register_block(t, entry("fresh", 160, 200, 10)).unwrap();
        let v0 = m.map_version();
        let expired = m.expire(t, Timestamp(200));
        assert_eq!(expired, vec!["old"]);
        assert_eq!(m.tombstones(), vec!["old"]);
        assert!(m.map_version() > v0, "removing a mapped path must bump the version");
        assert!(!m.is_block_mapped(t, "old"));
        assert!(m.is_block_mapped(t, "fresh"));
        // A no-op expire neither tombstones nor bumps.
        let v1 = m.map_version();
        assert!(m.expire(t, Timestamp(200)).is_empty());
        assert_eq!(m.map_version(), v1);
        m.remove_tombstone("old");
        assert!(m.tombstones().is_empty());
    }

    #[test]
    fn drifted_accounting_saturates_instead_of_panicking() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.set_retention(t, Some(10));
        m.register_block(t, entry("a", 0, 5, 10)).unwrap();
        // Simulate accounting drift: fewer rows on record than the block
        // claims. The expire pass must clamp, not underflow.
        m.inner.write().tenants.get_mut(&t).unwrap().archived_rows = 3;
        let expired = m.expire(t, Timestamp(1_000));
        assert_eq!(expired, vec!["a"]);
        assert_eq!(m.tenant_info(t).archived_rows, 0);
    }

    #[test]
    fn compaction_swap_is_atomic_and_tombstones_sources() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("a", 0, 10, 10)).unwrap();
        m.register_block(t, entry("b", 11, 20, 10)).unwrap();
        m.register_block(t, entry("c", 21, 30, 10)).unwrap();
        let sources = vec!["a".to_string(), "b".to_string()];
        let merged_path = m.begin_compaction(t, &sources).unwrap();
        assert!(m.pending_paths().contains(&merged_path));
        let v0 = m.map_version();
        let mut merged = entry("m", 0, 20, 20);
        merged.path = merged_path.clone();
        m.commit_compaction(t, merged, &sources).unwrap();
        assert!(!m.is_block_mapped(t, "a"));
        assert!(!m.is_block_mapped(t, "b"));
        assert!(m.is_block_mapped(t, "c"));
        assert!(m.is_block_mapped(t, &merged_path));
        assert_eq!(m.tombstones(), vec!["a".to_string(), "b".to_string()]);
        assert!(m.pending_paths().is_empty());
        assert!(m.map_version() > v0);
        // Row/byte accounting is preserved across the swap.
        assert_eq!(m.tenant_info(t).archived_rows, 30);
    }

    #[test]
    fn commit_compaction_detects_stale_sources() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.set_retention(t, Some(1));
        m.register_block(t, entry("a", 0, 10, 10)).unwrap();
        m.register_block(t, entry("b", 11, 20, 10)).unwrap();
        let sources = vec!["a".to_string(), "b".to_string()];
        let merged_path = m.begin_compaction(t, &sources).unwrap();
        // A concurrent expire wins the race and unmaps both sources.
        m.expire(t, Timestamp(10_000));
        let mut merged = entry("m", 0, 20, 20);
        merged.path = merged_path.clone();
        let err = m.commit_compaction(t, merged, &sources).unwrap_err();
        assert!(matches!(err, Error::Stale(_)), "expected Stale, got {err}");
        // Abort: the uploaded-but-never-committed merged object becomes a
        // tombstone so GC deletes it. Aborting twice is harmless.
        m.abort_compaction(&merged_path);
        m.abort_compaction(&merged_path);
        assert!(m.tombstones().contains(&merged_path));
        assert!(m.pending_paths().is_empty());
    }

    #[test]
    fn begin_compaction_rejects_unmapped_or_short_runs() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        m.register_block(t, entry("a", 0, 10, 10)).unwrap();
        assert!(m.begin_compaction(t, &["a".to_string()]).is_err());
        let err = m.begin_compaction(t, &["a".to_string(), "ghost".to_string()]).unwrap_err();
        assert!(matches!(err, Error::Stale(_)));
    }

    #[test]
    fn sweep_respects_in_flight_builds() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        let guard = m.begin_build();
        let path = m.allocate_block_path(t);
        assert_eq!(m.sweep_stale_pending(), 0, "live build's path must not be swept");
        assert!(m.tombstones().is_empty());
        drop(guard);
        assert_eq!(m.sweep_stale_pending(), 1);
        assert!(m.tombstones().contains(&path));
        assert!(m.pending_paths().is_empty());
    }

    #[test]
    fn committed_paths_leave_the_pending_set() {
        let m = MetadataStore::new();
        let t = TenantId(1);
        let path = m.allocate_block_path(t);
        let mut e = entry("x", 0, 10, 5);
        e.path = path.clone();
        m.register_block(t, e).unwrap();
        assert!(m.pending_paths().is_empty());
        assert_eq!(m.sweep_stale_pending(), 0);
    }
}
