//! Aggregation pushdown correctness and effect: pushing partial aggregate
//! states into the scan layer must be bit-identical to the
//! row-materializing transport plan — same rows, same `QueryStats` — for
//! every query shape, at every parallelism, with skipping on or off. The
//! engine-delta counters (`ExecutionCounters`) are where the two plans are
//! *allowed* to differ, and for aggregates they must: pushdown ships far
//! fewer partial-state bytes and pure COUNT decodes no value columns.

use logstore_core::{ClusterConfig, LogStore, QueryOptions};
use logstore_types::{LogRecord, TenantId, Timestamp, Value};

fn rec(t: u64, ts: i64, latency: i64, msg: &str) -> LogRecord {
    LogRecord::new(
        TenantId(t),
        Timestamp(ts),
        vec![
            Value::from(format!("10.0.{}.{}", ts % 200, latency % 250)),
            Value::from("/api/v1/users"),
            Value::I64(latency),
            Value::Bool(latency > 400),
            Value::from(msg.to_string()),
        ],
    )
}

/// Archived blocks for tenants 1 and 2 plus a real-time tail, so a query
/// scatters over block sources and row-store shards alike.
fn build_store(blocks: usize, rows_per_block: usize) -> LogStore {
    let mut config = ClusterConfig::for_testing();
    config.query_threads = 8;
    let s = LogStore::open(config).unwrap();
    for b in 0..blocks {
        let batch: Vec<LogRecord> = (0..rows_per_block)
            .map(|i| {
                let ts = (b * rows_per_block + i) as i64;
                rec(
                    1 + (ts % 2) as u64,
                    ts,
                    (ts * 7 + 13) % 600,
                    &format!("request {ts} served shard-{b} trace={:08x}", ts * 2654435761i64),
                )
            })
            .collect();
        s.ingest(batch).unwrap();
        s.flush().unwrap();
    }
    let tail_start = (blocks * rows_per_block) as i64;
    let tail: Vec<LogRecord> = (0..48)
        .map(|i| rec(1 + (i % 2) as u64, tail_start + i, (i * 11) % 600, &format!("fresh row {i}")))
        .collect();
    s.ingest(tail).unwrap();
    s
}

const AGG_QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM request_log WHERE tenant_id = 1",
    "SELECT COUNT(*), SUM(latency), MIN(latency), MAX(latency) FROM request_log WHERE tenant_id = 1",
    "SELECT COUNT(*) FROM request_log WHERE tenant_id = 1 AND fail = true",
    "SELECT ip, COUNT(*) FROM request_log WHERE tenant_id = 1 GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 10",
    "SELECT TIMEBUCKET(ts, 100), COUNT(*), MAX(latency) FROM request_log WHERE tenant_id = 1 GROUP BY TIMEBUCKET(ts, 100)",
    "SELECT SUM(latency) FROM request_log WHERE tenant_id = 2 AND latency >= 300",
];

const ROW_QUERIES: &[&str] = &[
    "SELECT log FROM request_log WHERE tenant_id = 1 AND latency >= 550",
    "SELECT log, latency FROM request_log WHERE tenant_id = 1 AND log CONTAINS 'shard-3'",
    "SELECT log FROM request_log WHERE tenant_id = 2 LIMIT 5",
    "SELECT ts, latency FROM request_log WHERE tenant_id = 1 ORDER BY latency DESC LIMIT 7",
];

#[test]
fn pushdown_bit_identical_to_row_transport() {
    let s = build_store(8, 64);
    assert!(s.block_count() >= 8, "need a wide scatter: {} blocks", s.block_count());
    for use_skipping in [true, false] {
        for sql in AGG_QUERIES.iter().chain(ROW_QUERIES) {
            let base = QueryOptions { use_skipping, ..QueryOptions::default() };
            let reference = s
                .query_with_options(
                    sql,
                    &QueryOptions { use_pushdown: false, ..base.clone() }.with_parallelism(1),
                )
                .unwrap();
            for parallelism in [1usize, 4, 0] {
                for use_pushdown in [true, false] {
                    let opts =
                        QueryOptions { use_pushdown, ..base.clone() }.with_parallelism(parallelism);
                    let exec = s.query_with_options(sql, &opts).unwrap();
                    assert_eq!(
                        exec.result, reference.result,
                        "rows diverged for {sql:?} with {opts:?}"
                    );
                    assert_eq!(
                        exec.stats, reference.stats,
                        "stats diverged for {sql:?} with {opts:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn pushdown_ships_fewer_partial_bytes() {
    let s = build_store(8, 64);
    for sql in AGG_QUERIES {
        let on = s.query_with_options(sql, &QueryOptions::default()).unwrap();
        let off = s
            .query_with_options(
                sql,
                &QueryOptions { use_pushdown: false, ..QueryOptions::default() },
            )
            .unwrap();
        assert_eq!(on.result, off.result);
        // GROUP BY ip has near-row group cardinality in this dataset, so a
        // per-group AggState can outweigh one short row — pushdown stays
        // bit-identical there but is not a transport win. Every
        // low-cardinality aggregate must shrink.
        if sql.contains("GROUP BY ip") {
            continue;
        }
        assert!(
            on.counters.partial_bytes < off.counters.partial_bytes,
            "pushdown must shrink transported partials for {sql:?}: {} vs {}",
            on.counters.partial_bytes,
            off.counters.partial_bytes
        );
    }
    // The wide ungrouped aggregate moves >=10x fewer bytes once blocks are
    // big enough to amortize the fixed per-source AggState overhead: a
    // handful of states versus every matched row of the input column.
    let s = build_store(8, 256);
    let sql = AGG_QUERIES[1];
    let on = s.query_with_options(sql, &QueryOptions::default()).unwrap();
    let off = s
        .query_with_options(sql, &QueryOptions { use_pushdown: false, ..QueryOptions::default() })
        .unwrap();
    assert!(
        on.counters.partial_bytes * 10 <= off.counters.partial_bytes,
        "expected >=10x transport reduction for {sql:?}: {} vs {}",
        on.counters.partial_bytes,
        off.counters.partial_bytes
    );
}

#[test]
fn pure_count_decodes_no_value_columns() {
    let s = build_store(6, 64);
    // An unpredicated COUNT(*) needs no column data at all: matching row
    // ids come from the block metadata, the count from the id set.
    let sql = "SELECT COUNT(*) FROM request_log WHERE tenant_id = 1";
    let exec = s.query_with_options(sql, &QueryOptions::default()).unwrap();
    assert_eq!(exec.counters.decode.rows_decoded, 0, "pure COUNT must not decode columns");
    assert_eq!(exec.counters.decode.bytes_decoded, 0);

    // The same COUNT under the row-transport plan pays for materialization.
    let off = s
        .query_with_options(sql, &QueryOptions { use_pushdown: false, ..QueryOptions::default() })
        .unwrap();
    assert_eq!(off.result, exec.result);

    // A predicated COUNT decodes only the predicate column, batch-wise.
    let pred = "SELECT COUNT(*) FROM request_log WHERE tenant_id = 1 AND latency > 300";
    let pexec = s.query_with_options(pred, &QueryOptions::default()).unwrap();
    assert!(pexec.counters.decode.batches_evaluated > 0, "predicate must run vectorized");
    assert!(pexec.counters.decode.rows_decoded > 0);
}

#[test]
fn limit_short_circuit_cuts_decoded_rows() {
    let s = build_store(8, 64);
    let limited = "SELECT log FROM request_log WHERE tenant_id = 1 LIMIT 3";
    let full = "SELECT log FROM request_log WHERE tenant_id = 1";
    let lim = s.query_with_options(limited, &QueryOptions::default()).unwrap();
    let all = s.query_with_options(full, &QueryOptions::default()).unwrap();
    assert_eq!(lim.result.rows.len(), 3);
    assert_eq!(&lim.result.rows[..], &all.result.rows[..3], "LIMIT must be a prefix");
    assert!(
        lim.counters.partial_bytes < all.counters.partial_bytes,
        "per-source early-out must ship fewer rows: {} vs {}",
        lim.counters.partial_bytes,
        all.counters.partial_bytes
    );

    // ORDER BY disables the early-out; the result must still be correct.
    let ordered = "SELECT ts FROM request_log WHERE tenant_id = 1 ORDER BY ts DESC LIMIT 3";
    let oexec = s.query_with_options(ordered, &QueryOptions::default()).unwrap();
    assert_eq!(oexec.result.rows.len(), 3);
    let tss: Vec<i64> = oexec
        .result
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::I64(ts) => *ts,
            other => panic!("expected I64 ts, got {other:?}"),
        })
        .collect();
    assert!(tss.windows(2).all(|w| w[0] >= w[1]), "ORDER BY DESC violated: {tss:?}");
}
