//! Scatter/gather correctness: parallel query execution must be
//! bit-identical to the sequential reference path — same rows, same
//! stats — at every parallelism setting, under every cache/skipping
//! configuration, and under fault injection (errors surface, wrong data
//! never does).

use logstore_core::{ClusterConfig, LogStore, QueryOptions};
use logstore_oss::LatencyModel;
use logstore_types::{LogRecord, TenantId, Timestamp, Value};

fn rec(t: u64, ts: i64, latency: i64, msg: &str) -> LogRecord {
    LogRecord::new(
        TenantId(t),
        Timestamp(ts),
        vec![
            Value::from(format!("10.0.{}.{}", ts % 200, latency % 250)),
            Value::from("/api/v1/users"),
            Value::I64(latency),
            Value::Bool(latency > 400),
            Value::from(msg.to_string()),
        ],
    )
}

/// Builds a store holding at least `blocks` archived LogBlocks for tenant
/// 1 plus a real-time tail, so queries genuinely scatter over many
/// sources.
fn build_store(mut config: ClusterConfig, blocks: usize, rows_per_block: usize) -> LogStore {
    config.query_threads = 8;
    let s = LogStore::open(config).unwrap();
    for b in 0..blocks {
        let batch: Vec<LogRecord> = (0..rows_per_block)
            .map(|i| {
                let ts = (b * rows_per_block + i) as i64;
                rec(
                    1,
                    ts,
                    (ts * 7 + 13) % 600,
                    &format!("request {ts} served shard-{b} trace={:08x}", ts * 2654435761i64),
                )
            })
            .collect();
        s.ingest(batch).unwrap();
        s.flush().unwrap();
    }
    // Real-time tail: rows that live only in the shards' row stores.
    let tail_start = (blocks * rows_per_block) as i64;
    let tail: Vec<LogRecord> = (0..40)
        .map(|i| rec(1, tail_start + i, (i * 11) % 600, &format!("fresh row {i}")))
        .collect();
    s.ingest(tail).unwrap();
    s
}

const QUERIES: &[&str] = &[
    "SELECT log FROM request_log WHERE tenant_id = 1",
    "SELECT log FROM request_log WHERE tenant_id = 1 AND latency >= 300",
    "SELECT log, latency FROM request_log WHERE tenant_id = 1 AND log CONTAINS 'shard-3'",
    "SELECT COUNT(*) FROM request_log WHERE tenant_id = 1 AND fail = true",
    "SELECT ip, COUNT(*) FROM request_log WHERE tenant_id = 1 GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 10",
];

#[test]
fn parallel_results_bit_identical_to_sequential() {
    let s = build_store(ClusterConfig::for_testing(), 8, 64);
    assert!(s.block_count() >= 8, "need a wide scatter: {} blocks", s.block_count());
    let configs = [
        QueryOptions::default(),
        QueryOptions { use_prefetch: false, ..QueryOptions::default() },
        QueryOptions { use_skipping: false, ..QueryOptions::default() },
        QueryOptions { use_cache: false, use_prefetch: false, ..QueryOptions::default() },
    ];
    for opts in &configs {
        for sql in QUERIES {
            let reference = s.query_with_options(sql, &opts.clone().with_parallelism(1)).unwrap();
            // 0 = auto (the engine pool's width).
            for parallelism in [4usize, 8, 0] {
                let exec =
                    s.query_with_options(sql, &opts.clone().with_parallelism(parallelism)).unwrap();
                assert_eq!(
                    exec.result, reference.result,
                    "rows diverged at parallelism {parallelism} for {sql:?} with {opts:?}"
                );
                assert_eq!(
                    exec.stats, reference.stats,
                    "stats diverged at parallelism {parallelism} for {sql:?} with {opts:?}"
                );
            }
        }
    }
}

#[test]
fn results_identical_at_any_cache_shard_count() {
    // The sharded cache + coalesced read path must be invisible to query
    // results: every (cache_shards, parallelism) combination returns the
    // byte-identical rows and stats of a 1-shard sequential run. A small
    // cache block size makes one LogBlock span many blocks, so the
    // coalescing planner genuinely runs.
    let mut reference: Option<Vec<_>> = None;
    for shards in [1usize, 4] {
        let mut config = ClusterConfig::for_testing();
        config.cache_shards = shards;
        config.cache_block_size = 2048;
        let s = build_store(config, 6, 64);
        let mut runs = Vec::new();
        for sql in QUERIES {
            let sequential =
                s.query_with_options(sql, &QueryOptions::default().with_parallelism(1)).unwrap();
            s.clear_cache();
            let parallel =
                s.query_with_options(sql, &QueryOptions::default().with_parallelism(8)).unwrap();
            assert_eq!(
                parallel.result, sequential.result,
                "rows diverged at cache_shards={shards} for {sql:?}"
            );
            assert_eq!(
                parallel.stats, sequential.stats,
                "stats diverged at cache_shards={shards} for {sql:?}"
            );
            runs.push(sequential.result);
        }
        match &reference {
            None => reference = Some(runs),
            Some(reference) => {
                assert_eq!(&runs, reference, "results changed between shard counts");
            }
        }
    }
}

#[test]
fn cold_scans_coalesce_origin_gets() {
    // With small cache blocks, a cold column scan touches long runs of
    // adjacent blocks; the coalesced demand path must fetch each run with
    // one GET instead of one per block, and the query must surface that in
    // its cache-stats delta.
    let mut config = ClusterConfig::for_testing();
    config.cache_block_size = 1024;
    let s = build_store(config, 1, 400);

    let sql = "SELECT log FROM request_log WHERE tenant_id = 1";
    let opts = QueryOptions { use_prefetch: false, ..QueryOptions::default() }.with_parallelism(1);
    let cold = s.query_with_options(sql, &opts).unwrap();
    assert!(cold.cache.misses > 4, "small blocks must produce many cold misses");
    assert!(cold.cache.coalesced_gets > 0, "adjacent cold blocks must coalesce: {:?}", cold.cache);
    assert!(cold.cache.bytes_from_origin > 0);
    // Strictly fewer origin round-trips than cold blocks fetched.
    let oss_gets = s.oss_metrics().get_requests;
    assert!(
        oss_gets < cold.cache.misses,
        "coalescing must save round-trips: {oss_gets} GETs for {} cold blocks",
        cold.cache.misses
    );

    // A warm rerun is all memory hits: no new origin traffic.
    let warm = s.query_with_options(sql, &opts).unwrap();
    assert_eq!(warm.cache.misses, 0, "warm scan must not refetch: {:?}", warm.cache);
    assert_eq!(warm.cache.bytes_from_origin, 0);
    assert!(warm.cache.memory_hits > 0);
    assert_eq!(warm.result, cold.result);
}

#[test]
fn faults_surface_as_errors_never_as_wrong_data() {
    let s = build_store(ClusterConfig::for_testing(), 4, 32);
    let opts = QueryOptions { use_cache: false, use_prefetch: false, ..QueryOptions::default() }
        .with_parallelism(4);
    let sql = "SELECT log FROM request_log WHERE tenant_id = 1";
    let correct = s.query_with_options(sql, &opts).unwrap();

    // Every read goes straight to OSS on this path, so a scheduled fault
    // must fail the query — a partial result would be wrong data.
    for faults in [1u64, 3] {
        s.shared().fault_layer().fail_next(faults);
        let err = s.query_with_options(sql, &opts).unwrap_err();
        assert!(err.to_string().contains("injected oss fault"), "unexpected error: {err}");
        s.shared().fault_layer().clear_faults();
    }
    assert!(s.shared().fault_layer().injected() >= 2);

    // With the faults cleared the same query is whole again.
    let after = s.query_with_options(sql, &opts).unwrap();
    assert_eq!(after.result, correct.result);
    assert_eq!(after.stats, correct.stats);
}

#[test]
fn prefetch_fault_degrades_to_demand_reads() {
    // Small cache blocks so one LogBlock spans many of them and the
    // prefetch wave issues real per-block GETs.
    let mut config = ClusterConfig::for_testing();
    config.cache_block_size = 1024;
    let s = build_store(config, 1, 400);

    // Warm the footer/meta/latency blocks; the `log` column stays cold.
    let warm = QueryOptions { use_prefetch: false, ..QueryOptions::default() }.with_parallelism(1);
    s.query_with_options("SELECT latency FROM request_log WHERE tenant_id = 1", &warm).unwrap();

    // The cold `log` column is now the first thing the next query touches
    // the store for — via its prefetch wave. One scheduled fault lands on
    // a wave GET; the wave must absorb it (counted, non-fatal) and the
    // scan must fall through to a demand read for the missing block.
    let sql = "SELECT log FROM request_log WHERE tenant_id = 1";
    let injected_before = s.shared().fault_layer().injected();
    s.shared().fault_layer().fail_next(1);
    let degraded = s.query_with_options(sql, &QueryOptions::default().with_parallelism(1)).unwrap();
    assert_eq!(s.shared().fault_layer().injected(), injected_before + 1, "fault must fire");
    assert_eq!(degraded.stats.prefetch_errors, 1, "wave failure must be counted");

    // Same query with nothing scheduled: identical rows, zero errors.
    let clean = s.query_with_options(sql, &QueryOptions::default().with_parallelism(1)).unwrap();
    assert_eq!(clean.stats.prefetch_errors, 0);
    assert_eq!(degraded.result, clean.result, "degraded wave must not change results");
    assert_eq!(degraded.result.rows.len(), 440);
}

#[test]
fn scatter_speedup_scales_with_parallelism() {
    // Real (slept) per-request latency makes source collection I/O-bound:
    // the 8-way scatter over >=8 blocks must beat the sequential path by
    // a wide margin while returning the same bytes.
    let mut config = ClusterConfig::for_testing();
    let mut model = LatencyModel::zero();
    model.base_latency_us = 2_000;
    model.time_scale = 1.0;
    config.oss_latency = model;
    let s = build_store(config, 8, 48);
    assert!(s.block_count() >= 8);

    let opts = QueryOptions { use_cache: false, use_prefetch: false, ..QueryOptions::default() };
    let sql = "SELECT log FROM request_log WHERE tenant_id = 1";
    let sequential = s.query_with_options(sql, &opts.clone().with_parallelism(1)).unwrap();
    let parallel = s.query_with_options(sql, &opts.clone().with_parallelism(8)).unwrap();

    assert_eq!(parallel.result, sequential.result);
    assert_eq!(parallel.stats, sequential.stats);
    assert!(
        parallel.wall < sequential.wall.mul_f64(0.7),
        "8-way scatter should be well under the sequential wall clock: \
         parallel {:?} vs sequential {:?}",
        parallel.wall,
        sequential.wall
    );
}
