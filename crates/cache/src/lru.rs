//! Size-aware LRU map.
//!
//! Both cache tiers bound *bytes*, not entry counts — a handful of large
//! column blocks must not evict hundreds of small metadata objects by
//! count alone. Recency is tracked with a monotonic tick and a BTreeMap
//! recency index (O(log n) per op). Classic intrusive-list LRUs buy O(1)
//! recency updates with unsafe pointer chasing; this one deliberately
//! doesn't — the crate is `#![forbid(unsafe_code)]` (enforced by
//! `xtask lint`), and the BTreeMap index keeps every op safe at a cost
//! that disappears into the surrounding OSS latencies.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// An LRU map bounded by the sum of entry sizes.
#[derive(Debug)]
pub struct SizedLru<K, V> {
    capacity_bytes: usize,
    used_bytes: usize,
    tick: u64,
    entries: HashMap<K, (V, usize, u64)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> SizedLru<K, V> {
    /// Creates a cache holding at most `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        SizedLru {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Configured capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn touch(&mut self, key: &K) {
        if let Some((_, _, t)) = self.entries.get_mut(key) {
            self.recency.remove(t);
            self.tick += 1;
            *t = self.tick;
            self.recency.insert(self.tick, key.clone());
        }
    }

    /// Looks up a key, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.entries.contains_key(key) {
            self.touch(key);
        }
        self.entries.get(key).map(|(v, _, _)| v)
    }

    /// True if the key is cached (does not refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts an entry of `size` bytes, evicting LRU entries as needed.
    /// Returns the evicted `(key, value)` pairs (the memory tier spills
    /// these to the disk tier).
    ///
    /// An entry larger than the whole capacity is not admitted (it is
    /// returned in the eviction list immediately) — avoiding the pathology
    /// where one oversized block flushes the entire cache for nothing.
    pub fn put(&mut self, key: K, value: V, size: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        if size > self.capacity_bytes {
            evicted.push((key, value));
            return evicted;
        }
        // A replaced value is dropped in place, not spilled.
        if let Some((_, old_size, old_tick)) = self.entries.remove(&key) {
            self.recency.remove(&old_tick);
            self.used_bytes -= old_size;
        }
        while self.used_bytes + size > self.capacity_bytes {
            let Some((_, old_key)) = self.recency.pop_first() else { break };
            if let Some((v, s, _)) = self.entries.remove(&old_key) {
                self.used_bytes -= s;
                evicted.push((old_key, v));
            }
        }
        self.tick += 1;
        self.entries.insert(key.clone(), (value, size, self.tick));
        self.recency.insert(self.tick, key);
        self.used_bytes += size;
        evicted
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (v, size, tick) = self.entries.remove(key)?;
        self.recency.remove(&tick);
        self.used_bytes -= size;
        Some(v)
    }

    /// Removes every entry whose key matches `pred`, returning the removed
    /// pairs (the disk tier deletes their backing files). Used to evict
    /// all blocks of one OSS object when the object is garbage-collected.
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> Vec<(K, V)> {
        let keys: Vec<K> = self.entries.keys().filter(|k| pred(k)).cloned().collect();
        keys.into_iter().filter_map(|k| self.remove(&k).map(|v| (k, v))).collect()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut lru = SizedLru::new(100);
        assert!(lru.put("a", 1, 10).is_empty());
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.used_bytes(), 10);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_is_lru_ordered() {
        let mut lru = SizedLru::new(30);
        lru.put("a", 1, 10);
        lru.put("b", 2, 10);
        lru.put("c", 3, 10);
        // Touch "a" so "b" is the LRU victim.
        lru.get(&"a");
        let evicted = lru.put("d", 4, 10);
        assert_eq!(evicted, vec![("b", 2)]);
        assert!(lru.contains(&"a") && lru.contains(&"c") && lru.contains(&"d"));
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let mut lru = SizedLru::new(10);
        lru.put("keep", 1, 5);
        let evicted = lru.put("huge", 2, 100);
        assert_eq!(evicted, vec![("huge", 2)]);
        assert!(lru.contains(&"keep"), "oversized insert must not flush cache");
    }

    #[test]
    fn replacing_updates_size() {
        let mut lru = SizedLru::new(100);
        lru.put("a", 1, 60);
        lru.put("a", 2, 10);
        assert_eq!(lru.used_bytes(), 10);
        assert_eq!(lru.get(&"a"), Some(&2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn multiple_evictions_for_one_large_insert() {
        let mut lru = SizedLru::new(30);
        lru.put("a", 1, 10);
        lru.put("b", 2, 10);
        lru.put("c", 3, 10);
        let evicted = lru.put("big", 9, 25);
        assert_eq!(evicted.len(), 3);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.used_bytes(), 25);
    }

    #[test]
    fn remove_and_clear() {
        let mut lru = SizedLru::new(100);
        lru.put("a", 1, 10);
        assert_eq!(lru.remove(&"a"), Some(1));
        assert_eq!(lru.remove(&"a"), None);
        lru.put("b", 2, 10);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.used_bytes(), 0);
    }

    #[test]
    fn stress_against_capacity_invariant() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut lru = SizedLru::new(1000);
        for i in 0..10_000u32 {
            let key = rng.gen_range(0..500u32);
            let size = rng.gen_range(1..200usize);
            lru.put(key, i, size);
            assert!(lru.used_bytes() <= 1000, "capacity invariant violated");
        }
        assert!(!lru.is_empty());
    }
}
