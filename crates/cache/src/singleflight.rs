//! Per-key miss deduplication ("singleflight").
//!
//! When N threads miss the same cache block at once, exactly one of them —
//! the *leader* — performs the high-latency origin fetch; the others block
//! on the leader's flight and receive its result. This is the concurrency
//! half of the paper's "repeated data block read IO requests will be
//! merged": the prefetcher and demand reads share one table, so a prefetch
//! wave and a demand read for the same block never duplicate work.
//!
//! Errors propagate to every waiter and are never cached: a failed flight
//! is removed from the table before its result is published, so the next
//! arrival starts a fresh attempt.

use logstore_sync::{OrderedCondvar, OrderedMutex};
use logstore_types::{Error, Result};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// One in-flight fetch: the leader publishes into `slot` and wakes waiters.
struct Flight<V> {
    slot: OrderedMutex<Option<Result<V, Arc<Error>>>>,
    done: OrderedCondvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            slot: OrderedMutex::new("cache.singleflight.slot", None),
            done: OrderedCondvar::new("cache.singleflight.done"),
        }
    }
}

/// How a [`SingleFlight::run`] call obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// This call performed the work itself.
    Led,
    /// This call blocked on another caller's flight.
    Waited,
}

/// A table of in-flight fetches, keyed by cache key.
pub struct SingleFlight<K, V> {
    table: OrderedMutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        SingleFlight { table: OrderedMutex::new("cache.singleflight.table", HashMap::new()) }
    }

    /// Number of keys currently in flight (tests / introspection).
    pub fn in_flight(&self) -> usize {
        self.table.lock().len()
    }

    /// True if `key` has a flight in progress right now. Racy by nature —
    /// callers may only use it as a heuristic (e.g. to stop extending a
    /// coalesced run at a block someone else is already fetching).
    pub fn is_in_flight(&self, key: &K) -> bool {
        self.table.lock().contains_key(key)
    }

    /// Runs `work` for `key`, deduplicating against concurrent calls: the
    /// first caller becomes the leader and executes `work`; callers that
    /// arrive while the flight is open block and share the leader's result.
    ///
    /// The leader's entry is removed from the table *before* the result is
    /// published, so an error is observed exactly by the leader and the
    /// waiters already enqueued — never by later arrivals, which retry
    /// fresh. If the leader's `work` panics, waiters receive an
    /// [`Error::Internal`] instead of blocking forever.
    pub fn run(&self, key: K, work: impl FnOnce() -> Result<V>) -> (Result<V>, FlightRole) {
        let flight = {
            let mut table = self.table.lock();
            match table.entry(key.clone()) {
                Entry::Occupied(e) => {
                    let flight = Arc::clone(e.get());
                    drop(table);
                    let mut slot = flight.slot.lock();
                    while slot.is_none() {
                        flight.done.wait(&mut slot);
                    }
                    let result = match slot.as_ref().expect("flight published") {
                        Ok(v) => Ok(v.clone()),
                        Err(e) => Err(share_error(e)),
                    };
                    return (result, FlightRole::Waited);
                }
                Entry::Vacant(e) => {
                    let flight = Arc::new(Flight::new());
                    e.insert(Arc::clone(&flight));
                    flight
                }
            }
        };

        // Leader path. The guard keeps waiters from hanging if `work`
        // panics: it closes the flight with an internal error on unwind.
        let guard = FlightGuard { owner: self, key, flight: &flight, done: false };
        let result = work();
        guard.finish(match &result {
            Ok(v) => Ok(v.clone()),
            Err(e) => Err(Arc::new(share_error(e))),
        });
        (result, FlightRole::Led)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Removes the leader's table entry and publishes its result — or, if the
/// leader unwinds without finishing, publishes an internal error so the
/// waiters wake instead of blocking forever.
struct FlightGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    owner: &'a SingleFlight<K, V>,
    key: K,
    flight: &'a Arc<Flight<V>>,
    done: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> FlightGuard<'_, K, V> {
    fn publish(&self, result: Result<V, Arc<Error>>) {
        self.owner.table.lock().remove(&self.key);
        *self.flight.slot.lock() = Some(result);
        self.flight.done.notify_all();
    }

    fn finish(mut self, result: Result<V, Arc<Error>>) {
        self.publish(result);
        self.done = true;
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.done {
            self.publish(Err(Arc::new(Error::Internal(
                "singleflight leader panicked before publishing".into(),
            ))));
        }
    }
}

/// Structural copy of an [`Error`] for fan-out to waiters ([`Error`] itself
/// is not `Clone` because of the `Io` variant).
pub fn share_error(e: &Error) -> Error {
    match e {
        Error::Io(io) => Error::Io(std::io::Error::new(io.kind(), io.to_string())),
        Error::Corruption(m) => Error::Corruption(m.clone()),
        Error::NotFound(m) => Error::NotFound(m.clone()),
        Error::InvalidArgument(m) => Error::InvalidArgument(m.clone()),
        Error::Parse(m) => Error::Parse(m.clone()),
        Error::Query(m) => Error::Query(m.clone()),
        Error::Backpressure(m) => Error::Backpressure(m.clone()),
        Error::Raft(m) => Error::Raft(m.clone()),
        Error::Cluster(m) => Error::Cluster(m.clone()),
        Error::Stale(m) => Error::Stale(m.clone()),
        Error::Shutdown => Error::Shutdown,
        Error::Internal(m) => Error::Internal(m.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn solo_caller_leads() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (result, role) = sf.run(1, || Ok(42));
        assert_eq!(result.unwrap(), 42);
        assert_eq!(role, FlightRole::Led);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn concurrent_callers_share_one_execution() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(16));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let sf = Arc::clone(&sf);
            let executions = Arc::clone(&executions);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let (result, role) = sf.run(7, || {
                    executions.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for others to queue.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Ok(99)
                });
                (result.unwrap(), role)
            }));
        }
        let outcomes: Vec<(u32, FlightRole)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(outcomes.iter().all(|(v, _)| *v == 99));
        let leaders = outcomes.iter().filter(|(_, r)| *r == FlightRole::Led).count();
        // Threads serialized behind the 20 ms flight join it; a straggler
        // arriving after completion leads its own (still just re-running
        // the closure, which in the cache hits memory). With the barrier,
        // at least one waits and executions stay far below 16.
        assert!(leaders >= 1);
        assert!(executions.load(Ordering::SeqCst) <= leaders);
        assert!(outcomes.iter().any(|(_, r)| *r == FlightRole::Waited));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(4));
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..4u32)
            .map(|k| {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    sf.run(k, || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(k)
                    })
                    .0
                    .unwrap()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "distinct keys must fly concurrently"
        );
    }

    #[test]
    fn errors_are_not_sticky() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (result, _) = sf.run(3, || Err(Error::NotFound("gone".into())));
        assert!(result.is_err());
        assert_eq!(sf.in_flight(), 0, "failed flight must leave the table");
        let (result, _) = sf.run(3, || Ok(5));
        assert_eq!(result.unwrap(), 5);
    }

    #[test]
    fn share_error_preserves_variant_and_message() {
        let shared = share_error(&Error::Io(std::io::Error::other("disk on fire")));
        assert!(matches!(&shared, Error::Io(e) if e.to_string().contains("disk on fire")));
        assert!(matches!(share_error(&Error::Shutdown), Error::Shutdown));
        let c = share_error(&Error::corruption("bad crc"));
        assert!(matches!(&c, Error::Corruption(m) if m == "bad crc"));
    }

    #[test]
    fn leader_panic_unblocks_waiters() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        let waiter = {
            let sf = Arc::clone(&sf);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Give the leader time to enter its flight.
                std::thread::sleep(std::time::Duration::from_millis(10));
                sf.run(1, || Ok(1)).0
            })
        };
        let leader = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || {
                let _ = sf.run(1, || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("leader died");
                });
            })
        };
        assert!(leader.join().is_err(), "leader must panic");
        // The waiter either joined the doomed flight (internal error) or
        // arrived after it closed and led a fresh, successful run.
        match waiter.join().unwrap() {
            Ok(v) => assert_eq!(v, 1),
            Err(e) => assert!(e.to_string().contains("singleflight leader panicked"), "{e}"),
        }
        assert_eq!(sf.in_flight(), 0);
    }
}
