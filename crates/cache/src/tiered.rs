//! The multi-level block cache (paper Fig 9), built for concurrency.
//!
//! Memory tier → disk (SSD) tier → origin. Memory evictions spill to disk
//! ("when its size exceeds the threshold, the memory cache will spill to
//! the SSD block cache"); disk hits are promoted back to memory.
//!
//! Three mechanisms make the read path scale under parallel queries:
//!
//! * **Sharded tiers** — each tier's [`SizedLru`] is split into 2^k
//!   hash-sharded shards with a per-shard mutex and a per-shard byte
//!   budget, so parallel scans stop serializing on one global lock;
//! * **Singleflight** — a per-key in-flight table dedups concurrent misses:
//!   N readers of the same cold block perform exactly one origin GET
//!   (errors propagate to all waiters and are never cached). The
//!   prefetcher and demand reads share this table;
//! * **Coalesced runs** — [`TieredCache::get_or_fetch_run`] fetches a
//!   contiguous run of cold blocks with one origin range GET instead of
//!   one GET per block.

use crate::lru::SizedLru;
use crate::singleflight::{FlightRole, SingleFlight};
use logstore_codec::crc::crc32c;
use logstore_sync::OrderedMutex;
use logstore_types::{Error, Result};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache block key: one aligned byte range of one object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Object path on OSS.
    pub path: String,
    /// Aligned block offset.
    pub offset: u64,
}

/// A coalesced origin fetch: given a contiguous run of `(offset, len)`
/// blocks, returns one buffer per requested block (see
/// `logstore_oss::ObjectStore::get_block_run`).
pub type FetchRunFn<'a> = dyn Fn(&[(u64, u64)]) -> Result<Vec<Vec<u8>>> + 'a;

/// What a run-flight leader hands back: the first block plus the tail of
/// blocks its coalesced GET also covered.
type LedRun = (Arc<Vec<u8>>, Vec<Arc<Vec<u8>>>);

/// Hit/miss and concurrency counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Served from the memory tier.
    pub memory_hits: u64,
    /// Served from the disk tier.
    pub disk_hits: u64,
    /// Fetched from the origin.
    pub misses: u64,
    /// Bytes fetched from the origin (demand + prefetch alike).
    pub bytes_from_origin: u64,
    /// Origin range GETs that covered more than one aligned block — each
    /// saved at least one round-trip over per-block fetching.
    pub coalesced_gets: u64,
    /// Lookups that blocked on another reader's in-flight fetch instead of
    /// issuing their own origin GET (the thundering-herd savings).
    pub singleflight_waits: u64,
    /// Disk-tier spill writes that failed. Non-fatal by design: a cache
    /// write can never fail a read.
    pub spill_failures: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses
    }

    /// Any-tier hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / lookups as f64
        }
    }

    /// Counter increments since `earlier` (counters are monotonic, so a
    /// plain saturating field-wise subtraction).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.saturating_sub(earlier.memory_hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_from_origin: self.bytes_from_origin.saturating_sub(earlier.bytes_from_origin),
            coalesced_gets: self.coalesced_gets.saturating_sub(earlier.coalesced_gets),
            singleflight_waits: self.singleflight_waits.saturating_sub(earlier.singleflight_waits),
            spill_failures: self.spill_failures.saturating_sub(earlier.spill_failures),
        }
    }
}

/// Rounds a requested shard count up to a power of two (minimum 1), so
/// shard selection is a mask instead of a modulo.
fn shard_count(requested: usize) -> usize {
    requested.max(1).next_power_of_two()
}

/// Stable per-process shard selector for a key.
fn shard_of(key: &BlockKey, mask: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & mask
}

/// Splits a byte budget across shards, keeping the total within capacity.
fn per_shard_budget(capacity_bytes: usize, shards: usize) -> usize {
    capacity_bytes / shards
}

/// The in-memory tier: 2^k hash-sharded [`SizedLru`]s.
pub struct MemoryBlockCache {
    // One shared label for the whole pool: shards are hash-selected and a
    // thread never holds two at once (the lock analysis would flag it).
    shards: Vec<OrderedMutex<SizedLru<BlockKey, Arc<Vec<u8>>>>>,
    mask: usize,
}

impl MemoryBlockCache {
    /// Creates a single-shard tier bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::new_sharded(capacity_bytes, 1)
    }

    /// Creates a tier of `shards` (rounded up to a power of two) shards
    /// splitting `capacity_bytes` evenly.
    pub fn new_sharded(capacity_bytes: usize, shards: usize) -> Self {
        let n = shard_count(shards);
        let budget = per_shard_budget(capacity_bytes, n);
        MemoryBlockCache {
            shards: (0..n)
                .map(|_| OrderedMutex::new("cache.memory.shard", SizedLru::new(budget)))
                .collect(),
            mask: n - 1,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a block.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Vec<u8>>> {
        self.shards[shard_of(key, self.mask)].lock().get(key).cloned()
    }

    /// True if the block is cached (no recency refresh — used by the
    /// coalescing planner, which must not perturb LRU order or stats).
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.shards[shard_of(key, self.mask)].lock().contains(key)
    }

    /// Inserts a block, returning spilled evictions from its shard.
    pub fn put(&self, key: BlockKey, data: Arc<Vec<u8>>) -> Vec<(BlockKey, Arc<Vec<u8>>)> {
        let size = data.len();
        self.shards[shard_of(&key, self.mask)].lock().put(key, data, size)
    }

    /// Bytes held across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Drops every block of one object (the object was deleted from OSS).
    pub fn evict_object(&self, path: &str) -> usize {
        self.shards.iter().map(|s| s.lock().remove_matching(|k| k.path == path).len()).sum()
    }

    /// Drops everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// A disk-tier index entry: where the block lives and what its bytes must
/// look like. Length and CRC are validated on every read so a truncated or
/// corrupted SSD file is treated as a miss, never served as data.
#[derive(Debug, Clone)]
struct DiskEntry {
    file: PathBuf,
    len: usize,
    crc: u32,
}

/// The on-disk (SSD) tier: one file per cached block under a root dir, with
/// a sharded in-memory LRU index whose evictions delete files.
pub struct DiskBlockCache {
    root: PathBuf,
    shards: Vec<OrderedMutex<SizedLru<BlockKey, DiskEntry>>>,
    mask: usize,
    seq: AtomicU64,
}

impl DiskBlockCache {
    /// Opens (creating) a single-shard disk tier bounded to `capacity_bytes`.
    pub fn open(root: impl AsRef<Path>, capacity_bytes: usize) -> Result<Self> {
        Self::open_sharded(root, capacity_bytes, 1)
    }

    /// Opens (creating) a disk tier of `shards` (rounded up to a power of
    /// two) index shards splitting `capacity_bytes` evenly.
    pub fn open_sharded(
        root: impl AsRef<Path>,
        capacity_bytes: usize,
        shards: usize,
    ) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let n = shard_count(shards);
        let budget = per_shard_budget(capacity_bytes, n);
        Ok(DiskBlockCache {
            root,
            shards: (0..n)
                .map(|_| OrderedMutex::new("cache.disk.shard", SizedLru::new(budget)))
                .collect(),
            mask: n - 1,
            seq: AtomicU64::new(0),
        })
    }

    /// Number of index shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a block, reading and validating its file. A vanished,
    /// truncated or corrupted file is a miss: the index entry is evicted
    /// and the file deleted, so garbage is never served.
    pub fn get(&self, key: &BlockKey) -> Option<Vec<u8>> {
        let shard = &self.shards[shard_of(key, self.mask)];
        let entry = shard.lock().get(key).cloned()?;
        match std::fs::read(&entry.file) {
            Ok(data) if data.len() == entry.len && crc32c(&data) == entry.crc => Some(data),
            Ok(_) => {
                // Truncated or corrupted on disk; evict and delete.
                shard.lock().remove(key);
                let _ = std::fs::remove_file(&entry.file);
                None
            }
            Err(_) => {
                // File vanished under us; drop the index entry.
                shard.lock().remove(key);
                None
            }
        }
    }

    /// True if the block is indexed (no recency refresh, no file I/O).
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.shards[shard_of(key, self.mask)].lock().contains(key)
    }

    /// Inserts a block (spilled from memory or fetched directly).
    pub fn put(&self, key: BlockKey, data: &[u8]) -> Result<()> {
        let file =
            self.root.join(format!("blk-{}.cache", self.seq.fetch_add(1, Ordering::Relaxed)));
        std::fs::write(&file, data)?;
        let entry = DiskEntry { file, len: data.len(), crc: crc32c(data) };
        let evicted = self.shards[shard_of(&key, self.mask)].lock().put(key, entry, data.len());
        for (_, old) in evicted {
            let _ = std::fs::remove_file(old.file);
        }
        Ok(())
    }

    /// Bytes accounted in the index, across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Drops every block of one object, deleting the backing files.
    pub fn evict_object(&self, path: &str) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let evicted = shard.lock().remove_matching(|k| k.path == path);
            for (_, entry) in &evicted {
                let _ = std::fs::remove_file(&entry.file);
            }
            removed += evicted.len();
        }
        removed
    }
}

#[derive(Default)]
struct Counters {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    bytes_from_origin: AtomicU64,
    coalesced_gets: AtomicU64,
    singleflight_waits: AtomicU64,
    spill_failures: AtomicU64,
}

/// Memory tier over disk tier over origin, with per-key miss dedup.
pub struct TieredCache {
    memory: MemoryBlockCache,
    disk: Option<DiskBlockCache>,
    flights: SingleFlight<BlockKey, Arc<Vec<u8>>>,
    counters: Counters,
}

impl TieredCache {
    /// A memory-only cache with a single shard.
    pub fn memory_only(capacity_bytes: usize) -> Self {
        Self::memory_only_sharded(capacity_bytes, 1)
    }

    /// A memory-only cache split into `shards` hash shards.
    pub fn memory_only_sharded(capacity_bytes: usize, shards: usize) -> Self {
        TieredCache {
            memory: MemoryBlockCache::new_sharded(capacity_bytes, shards),
            disk: None,
            flights: SingleFlight::new(),
            counters: Counters::default(),
        }
    }

    /// Memory + disk tiers (memory sharding matches the disk tier's).
    pub fn with_disk(memory_bytes: usize, disk: DiskBlockCache) -> Self {
        let shards = disk.shard_count();
        TieredCache {
            memory: MemoryBlockCache::new_sharded(memory_bytes, shards),
            disk: Some(disk),
            flights: SingleFlight::new(),
            counters: Counters::default(),
        }
    }

    /// Number of memory-tier shards.
    pub fn shard_count(&self) -> usize {
        self.memory.shard_count()
    }

    /// Fetches a block through the tiers, calling `fetch` only on a full
    /// miss. Misses populate memory; memory evictions spill to disk.
    /// Concurrent callers for the same key share one fetch.
    pub fn get_or_fetch(
        &self,
        key: &BlockKey,
        fetch: impl FnOnce() -> Result<Vec<u8>>,
    ) -> Result<Arc<Vec<u8>>> {
        if let Some(hit) = self.memory.get(key) {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let (result, role) = self.flights.run(key.clone(), || self.load_through_tiers(key, fetch));
        if role == FlightRole::Waited {
            self.counters.singleflight_waits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The flight-leader path: re-check memory (we may have lost the race
    /// to a completed flight), then disk, then the origin.
    fn load_through_tiers(
        &self,
        key: &BlockKey,
        fetch: impl FnOnce() -> Result<Vec<u8>>,
    ) -> Result<Arc<Vec<u8>>> {
        if let Some(hit) = self.memory.get(key) {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        if let Some(disk) = &self.disk {
            if let Some(data) = disk.get(key) {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                let data = Arc::new(data);
                self.insert(key.clone(), Arc::clone(&data));
                return Ok(data);
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(fetch()?);
        self.counters.bytes_from_origin.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.insert(key.clone(), Arc::clone(&data));
        Ok(data)
    }

    /// Fetches a *contiguous run* of aligned blocks of one object —
    /// `blocks[i] = (offset, len)` with each block starting where the
    /// previous one ends. Every block resolves through the same tiers and
    /// singleflight table as [`TieredCache::get_or_fetch`]; blocks that
    /// miss every tier are fetched with as few coalesced origin range GETs
    /// as possible via `fetch_run(&[(offset, len), ...])`, which must
    /// return one buffer per requested block (see
    /// `logstore_oss::ObjectStore::get_block_run`).
    pub fn get_or_fetch_run(
        &self,
        path: &str,
        blocks: &[(u64, u64)],
        fetch_run: &FetchRunFn<'_>,
    ) -> Result<Vec<Arc<Vec<u8>>>> {
        debug_assert!(
            blocks.windows(2).all(|w| w[0].0 + w[0].1 == w[1].0),
            "get_or_fetch_run requires contiguous blocks"
        );
        let mut out: Vec<Arc<Vec<u8>>> = Vec::with_capacity(blocks.len());
        let mut i = 0;
        while i < blocks.len() {
            let key = BlockKey { path: path.to_string(), offset: blocks[i].0 };
            if let Some(hit) = self.memory.get(&key) {
                self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
                out.push(hit);
                i += 1;
                continue;
            }
            // Blocks the flight leader fetched beyond the first, handed out
            // of the closure so the loop consumes them without re-probing
            // (and without re-counting) the memory tier.
            let tail: std::cell::RefCell<Vec<Arc<Vec<u8>>>> = std::cell::RefCell::new(Vec::new());
            let (result, role) = self.flights.run(key.clone(), || {
                let (first, rest) = self.lead_run(&key, blocks, i, fetch_run)?;
                *tail.borrow_mut() = rest;
                Ok(first)
            });
            if role == FlightRole::Waited {
                self.counters.singleflight_waits.fetch_add(1, Ordering::Relaxed);
            }
            out.push(result?);
            i += 1;
            for block in tail.into_inner() {
                out.push(block);
                i += 1;
            }
        }
        Ok(out)
    }

    /// Leader of a run flight for `blocks[start]`: serve from a tier if
    /// possible, otherwise extend the fetch over the following blocks that
    /// are cold in every tier and not already in flight, and fetch that
    /// whole run with one origin GET.
    fn lead_run(
        &self,
        key: &BlockKey,
        blocks: &[(u64, u64)],
        start: usize,
        fetch_run: &FetchRunFn<'_>,
    ) -> Result<LedRun> {
        if let Some(hit) = self.memory.get(key) {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, Vec::new()));
        }
        if let Some(disk) = &self.disk {
            if let Some(data) = disk.get(key) {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                let data = Arc::new(data);
                self.insert(key.clone(), Arc::clone(&data));
                return Ok((data, Vec::new()));
            }
        }
        // Extend the run over subsequent cold blocks. Stop at the first
        // block that is cached in any tier or already being fetched by
        // someone else (racy check, but a lost race only costs one
        // duplicate GET of identical immutable bytes — never wrong data).
        let mut end = start + 1;
        while end < blocks.len() {
            let next = BlockKey { path: key.path.clone(), offset: blocks[end].0 };
            let cached = self.memory.contains(&next)
                || self.disk.as_ref().is_some_and(|d| d.contains(&next));
            if cached || self.flights.is_in_flight(&next) {
                break;
            }
            end += 1;
        }
        let run = &blocks[start..end];
        let parts = fetch_run(run)?;
        if parts.len() != run.len() {
            return Err(Error::Internal(format!(
                "coalesced fetch returned {} blocks for a run of {}",
                parts.len(),
                run.len()
            )));
        }
        self.counters.misses.fetch_add(run.len() as u64, Ordering::Relaxed);
        if run.len() > 1 {
            self.counters.coalesced_gets.fetch_add(1, Ordering::Relaxed);
        }
        let mut shared: Vec<Arc<Vec<u8>>> = Vec::with_capacity(parts.len());
        for (part, (offset, len)) in parts.into_iter().zip(run) {
            if part.len() as u64 != *len {
                return Err(Error::corruption(format!(
                    "coalesced fetch returned {} bytes for block {offset}+{len}",
                    part.len()
                )));
            }
            self.counters.bytes_from_origin.fetch_add(part.len() as u64, Ordering::Relaxed);
            let part = Arc::new(part);
            self.insert(BlockKey { path: key.path.clone(), offset: *offset }, Arc::clone(&part));
            shared.push(part);
        }
        let first = shared.remove(0);
        Ok((first, shared))
    }

    /// Inserts a block directly (prefetch path). Infallible by design: a
    /// failed disk spill is counted in [`CacheStats::spill_failures`] but
    /// can never fail the caller's read.
    pub fn insert(&self, key: BlockKey, data: Arc<Vec<u8>>) {
        let spilled = self.memory.put(key, data);
        if let Some(disk) = &self.disk {
            for (k, v) in spilled {
                if disk.put(k, &v).is_err() {
                    self.counters.spill_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// True if the block is in the memory tier right now.
    pub fn contains_in_memory(&self, key: &BlockKey) -> bool {
        self.memory.contains(key)
    }

    /// Evicts every cached block of one object from both tiers (GC deleted
    /// the object; dead blocks must not pin memory/disk budget). Returns
    /// the number of evicted blocks.
    pub fn evict_object(&self, path: &str) -> usize {
        let mut removed = self.memory.evict_object(path);
        if let Some(disk) = &self.disk {
            removed += disk.evict_object(path);
        }
        removed
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.counters.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            bytes_from_origin: self.counters.bytes_from_origin.load(Ordering::Relaxed),
            coalesced_gets: self.counters.coalesced_gets.load(Ordering::Relaxed),
            singleflight_waits: self.counters.singleflight_waits.load(Ordering::Relaxed),
            spill_failures: self.counters.spill_failures.load(Ordering::Relaxed),
        }
    }

    /// Clears the memory tier (tests).
    pub fn clear_memory(&self) {
        self.memory.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str, offset: u64) -> BlockKey {
        BlockKey { path: path.to_string(), offset }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "logstore-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_only_hit_miss_accounting() {
        let cache = TieredCache::memory_only(1 << 20);
        let k = key("obj", 0);
        let v1 = cache.get_or_fetch(&k, || Ok(vec![1, 2, 3])).unwrap();
        assert_eq!(*v1, vec![1, 2, 3]);
        let v2 = cache.get_or_fetch(&k, || panic!("must not refetch")).unwrap();
        assert_eq!(*v2, vec![1, 2, 3]);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.bytes_from_origin, 3);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fetch_error_propagates_and_is_not_cached() {
        let cache = TieredCache::memory_only(1 << 20);
        let k = key("obj", 0);
        let err = cache.get_or_fetch(&k, || Err(logstore_types::Error::NotFound("gone".into())));
        assert!(err.is_err());
        // A later successful fetch works.
        let v = cache.get_or_fetch(&k, || Ok(vec![9])).unwrap();
        assert_eq!(*v, vec![9]);
    }

    #[test]
    fn memory_evictions_spill_to_disk_and_promote_back() {
        let dir = temp_dir("spill");
        let disk = DiskBlockCache::open(&dir, 1 << 20).unwrap();
        // Memory tier fits only one 100-byte block.
        let cache = TieredCache::with_disk(150, disk);
        let k1 = key("obj", 0);
        let k2 = key("obj", 100);
        cache.get_or_fetch(&k1, || Ok(vec![1u8; 100])).unwrap();
        cache.get_or_fetch(&k2, || Ok(vec![2u8; 100])).unwrap(); // evicts k1 to disk
        assert!(!cache.contains_in_memory(&k1));
        // k1 now comes from disk (no refetch) and is promoted.
        let v = cache.get_or_fetch(&k1, || panic!("origin must not be hit")).unwrap();
        assert_eq!(*v, vec![1u8; 100]);
        assert_eq!(cache.stats().disk_hits, 1);
        assert!(cache.contains_in_memory(&k1));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_tier_evicts_files() {
        let dir = temp_dir("evict");
        let disk = DiskBlockCache::open(&dir, 250).unwrap();
        for i in 0..10u64 {
            disk.put(key("obj", i * 100), &[i as u8; 100]).unwrap();
        }
        assert!(disk.used_bytes() <= 250);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files <= 3, "expected evicted files to be deleted, found {files}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_tier_rejects_corrupted_entries() {
        let dir = temp_dir("corrupt");
        let disk = DiskBlockCache::open(&dir, 1 << 20).unwrap();
        let k = key("obj", 0);
        disk.put(k.clone(), &[7u8; 64]).unwrap();
        assert_eq!(disk.get(&k).unwrap(), vec![7u8; 64]);
        // Flip one byte in the backing file.
        let file = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut bytes = std::fs::read(&file).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&file, &bytes).unwrap();
        assert!(disk.get(&k).is_none(), "corrupted entry must be a miss");
        assert_eq!(disk.used_bytes(), 0, "corrupted entry must be evicted from the index");
        assert!(disk.get(&k).is_none(), "entry stays gone");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_tier_rejects_truncated_entries() {
        let dir = temp_dir("truncate");
        let disk = DiskBlockCache::open(&dir, 1 << 20).unwrap();
        let k = key("obj", 0);
        disk.put(k.clone(), &[3u8; 128]).unwrap();
        let file = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let bytes = std::fs::read(&file).unwrap();
        std::fs::write(&file, &bytes[..17]).unwrap();
        assert!(disk.get(&k).is_none(), "truncated entry must be a miss");
        assert_eq!(disk.used_bytes(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_failure_is_counted_not_fatal() {
        let dir = temp_dir("spillfail");
        let disk = DiskBlockCache::open(&dir, 1 << 20).unwrap();
        let cache = TieredCache::with_disk(150, disk);
        // Remove the disk root so every spill write fails.
        std::fs::remove_dir_all(&dir).unwrap();
        let v1 = cache.get_or_fetch(&key("obj", 0), || Ok(vec![1u8; 100])).unwrap();
        assert_eq!(v1.len(), 100);
        // Evicting k1 spills — the spill fails, but this read must succeed.
        let v2 = cache.get_or_fetch(&key("obj", 100), || Ok(vec![2u8; 100])).unwrap();
        assert_eq!(v2.len(), 100);
        assert_eq!(cache.stats().spill_failures, 1);
        // k1 is simply gone (miss), not an error.
        let v1b = cache.get_or_fetch(&key("obj", 0), || Ok(vec![1u8; 100])).unwrap();
        assert_eq!(v1b.len(), 100);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn direct_insert_supports_prefetch() {
        let cache = TieredCache::memory_only(1 << 20);
        let k = key("obj", 4096);
        cache.insert(k.clone(), Arc::new(vec![7u8; 10]));
        let v = cache.get_or_fetch(&k, || panic!("prefetched")).unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(cache.stats().memory_hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn sharded_cache_spreads_budget_and_serves_all_keys() {
        let cache = TieredCache::memory_only_sharded(1 << 20, 8);
        assert_eq!(cache.shard_count(), 8);
        for i in 0..64u64 {
            let k = key("obj", i * 4096);
            let v = cache.get_or_fetch(&k, || Ok(vec![i as u8; 1024])).unwrap();
            assert_eq!(*v, vec![i as u8; 1024]);
        }
        // Warm re-reads all hit.
        for i in 0..64u64 {
            let k = key("obj", i * 4096);
            let v = cache.get_or_fetch(&k, || panic!("warm")).unwrap();
            assert_eq!(*v, vec![i as u8; 1024]);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 64);
        assert_eq!(stats.memory_hits, 64);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(TieredCache::memory_only_sharded(1 << 20, 0).shard_count(), 1);
        assert_eq!(TieredCache::memory_only_sharded(1 << 20, 3).shard_count(), 4);
        assert_eq!(TieredCache::memory_only_sharded(1 << 20, 8).shard_count(), 8);
    }

    #[test]
    fn coalesced_run_fetches_cold_blocks_in_one_get() {
        let cache = TieredCache::memory_only(1 << 20);
        let gets = AtomicU64::new(0);
        let blocks: Vec<(u64, u64)> = (0..8).map(|i| (i * 100, 100)).collect();
        let fetch = |run: &[(u64, u64)]| {
            gets.fetch_add(1, Ordering::Relaxed);
            Ok(run.iter().map(|(off, len)| vec![(*off / 100) as u8; *len as usize]).collect())
        };
        let parts = cache.get_or_fetch_run("obj", &blocks, &fetch).unwrap();
        assert_eq!(parts.len(), 8);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(**p, vec![i as u8; 100]);
        }
        assert_eq!(gets.load(Ordering::Relaxed), 1, "8 cold blocks must coalesce into one GET");
        let stats = cache.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.coalesced_gets, 1);
        assert_eq!(stats.bytes_from_origin, 800);
        // Everything is now cached.
        let parts = cache.get_or_fetch_run("obj", &blocks, &fetch).unwrap();
        assert_eq!(parts.len(), 8);
        assert_eq!(gets.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().memory_hits, 8);
    }

    #[test]
    fn coalesced_run_splits_around_warm_blocks() {
        let cache = TieredCache::memory_only(1 << 20);
        // Warm block 2 of 5.
        cache.insert(key("obj", 200), Arc::new(vec![2u8; 100]));
        let gets = AtomicU64::new(0);
        let blocks: Vec<(u64, u64)> = (0..5).map(|i| (i * 100, 100)).collect();
        let fetch = |run: &[(u64, u64)]| {
            gets.fetch_add(1, Ordering::Relaxed);
            Ok(run.iter().map(|(off, len)| vec![(*off / 100) as u8; *len as usize]).collect())
        };
        let parts = cache.get_or_fetch_run("obj", &blocks, &fetch).unwrap();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(**p, vec![i as u8; 100], "block {i}");
        }
        // Runs [0,1] and [3,4] → two GETs; the warm block breaks the run.
        assert_eq!(gets.load(Ordering::Relaxed), 2);
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.coalesced_gets, 2);
    }

    #[test]
    fn coalesced_run_error_propagates_and_is_not_cached() {
        let cache = TieredCache::memory_only(1 << 20);
        let blocks: Vec<(u64, u64)> = (0..3).map(|i| (i * 100, 100)).collect();
        let failing = |_: &[(u64, u64)]| Err(logstore_types::Error::NotFound("object gone".into()));
        assert!(cache.get_or_fetch_run("obj", &blocks, &failing).is_err());
        let ok = |run: &[(u64, u64)]| Ok(run.iter().map(|(_, l)| vec![9u8; *l as usize]).collect());
        let parts = cache.get_or_fetch_run("obj", &blocks, &ok).unwrap();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn coalesced_run_rejects_wrong_sized_parts() {
        let cache = TieredCache::memory_only(1 << 20);
        let blocks = vec![(0u64, 100u64), (100, 100)];
        let short = |run: &[(u64, u64)]| Ok(run.iter().map(|_| vec![0u8; 1]).collect());
        assert!(cache.get_or_fetch_run("obj", &blocks, &short).is_err());
    }

    #[test]
    fn evict_object_clears_both_tiers_and_deletes_files() {
        let dir = temp_dir("evictobj");
        let disk = DiskBlockCache::open(&dir, 1 << 20).unwrap();
        // Memory fits two 100-byte blocks; the rest of "dead" spills to disk.
        let cache = TieredCache::with_disk(250, disk);
        for i in 0..4u64 {
            cache.get_or_fetch(&key("dead", i * 100), || Ok(vec![i as u8; 100])).unwrap();
        }
        cache.get_or_fetch(&key("live", 0), || Ok(vec![9u8; 10])).unwrap();
        let removed = cache.evict_object("dead");
        assert_eq!(removed, 4, "every block of the object must go");
        for i in 0..4u64 {
            assert!(!cache.contains_in_memory(&key("dead", i * 100)));
        }
        // Dead blocks are cold again (refetched), the live object is not.
        let before = cache.stats().misses;
        cache.get_or_fetch(&key("dead", 0), || Ok(vec![0u8; 100])).unwrap();
        assert_eq!(cache.stats().misses, before + 1);
        cache.get_or_fetch(&key("live", 0), || panic!("live object stays cached")).unwrap();
        // The spilled files were deleted, only live cache files may remain.
        assert_eq!(cache.evict_object("dead"), 1, "only the refetched block remains");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_delta_since() {
        let a = CacheStats {
            memory_hits: 10,
            misses: 4,
            bytes_from_origin: 1000,
            ..Default::default()
        };
        let b = CacheStats {
            memory_hits: 25,
            misses: 5,
            bytes_from_origin: 1500,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.memory_hits, 15);
        assert_eq!(d.misses, 1);
        assert_eq!(d.bytes_from_origin, 500);
    }
}
