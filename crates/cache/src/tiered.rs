//! The multi-level block cache (paper Fig 9).
//!
//! Memory tier → disk (SSD) tier → origin. Memory evictions spill to disk
//! ("when its size exceeds the threshold, the memory cache will spill to
//! the SSD block cache"); disk hits are promoted back to memory.

use crate::lru::SizedLru;
use logstore_types::Result;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache block key: one aligned byte range of one object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Object path on OSS.
    pub path: String,
    /// Aligned block offset.
    pub offset: u64,
}

/// Hit/miss counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Served from the memory tier.
    pub memory_hits: u64,
    /// Served from the disk tier.
    pub disk_hits: u64,
    /// Fetched from the origin.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses
    }

    /// Any-tier hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / lookups as f64
        }
    }
}

/// The in-memory tier.
pub struct MemoryBlockCache {
    lru: Mutex<SizedLru<BlockKey, Arc<Vec<u8>>>>,
}

impl MemoryBlockCache {
    /// Creates a tier bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        MemoryBlockCache { lru: Mutex::new(SizedLru::new(capacity_bytes)) }
    }

    /// Looks up a block.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Vec<u8>>> {
        self.lru.lock().get(key).cloned()
    }

    /// Inserts a block, returning spilled evictions.
    pub fn put(&self, key: BlockKey, data: Arc<Vec<u8>>) -> Vec<(BlockKey, Arc<Vec<u8>>)> {
        let size = data.len();
        self.lru.lock().put(key, data, size)
    }

    /// Bytes held.
    pub fn used_bytes(&self) -> usize {
        self.lru.lock().used_bytes()
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.lru.lock().clear();
    }
}

/// The on-disk (SSD) tier: one file per cached block under a root dir, with
/// an in-memory LRU index whose evictions delete files.
pub struct DiskBlockCache {
    root: PathBuf,
    index: Mutex<SizedLru<BlockKey, PathBuf>>,
    seq: AtomicU64,
}

impl DiskBlockCache {
    /// Opens (creating) a disk tier bounded to `capacity_bytes`.
    pub fn open(root: impl AsRef<Path>, capacity_bytes: usize) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskBlockCache {
            root,
            index: Mutex::new(SizedLru::new(capacity_bytes)),
            seq: AtomicU64::new(0),
        })
    }

    /// Looks up a block, reading its file.
    pub fn get(&self, key: &BlockKey) -> Option<Vec<u8>> {
        let path = self.index.lock().get(key).cloned()?;
        match std::fs::read(&path) {
            Ok(data) => Some(data),
            Err(_) => {
                // File vanished under us; drop the index entry.
                self.index.lock().remove(key);
                None
            }
        }
    }

    /// Inserts a block (spilled from memory or fetched directly).
    pub fn put(&self, key: BlockKey, data: &[u8]) -> Result<()> {
        let file =
            self.root.join(format!("blk-{}.cache", self.seq.fetch_add(1, Ordering::Relaxed)));
        std::fs::write(&file, data)?;
        let evicted = self.index.lock().put(key, file, data.len());
        for (_, old_file) in evicted {
            let _ = std::fs::remove_file(old_file);
        }
        Ok(())
    }

    /// Bytes accounted in the index.
    pub fn used_bytes(&self) -> usize {
        self.index.lock().used_bytes()
    }
}

/// Memory tier over disk tier over origin.
pub struct TieredCache {
    memory: MemoryBlockCache,
    disk: Option<DiskBlockCache>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl TieredCache {
    /// A memory-only cache.
    pub fn memory_only(capacity_bytes: usize) -> Self {
        TieredCache {
            memory: MemoryBlockCache::new(capacity_bytes),
            disk: None,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Memory + disk tiers.
    pub fn with_disk(memory_bytes: usize, disk: DiskBlockCache) -> Self {
        TieredCache {
            memory: MemoryBlockCache::new(memory_bytes),
            disk: Some(disk),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetches a block through the tiers, calling `fetch` only on a full
    /// miss. Misses populate memory; memory evictions spill to disk.
    pub fn get_or_fetch(
        &self,
        key: &BlockKey,
        fetch: impl FnOnce() -> Result<Vec<u8>>,
    ) -> Result<Arc<Vec<u8>>> {
        if let Some(hit) = self.memory.get(key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        if let Some(disk) = &self.disk {
            if let Some(data) = disk.get(key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let data = Arc::new(data);
                self.insert(key.clone(), Arc::clone(&data))?;
                return Ok(data);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(fetch()?);
        self.insert(key.clone(), Arc::clone(&data))?;
        Ok(data)
    }

    /// Inserts a block directly (prefetch path).
    pub fn insert(&self, key: BlockKey, data: Arc<Vec<u8>>) -> Result<()> {
        let spilled = self.memory.put(key, data);
        if let Some(disk) = &self.disk {
            for (k, v) in spilled {
                disk.put(k, &v)?;
            }
        }
        Ok(())
    }

    /// True if the block is in the memory tier right now.
    pub fn contains_in_memory(&self, key: &BlockKey) -> bool {
        self.memory.get(key).is_some()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Clears the memory tier (tests).
    pub fn clear_memory(&self) {
        self.memory.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str, offset: u64) -> BlockKey {
        BlockKey { path: path.to_string(), offset }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "logstore-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_only_hit_miss_accounting() {
        let cache = TieredCache::memory_only(1 << 20);
        let k = key("obj", 0);
        let v1 = cache.get_or_fetch(&k, || Ok(vec![1, 2, 3])).unwrap();
        assert_eq!(*v1, vec![1, 2, 3]);
        let v2 = cache.get_or_fetch(&k, || panic!("must not refetch")).unwrap();
        assert_eq!(*v2, vec![1, 2, 3]);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fetch_error_propagates_and_is_not_cached() {
        let cache = TieredCache::memory_only(1 << 20);
        let k = key("obj", 0);
        let err = cache.get_or_fetch(&k, || Err(logstore_types::Error::NotFound("gone".into())));
        assert!(err.is_err());
        // A later successful fetch works.
        let v = cache.get_or_fetch(&k, || Ok(vec![9])).unwrap();
        assert_eq!(*v, vec![9]);
    }

    #[test]
    fn memory_evictions_spill_to_disk_and_promote_back() {
        let dir = temp_dir("spill");
        let disk = DiskBlockCache::open(&dir, 1 << 20).unwrap();
        // Memory tier fits only one 100-byte block.
        let cache = TieredCache::with_disk(150, disk);
        let k1 = key("obj", 0);
        let k2 = key("obj", 100);
        cache.get_or_fetch(&k1, || Ok(vec![1u8; 100])).unwrap();
        cache.get_or_fetch(&k2, || Ok(vec![2u8; 100])).unwrap(); // evicts k1 to disk
        assert!(!cache.contains_in_memory(&k1));
        // k1 now comes from disk (no refetch) and is promoted.
        let v = cache.get_or_fetch(&k1, || panic!("origin must not be hit")).unwrap();
        assert_eq!(*v, vec![1u8; 100]);
        assert_eq!(cache.stats().disk_hits, 1);
        assert!(cache.contains_in_memory(&k1));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_tier_evicts_files() {
        let dir = temp_dir("evict");
        let disk = DiskBlockCache::open(&dir, 250).unwrap();
        for i in 0..10u64 {
            disk.put(key("obj", i * 100), &[i as u8; 100]).unwrap();
        }
        assert!(disk.used_bytes() <= 250);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files <= 3, "expected evicted files to be deleted, found {files}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn direct_insert_supports_prefetch() {
        let cache = TieredCache::memory_only(1 << 20);
        let k = key("obj", 4096);
        cache.insert(k.clone(), Arc::new(vec![7u8; 10])).unwrap();
        let v = cache.get_or_fetch(&k, || panic!("prefetched")).unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(cache.stats().memory_hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }
}
