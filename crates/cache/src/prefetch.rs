//! Parallel prefetch (paper Fig 10).
//!
//! Before a query touches a LogBlock's members, the prefetcher takes the
//! member ranges it will need, merges duplicates and adjacent ranges
//! ("repeated data block read IO requests will be merged"), splits the
//! result into aligned cache blocks, and fetches them with a thread pool —
//! turning a serial chain of high-latency OSS GETs into one parallel wave.

use crate::source::CachedObjectSource;
use logstore_oss::ObjectStore;
use logstore_sync::OrderedMutex;
use logstore_types::Result;
use std::collections::BTreeSet;

/// Merges overlapping/adjacent `(offset, len)` ranges into a minimal sorted
/// list (the dedup step of Fig 10).
pub fn merge_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|(_, len)| *len > 0);
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (offset, len) in ranges {
        match out.last_mut() {
            Some((last_off, last_len)) if offset <= *last_off + *last_len => {
                let end = (offset + len).max(*last_off + *last_len);
                *last_len = end - *last_off;
            }
            _ => out.push((offset, len)),
        }
    }
    out
}

/// Full accounting for one prefetch wave.
///
/// A failed block fetch does not stop the wave: the remaining queued
/// blocks are still fetched (each would otherwise silently become a
/// high-latency demand read later), and every failure is counted here so
/// the caller can decide whether a partial wave matters.
#[derive(Debug, Default)]
pub struct PrefetchOutcome {
    /// Aligned blocks fetched into the cache.
    pub fetched: usize,
    /// Aligned blocks whose fetch failed (served by demand reads later).
    pub errors: usize,
    /// The first failure, in block order, when any occurred.
    pub first_error: Option<logstore_types::Error>,
}

/// A prefetcher with a fixed parallelism degree.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    threads: usize,
}

impl Prefetcher {
    /// Creates a prefetcher running `threads` parallel fetches (the paper's
    /// evaluation uses 32).
    pub fn new(threads: usize) -> Self {
        Prefetcher { threads: threads.max(1) }
    }

    /// Parallelism degree.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Prefetches `ranges` of `source` into its cache. Returns the number
    /// of aligned blocks fetched, or the wave's first error. The whole
    /// wave always runs to completion (see [`Prefetcher::prefetch_wave`]);
    /// this wrapper only collapses the outcome into a `Result` for callers
    /// that treat any failure as fatal.
    pub fn prefetch<S: ObjectStore>(
        &self,
        source: &CachedObjectSource<S>,
        ranges: Vec<(u64, u64)>,
    ) -> Result<usize> {
        let outcome = self.prefetch_wave(source, ranges);
        match outcome.first_error {
            Some(e) => Err(e),
            None => Ok(outcome.fetched),
        }
    }

    /// Prefetches `ranges` of `source` into its cache and reports the full
    /// [`PrefetchOutcome`]. Unlike a fail-fast wave, a block failure does
    /// not abandon the queue: every queued block is attempted, failures
    /// are counted, and the first error (in block order) is preserved.
    /// Blocks until the wave completes.
    pub fn prefetch_wave<S: ObjectStore>(
        &self,
        source: &CachedObjectSource<S>,
        ranges: Vec<(u64, u64)>,
    ) -> PrefetchOutcome {
        // Merge request ranges, expand to aligned blocks, dedup blocks.
        let mut blocks: BTreeSet<(u64, u64)> = BTreeSet::new();
        for (offset, len) in merge_ranges(ranges) {
            for b in source.aligned_blocks(offset, len) {
                blocks.insert(b);
            }
        }
        let work: Vec<(u64, u64)> = blocks.into_iter().collect();
        let total = work.len();
        if total == 0 {
            return PrefetchOutcome::default();
        }
        let queue = OrderedMutex::new("cache.prefetch.queue", work.into_iter().enumerate());
        // (block index, error) of the earliest failure, by block order —
        // not completion order, so the report is deterministic.
        let first_error: OrderedMutex<Option<(usize, logstore_types::Error)>> =
            OrderedMutex::new("cache.prefetch.first_error", None);
        let errors = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(total) {
                scope.spawn(|| loop {
                    // Pop under a transient guard; the block fetch below
                    // (an OSS GET) must run with no lock held.
                    let next = queue.lock().next();
                    let Some((idx, (offset, len))) = next else { return };
                    if let Err(e) = source.prefetch_block(offset, len) {
                        errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let mut slot = first_error.lock();
                        if slot.as_ref().is_none_or(|(held, _)| idx < *held) {
                            *slot = Some((idx, e));
                        }
                    }
                });
            }
        });
        let errors = errors.into_inner();
        PrefetchOutcome {
            fetched: total - errors,
            errors,
            first_error: first_error.into_inner().map(|(_, e)| e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiered::TieredCache;
    use logstore_oss::{LatencyModel, MemoryStore, SimulatedOss};
    use std::sync::Arc;

    #[test]
    fn merge_ranges_cases() {
        assert_eq!(merge_ranges(vec![]), Vec::<(u64, u64)>::new());
        assert_eq!(merge_ranges(vec![(0, 10)]), vec![(0, 10)]);
        // Overlap, adjacency, containment, zero-length, out of order.
        assert_eq!(
            merge_ranges(vec![(20, 5), (0, 10), (10, 5), (22, 1), (7, 5), (40, 0)]),
            vec![(0, 15), (20, 5)]
        );
        assert_eq!(merge_ranges(vec![(0, 100), (10, 5)]), vec![(0, 100)]);
    }

    fn setup(
        size: usize,
        block: u64,
    ) -> (CachedObjectSource<SimulatedOss<MemoryStore>>, Arc<SimulatedOss<MemoryStore>>) {
        let store = Arc::new(SimulatedOss::new(MemoryStore::new(), LatencyModel::zero(), 1));
        store.inner().put("obj", &vec![5u8; size]).unwrap();
        let cache = Arc::new(TieredCache::memory_only(1 << 24));
        let src = CachedObjectSource::open_with_block_size(Arc::clone(&store), "obj", cache, block)
            .unwrap();
        (src, store)
    }

    #[test]
    fn prefetch_fills_cache_for_later_reads() {
        let (src, store) = setup(1 << 16, 4096);
        let p = Prefetcher::new(8);
        let fetched = p.prefetch(&src, vec![(0, 1 << 16)]).unwrap();
        assert_eq!(fetched, 16);
        let gets_after_prefetch = store.metrics().get_requests;
        // Reading everything afterwards issues no further origin requests.
        use logstore_logblock::pack::RangeSource;
        src.read_at(0, 1 << 16).unwrap();
        assert_eq!(store.metrics().get_requests, gets_after_prefetch);
    }

    #[test]
    fn duplicate_and_overlapping_requests_fetch_once() {
        let (src, store) = setup(8192, 1024);
        let p = Prefetcher::new(4);
        let ranges = vec![(0, 1000), (500, 1000), (0, 1000), (2000, 10), (2001, 5)];
        let fetched = p.prefetch(&src, ranges).unwrap();
        // Ranges collapse to [0,1500) and [2000,2011) → blocks 0,1 and 1? —
        // block 1 covers both 1024..2048 spans, so blocks {0, 1, 2}... block
        // 2 is 2048.. which 2000..2011 does not reach; [2000,2011) lies in
        // block 1. Blocks fetched: 0 and 1.
        assert_eq!(fetched, 2);
        assert_eq!(store.metrics().get_requests, 2);
    }

    #[test]
    fn empty_prefetch_is_noop() {
        let (src, store) = setup(1024, 256);
        let p = Prefetcher::new(4);
        assert_eq!(p.prefetch(&src, vec![]).unwrap(), 0);
        assert_eq!(p.prefetch(&src, vec![(10, 0)]).unwrap(), 0);
        assert_eq!(store.metrics().get_requests, 0);
    }

    #[test]
    fn prefetch_errors_surface() {
        let store = Arc::new(SimulatedOss::new(MemoryStore::new(), LatencyModel::zero(), 1));
        store.inner().put("obj", &[0u8; 100]).unwrap();
        let cache = Arc::new(TieredCache::memory_only(1 << 20));
        let src =
            CachedObjectSource::open_with_block_size(Arc::clone(&store), "obj", cache, 64).unwrap();
        // Delete the object behind the source's back.
        store.inner().delete("obj").unwrap();
        let p = Prefetcher::new(2);
        assert!(p.prefetch(&src, vec![(0, 100)]).is_err());
    }

    #[test]
    fn partial_wave_fetches_remaining_blocks() {
        use logstore_oss::{FaultScope, FaultyStore};
        let store = Arc::new(SimulatedOss::new(
            FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.0, 1),
            LatencyModel::zero(),
            1,
        ));
        store.inner().inner().put("obj", &vec![7u8; 8 * 1024]).unwrap();
        let cache = Arc::new(TieredCache::memory_only(1 << 20));
        let src = CachedObjectSource::open_with_block_size(Arc::clone(&store), "obj", cache, 1024)
            .unwrap();
        // One scheduled fault; a single-threaded wave makes it land on a
        // deterministic block. The other 7 blocks must still be fetched.
        store.inner().fail_next(1);
        let p = Prefetcher::new(1);
        let outcome = p.prefetch_wave(&src, vec![(0, 8 * 1024)]);
        assert_eq!(outcome.errors, 1);
        assert_eq!(outcome.fetched, 7);
        assert!(outcome.first_error.is_some());
        // The fail-fast wrapper reports the same wave as an error.
        store.inner().fail_next(1);
        assert!(p.prefetch(&src, vec![(0, 8 * 1024)]).is_err());
        // After faults clear, demand reads repair the one missing block
        // and the data comes back intact.
        store.inner().clear_faults();
        use logstore_logblock::pack::RangeSource;
        assert_eq!(src.read_at(0, 8 * 1024).unwrap(), vec![7u8; 8 * 1024]);
    }

    #[test]
    fn parallelism_actually_runs_concurrently() {
        // With per-request modelled sleep and time_scale=1, 8 blocks at 4
        // threads should take ~2 rounds of 5 ms, far below the serial 40 ms.
        let mut model = LatencyModel::zero();
        model.base_latency_us = 5_000;
        model.time_scale = 1.0;
        let store = Arc::new(SimulatedOss::new(MemoryStore::new(), model, 1));
        store.inner().put("obj", &vec![1u8; 8 * 1024]).unwrap();
        let cache = Arc::new(TieredCache::memory_only(1 << 20));
        let src = CachedObjectSource::open_with_block_size(Arc::clone(&store), "obj", cache, 1024)
            .unwrap();
        let p = Prefetcher::new(4);
        let wall = std::time::Instant::now();
        p.prefetch(&src, vec![(0, 8 * 1024)]).unwrap();
        let elapsed = wall.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(35),
            "prefetch looked serial: {elapsed:?}"
        );
    }
}
