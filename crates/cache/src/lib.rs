//! Multi-level data cache and parallel prefetch (paper §5.2, Figs 9–10).
//!
//! Query execution over OSS pays tens of milliseconds per request; LogStore
//! hides that with:
//!
//! * a **multi-level block cache** — a memory tier (the paper's 8 GB block
//!   cache) that spills evictions to an SSD tier (the 200 GB file cache),
//!   both managed by size-aware LRU;
//! * a **block-alignment adapter** — range reads are widened to fixed cache
//!   blocks so nearby reads reuse each other's I/O;
//! * a **parallel prefetcher** — a file's block list is deduplicated,
//!   merged, and fetched by a thread pool before the query needs it.
//!
//! The read path is built for concurrency: both tiers are hash-sharded
//! (one mutex and byte budget per shard), concurrent misses on the same
//! block are deduplicated through a [`singleflight`] table, and runs of
//! contiguous cold blocks are fetched with one coalesced origin GET.

#![forbid(unsafe_code)]

pub mod lru;
pub mod prefetch;
pub mod singleflight;
pub mod source;
pub mod tiered;

pub use lru::SizedLru;
pub use prefetch::{merge_ranges, PrefetchOutcome, Prefetcher};
pub use singleflight::{FlightRole, SingleFlight};
pub use source::CachedObjectSource;
pub use tiered::{BlockKey, CacheStats, DiskBlockCache, MemoryBlockCache, TieredCache};
