//! Cached, block-aligned access to OSS objects.
//!
//! [`CachedObjectSource`] adapts one OSS object into a
//! [`logstore_logblock::pack::RangeSource`], widening every read to fixed
//! cache blocks (the Fig 9 "block alignment adapter") so that nearby reads
//! — e.g. a LogBlock's manifest, meta and first column — share I/O through
//! the [`TieredCache`].

use crate::tiered::{BlockKey, TieredCache};
use logstore_logblock::pack::RangeSource;
use logstore_oss::ObjectStore;
use logstore_types::Result;
use std::sync::Arc;

/// Default cache block size (128 KiB — the middle of the paper's
/// 1k/128k/1024k block menu).
pub const DEFAULT_BLOCK_SIZE: u64 = 128 * 1024;

/// A cached view of one object.
pub struct CachedObjectSource<S> {
    store: Arc<S>,
    path: String,
    size: u64,
    block_size: u64,
    cache: Arc<TieredCache>,
}

impl<S: ObjectStore> CachedObjectSource<S> {
    /// Opens the object (one HEAD to learn its size).
    pub fn open(store: Arc<S>, path: impl Into<String>, cache: Arc<TieredCache>) -> Result<Self> {
        Self::open_with_block_size(store, path, cache, DEFAULT_BLOCK_SIZE)
    }

    /// Opens with a custom alignment block size.
    pub fn open_with_block_size(
        store: Arc<S>,
        path: impl Into<String>,
        cache: Arc<TieredCache>,
        block_size: u64,
    ) -> Result<Self> {
        let path = path.into();
        let size = store.head(&path)?;
        Ok(Self::open_with_known_size(store, path, cache, block_size, size))
    }

    /// Opens without the HEAD round-trip, for callers that already know
    /// the object's size from metadata (e.g. the LogBlock map).
    pub fn open_with_known_size(
        store: Arc<S>,
        path: impl Into<String>,
        cache: Arc<TieredCache>,
        block_size: u64,
        size: u64,
    ) -> Self {
        assert!(block_size > 0, "block size must be positive");
        CachedObjectSource { store, path: path.into(), size, block_size, cache }
    }

    /// The object path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The alignment block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// The cache this source reads through.
    pub fn cache(&self) -> &Arc<TieredCache> {
        &self.cache
    }

    /// The block-aligned ranges `(offset, len)` covering `[offset, offset+len)`
    /// — used by the prefetcher to plan parallel GETs.
    pub fn aligned_blocks(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        if len == 0 || offset >= self.size {
            return Vec::new();
        }
        let end = (offset + len).min(self.size);
        let first = offset / self.block_size;
        let last = (end - 1) / self.block_size;
        (first..=last)
            .map(|b| {
                let start = b * self.block_size;
                (start, self.block_size.min(self.size - start))
            })
            .collect()
    }

    fn fetch_block(&self, block_offset: u64, block_len: u64) -> Result<Arc<Vec<u8>>> {
        let key = BlockKey { path: self.path.clone(), offset: block_offset };
        self.cache.get_or_fetch(&key, || self.store.get_range(&self.path, block_offset, block_len))
    }

    /// Fetches one aligned block into the cache (prefetch worker entry).
    pub fn prefetch_block(&self, block_offset: u64, block_len: u64) -> Result<()> {
        self.fetch_block(block_offset, block_len).map(|_| ())
    }
}

impl<S: ObjectStore> RangeSource for CachedObjectSource<S> {
    fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        if offset + len > self.size {
            return Err(logstore_types::Error::invalid(format!(
                "range {offset}+{len} beyond object '{}' of {} bytes",
                self.path, self.size
            )));
        }
        let mut out = Vec::with_capacity(len as usize);
        for (block_offset, block_len) in self.aligned_blocks(offset, len) {
            let block = self.fetch_block(block_offset, block_len)?;
            let start = offset.max(block_offset) - block_offset;
            let end = (offset + len).min(block_offset + block_len) - block_offset;
            out.extend_from_slice(&block[start as usize..end as usize]);
        }
        Ok(out)
    }

    fn size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_oss::{LatencyModel, MemoryStore, SimulatedOss};

    fn setup(object: &[u8], block_size: u64) -> CachedObjectSource<SimulatedOss<MemoryStore>> {
        let store = SimulatedOss::new(MemoryStore::new(), LatencyModel::zero(), 1);
        store.inner().put("obj", object).unwrap();
        let cache = Arc::new(TieredCache::memory_only(1 << 20));
        CachedObjectSource::open_with_block_size(Arc::new(store), "obj", cache, block_size).unwrap()
    }

    #[test]
    fn reads_match_raw_object() {
        let object: Vec<u8> = (0..255u8).cycle().take(1000).collect();
        let src = setup(&object, 64);
        assert_eq!(src.size(), 1000);
        for (off, len) in [(0u64, 10u64), (60, 10), (63, 2), (990, 10), (0, 1000), (500, 0)] {
            assert_eq!(
                src.read_at(off, len).unwrap(),
                object[off as usize..(off + len) as usize],
                "range {off}+{len}"
            );
        }
        assert!(src.read_at(995, 10).is_err());
    }

    #[test]
    fn alignment_reduces_origin_requests() {
        let object = vec![7u8; 4096];
        let src = setup(&object, 1024);
        // 8 tiny reads inside the first block → exactly 1 origin GET.
        for i in 0..8 {
            src.read_at(i * 100, 50).unwrap();
        }
        assert_eq!(src.cache.stats().misses, 1);
        assert_eq!(src.cache.stats().memory_hits, 7);
    }

    #[test]
    fn aligned_blocks_cover_and_clip() {
        let src = setup(&vec![0u8; 1000], 256);
        assert_eq!(src.aligned_blocks(0, 1), vec![(0, 256)]);
        assert_eq!(src.aligned_blocks(255, 2), vec![(0, 256), (256, 256)]);
        // Tail block clipped to object size.
        assert_eq!(src.aligned_blocks(900, 100), vec![(768, 232)]);
        assert_eq!(src.aligned_blocks(0, 0), Vec::<(u64, u64)>::new());
        assert_eq!(src.aligned_blocks(2000, 5), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn prefetched_blocks_serve_without_origin() {
        let object = vec![3u8; 2048];
        let src = setup(&object, 512);
        for (off, len) in src.aligned_blocks(0, 2048) {
            src.prefetch_block(off, len).unwrap();
        }
        let misses_after_prefetch = src.cache.stats().misses;
        src.read_at(0, 2048).unwrap();
        assert_eq!(src.cache.stats().misses, misses_after_prefetch, "reads must hit cache");
    }

    #[test]
    fn spanning_read_stitches_blocks() {
        let object: Vec<u8> = (0..=255u8).cycle().take(700).collect();
        let src = setup(&object, 100);
        let got = src.read_at(50, 600).unwrap();
        assert_eq!(got, object[50..650]);
    }
}
