//! Cached, block-aligned access to OSS objects.
//!
//! [`CachedObjectSource`] adapts one OSS object into a
//! [`logstore_logblock::pack::RangeSource`], widening every read to fixed
//! cache blocks (the Fig 9 "block alignment adapter") so that nearby reads
//! — e.g. a LogBlock's manifest, meta and first column — share I/O through
//! the [`TieredCache`].
//!
//! A demand read that misses a run of contiguous blocks fetches the whole
//! run with **one** origin range GET (via
//! [`TieredCache::get_or_fetch_run`] + `ObjectStore::get_block_run`), and
//! a read for exactly one aligned block is served zero-copy as the cached
//! `Arc` through [`RangeSource::read_at_shared`].

use crate::tiered::{BlockKey, TieredCache};
use logstore_logblock::pack::RangeSource;
use logstore_oss::ObjectStore;
use logstore_types::Result;
use std::sync::Arc;

/// Default cache block size (128 KiB — the middle of the paper's
/// 1k/128k/1024k block menu).
pub const DEFAULT_BLOCK_SIZE: u64 = 128 * 1024;

/// A cached view of one object.
pub struct CachedObjectSource<S> {
    store: Arc<S>,
    path: String,
    size: u64,
    block_size: u64,
    cache: Arc<TieredCache>,
}

impl<S: ObjectStore> CachedObjectSource<S> {
    /// Opens the object (one HEAD to learn its size).
    pub fn open(store: Arc<S>, path: impl Into<String>, cache: Arc<TieredCache>) -> Result<Self> {
        Self::open_with_block_size(store, path, cache, DEFAULT_BLOCK_SIZE)
    }

    /// Opens with a custom alignment block size.
    pub fn open_with_block_size(
        store: Arc<S>,
        path: impl Into<String>,
        cache: Arc<TieredCache>,
        block_size: u64,
    ) -> Result<Self> {
        let path = path.into();
        let size = store.head(&path)?;
        Ok(Self::open_with_known_size(store, path, cache, block_size, size))
    }

    /// Opens without the HEAD round-trip, for callers that already know
    /// the object's size from metadata (e.g. the LogBlock map).
    pub fn open_with_known_size(
        store: Arc<S>,
        path: impl Into<String>,
        cache: Arc<TieredCache>,
        block_size: u64,
        size: u64,
    ) -> Self {
        assert!(block_size > 0, "block size must be positive");
        CachedObjectSource { store, path: path.into(), size, block_size, cache }
    }

    /// The object path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The alignment block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// The cache this source reads through.
    pub fn cache(&self) -> &Arc<TieredCache> {
        &self.cache
    }

    /// The block-aligned ranges `(offset, len)` covering `[offset, offset+len)`
    /// — used by the prefetcher to plan parallel GETs. The blocks are
    /// contiguous (each starts where the previous one ends).
    pub fn aligned_blocks(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        if len == 0 || offset >= self.size {
            return Vec::new();
        }
        let end = offset.saturating_add(len).min(self.size);
        let first = offset / self.block_size;
        let last = (end - 1) / self.block_size;
        (first..=last)
            .map(|b| {
                let start = b * self.block_size;
                (start, self.block_size.min(self.size - start))
            })
            .collect()
    }

    fn fetch_block(&self, block_offset: u64, block_len: u64) -> Result<Arc<Vec<u8>>> {
        let key = BlockKey { path: self.path.clone(), offset: block_offset };
        self.cache.get_or_fetch(&key, || self.store.get_range(&self.path, block_offset, block_len))
    }

    /// Fetches one aligned block into the cache (prefetch worker entry).
    /// Shares the cache's singleflight table with demand reads, so a
    /// prefetch wave and a demand read never duplicate an origin GET.
    pub fn prefetch_block(&self, block_offset: u64, block_len: u64) -> Result<()> {
        self.fetch_block(block_offset, block_len).map(|_| ())
    }

    /// Checks `[offset, offset+len)` against the object, rejecting
    /// overflowing or out-of-bounds ranges.
    fn check_range(&self, offset: u64, len: u64) -> Result<()> {
        let end = offset.checked_add(len).ok_or_else(|| {
            logstore_types::Error::invalid(format!(
                "range {offset}+{len} overflows in object '{}'",
                self.path
            ))
        })?;
        if end > self.size {
            return Err(logstore_types::Error::invalid(format!(
                "range {offset}+{len} beyond object '{}' of {} bytes",
                self.path, self.size
            )));
        }
        Ok(())
    }

    /// Resolves every aligned block covering the range through the cache,
    /// coalescing runs of cold blocks into single origin GETs.
    fn fetch_covering_blocks(&self, blocks: &[(u64, u64)]) -> Result<Vec<Arc<Vec<u8>>>> {
        self.cache
            .get_or_fetch_run(&self.path, blocks, &|run| self.store.get_block_run(&self.path, run))
    }
}

impl<S: ObjectStore> RangeSource for CachedObjectSource<S> {
    fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        self.check_range(offset, len)?;
        let blocks = self.aligned_blocks(offset, len);
        let parts = self.fetch_covering_blocks(&blocks)?;
        let mut out = Vec::with_capacity(len as usize);
        for (part, (block_offset, block_len)) in parts.iter().zip(&blocks) {
            let start = offset.max(*block_offset) - block_offset;
            let end = (offset + len).min(block_offset + block_len) - block_offset;
            out.extend_from_slice(&part[start as usize..end as usize]);
        }
        Ok(out)
    }

    fn read_at_shared(&self, offset: u64, len: u64) -> Result<Arc<Vec<u8>>> {
        if len > 0 && offset.is_multiple_of(self.block_size) {
            self.check_range(offset, len)?;
            let block_len = self.block_size.min(self.size - offset);
            if len == block_len {
                // Exactly one aligned block: hand out the cached buffer
                // itself instead of copying it.
                return self.fetch_block(offset, block_len);
            }
        }
        self.read_at(offset, len).map(Arc::new)
    }

    fn size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_oss::{LatencyModel, MemoryStore, SimulatedOss};

    type SimSource = CachedObjectSource<SimulatedOss<MemoryStore>>;

    fn setup_with_store(
        object: &[u8],
        block_size: u64,
    ) -> (Arc<SimulatedOss<MemoryStore>>, SimSource) {
        let store = SimulatedOss::new(MemoryStore::new(), LatencyModel::zero(), 1);
        store.inner().put("obj", object).unwrap();
        let store = Arc::new(store);
        let cache = Arc::new(TieredCache::memory_only(1 << 20));
        let src =
            CachedObjectSource::open_with_block_size(Arc::clone(&store), "obj", cache, block_size)
                .unwrap();
        (store, src)
    }

    fn setup(object: &[u8], block_size: u64) -> SimSource {
        setup_with_store(object, block_size).1
    }

    #[test]
    fn reads_match_raw_object() {
        let object: Vec<u8> = (0..255u8).cycle().take(1000).collect();
        let src = setup(&object, 64);
        assert_eq!(src.size(), 1000);
        for (off, len) in [(0u64, 10u64), (60, 10), (63, 2), (990, 10), (0, 1000), (500, 0)] {
            assert_eq!(
                src.read_at(off, len).unwrap(),
                object[off as usize..(off + len) as usize],
                "range {off}+{len}"
            );
        }
        assert!(src.read_at(995, 10).is_err());
    }

    #[test]
    fn overflowing_range_is_rejected_not_wrapped() {
        let src = setup(&[1u8; 100], 64);
        // offset + len wraps u64; the old unchecked addition let this pass
        // the bounds check and panic downstream.
        let err = src.read_at(u64::MAX - 5, 10).unwrap_err();
        assert!(matches!(err, logstore_types::Error::InvalidArgument(_)), "{err}");
        let err = src.read_at(50, u64::MAX).unwrap_err();
        assert!(matches!(err, logstore_types::Error::InvalidArgument(_)), "{err}");
        assert!(src.read_at_shared(u64::MAX - 63, 64).is_err());
    }

    #[test]
    fn alignment_reduces_origin_requests() {
        let object = vec![7u8; 4096];
        let src = setup(&object, 1024);
        // 8 tiny reads inside the first block → exactly 1 origin GET.
        for i in 0..8 {
            src.read_at(i * 100, 50).unwrap();
        }
        assert_eq!(src.cache.stats().misses, 1);
        assert_eq!(src.cache.stats().memory_hits, 7);
    }

    #[test]
    fn cold_spanning_read_coalesces_to_one_origin_get() {
        let object: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        let (store, src) = setup_with_store(&object, 1024);
        let got = src.read_at(0, 8192).unwrap();
        assert_eq!(got, object);
        let stats = src.cache.stats();
        assert_eq!(stats.misses, 8, "8 cold blocks");
        assert_eq!(stats.coalesced_gets, 1);
        assert_eq!(
            store.metrics().get_requests,
            1,
            "a cold run of 8 blocks must be one origin GET"
        );
    }

    #[test]
    fn warm_blocks_split_coalesced_runs() {
        let object: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let (store, src) = setup_with_store(&object, 1024);
        // Warm block 1 (bytes 1024..2048) via a tiny read.
        src.read_at(1500, 10).unwrap();
        assert_eq!(store.metrics().get_requests, 1);
        // Spanning read: runs [block 0] and [blocks 2, 3] → two more GETs.
        let got = src.read_at(0, 4096).unwrap();
        assert_eq!(got, object);
        assert_eq!(store.metrics().get_requests, 3);
    }

    #[test]
    fn full_block_read_shared_is_zero_copy() {
        let object = vec![9u8; 3000];
        let src = setup(&object, 1024);
        let a = src.read_at_shared(1024, 1024).unwrap();
        let b = src.read_at_shared(1024, 1024).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "full-block reads must share the cached Arc");
        assert_eq!(*a, object[1024..2048]);
        // The clipped tail block is also eligible.
        let tail = src.read_at_shared(2048, 3000 - 2048).unwrap();
        assert_eq!(*tail, object[2048..]);
        // Unaligned reads still work through the copying path.
        let partial = src.read_at_shared(100, 50).unwrap();
        assert_eq!(*partial, object[100..150]);
    }

    #[test]
    fn aligned_blocks_cover_and_clip() {
        let src = setup(&vec![0u8; 1000], 256);
        assert_eq!(src.aligned_blocks(0, 1), vec![(0, 256)]);
        assert_eq!(src.aligned_blocks(255, 2), vec![(0, 256), (256, 256)]);
        // Tail block clipped to object size.
        assert_eq!(src.aligned_blocks(900, 100), vec![(768, 232)]);
        assert_eq!(src.aligned_blocks(0, 0), Vec::<(u64, u64)>::new());
        assert_eq!(src.aligned_blocks(2000, 5), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn prefetched_blocks_serve_without_origin() {
        let object = vec![3u8; 2048];
        let src = setup(&object, 512);
        for (off, len) in src.aligned_blocks(0, 2048) {
            src.prefetch_block(off, len).unwrap();
        }
        let misses_after_prefetch = src.cache.stats().misses;
        src.read_at(0, 2048).unwrap();
        assert_eq!(src.cache.stats().misses, misses_after_prefetch, "reads must hit cache");
    }

    #[test]
    fn spanning_read_stitches_blocks() {
        let object: Vec<u8> = (0..=255u8).cycle().take(700).collect();
        let src = setup(&object, 100);
        let got = src.read_at(50, 600).unwrap();
        assert_eq!(got, object[50..650]);
    }
}
