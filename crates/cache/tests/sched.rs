//! Schedule exploration of the *real* [`SingleFlight`] leader/waiter
//! Condvar protocol (the miniature lost-wakeup model lives in
//! `crates/sync/tests/sched.rs`).
//!
//! Each seed interleaves the table check, the leader's publish
//! (table-remove → slot-set → notify), and the waiters' check-then-wait
//! loops differently. The contract: every caller gets the result, no
//! caller hangs, and the flight table is empty afterwards. Any failure
//! prints its seed and a `SCHED_SEED=<n>` replay command.

#![cfg(feature = "sched-fuzz")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use logstore_cache::SingleFlight;
use logstore_sync::{sched, OrderedMutex};
use logstore_types::Error;

#[test]
fn singleflight_every_caller_gets_the_value() {
    sched::explore(0..60, || {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let results = Arc::new(OrderedMutex::new("cache.test.sched_results", Vec::new()));

        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (sf, executions, results) =
                    (Arc::clone(&sf), Arc::clone(&executions), Arc::clone(&results));
                sched::spawn(move || {
                    let (result, role) = sf.run(7, || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        Ok(99)
                    });
                    results.lock().push((result.expect("flight result"), role));
                })
            })
            .collect();
        for h in handles {
            h.join();
        }

        let results = results.lock();
        assert_eq!(results.len(), 3, "every caller must return");
        assert!(results.iter().all(|(v, _)| *v == 99), "every caller shares the value");
        // Callers that arrive after the flight closed lead fresh runs, so
        // executions can reach 3 — but never exceed the caller count, and
        // the table must always drain.
        let n = executions.load(Ordering::SeqCst);
        assert!((1..=3).contains(&n), "implausible execution count {n}");
        assert_eq!(sf.in_flight(), 0, "flight table must drain");
    });
}

/// Errors propagate to every waiter of the failed flight and are never
/// sticky: the table drains so the next arrival would retry fresh.
#[test]
fn singleflight_error_propagation_under_schedules() {
    sched::explore(0..60, || {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let failures = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (sf, failures) = (Arc::clone(&sf), Arc::clone(&failures));
                sched::spawn(move || {
                    let (result, _) = sf.run(5, || Err(Error::NotFound("gone".into())));
                    assert!(result.is_err(), "a failing flight must fail every caller");
                    failures.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }

        assert_eq!(failures.load(Ordering::SeqCst), 3, "every caller must observe the error");
        assert_eq!(sf.in_flight(), 0, "failed flight must leave the table");
    });
}
