//! Concurrency tests for the sharded, singleflight-deduplicating cache:
//! thundering herds share one origin GET, a tiny sharded cache survives
//! get/evict races, and fetch errors propagate to every waiter without
//! becoming sticky.

use logstore_cache::{BlockKey, CachedObjectSource, TieredCache};
use logstore_logblock::pack::RangeSource;
use logstore_oss::{LatencyModel, MemoryStore, ObjectStore, SimulatedOss};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const BLOCK: u64 = 64 * 1024;

fn simulated_object(
    len: usize,
    latency: LatencyModel,
) -> (Arc<SimulatedOss<MemoryStore>>, Vec<u8>) {
    let object: Vec<u8> = (0..=255u8).cycle().take(len).collect();
    let store = SimulatedOss::new(MemoryStore::new(), latency, 7);
    store.inner().put("obj", &object).unwrap();
    (Arc::new(store), object)
}

#[test]
fn thundering_herd_cold_block_is_one_origin_get() {
    // 25 ms modelled request latency, scaled to ~2.5 ms of real sleep so
    // the herd genuinely piles up behind the leader's in-flight GET.
    let latency = LatencyModel::oss_like().with_time_scale(0.1);
    let (store, object) = simulated_object(BLOCK as usize, latency);
    let cache = Arc::new(TieredCache::memory_only_sharded(8 << 20, 4));
    let src = Arc::new(CachedObjectSource::open_with_known_size(
        Arc::clone(&store),
        "obj",
        Arc::clone(&cache),
        BLOCK,
        object.len() as u64,
    ));

    const READERS: usize = 32;
    let barrier = Arc::new(Barrier::new(READERS));
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let src = Arc::clone(&src);
            let barrier = Arc::clone(&barrier);
            let expect = object.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let got = src.read_at(0, BLOCK).unwrap();
                assert_eq!(got, expect);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(
        store.metrics().get_requests,
        1,
        "32 concurrent readers of one cold block must issue exactly 1 origin GET"
    );
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    // Every reader is accounted exactly once: the leader's miss, waiters
    // blocked on its flight, and late arrivals served from memory.
    assert_eq!(stats.misses + stats.memory_hits + stats.singleflight_waits, READERS as u64);
    assert!(stats.singleflight_waits > 0, "with 2.5 ms flights someone must have waited");
}

#[test]
fn thundering_herd_on_many_blocks_is_one_get_per_block() {
    const BLOCKS: u64 = 4;
    let latency = LatencyModel::oss_like().with_time_scale(0.05);
    let (store, object) = simulated_object((BLOCK * BLOCKS) as usize, latency);
    let cache = Arc::new(TieredCache::memory_only_sharded(8 << 20, 4));
    let src = Arc::new(CachedObjectSource::open_with_known_size(
        Arc::clone(&store),
        "obj",
        Arc::clone(&cache),
        BLOCK,
        object.len() as u64,
    ));

    // 32 readers spread over 4 blocks: 8 per block, every block cold.
    let barrier = Arc::new(Barrier::new(32));
    let handles: Vec<_> = (0..32u64)
        .map(|i| {
            let src = Arc::clone(&src);
            let barrier = Arc::clone(&barrier);
            let block = i % BLOCKS;
            let expect = object[(block * BLOCK) as usize..((block + 1) * BLOCK) as usize].to_vec();
            std::thread::spawn(move || {
                barrier.wait();
                let got = src.read_at(block * BLOCK, BLOCK).unwrap();
                assert_eq!(got, expect);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Per-block dedup: at most one GET per cold block. (Exactly one per
    // block unless a reader's run-coalescing merged neighbours — either
    // way never more than the block count.)
    let gets = store.metrics().get_requests;
    assert!(
        (1..=BLOCKS).contains(&gets),
        "expected between 1 and {BLOCKS} origin GETs, saw {gets}"
    );
}

#[test]
fn concurrent_get_evict_stress_on_tiny_sharded_cache() {
    // A cache that holds only ~6 of 64 working-set blocks, split over 4
    // shards, hammered by 8 threads: every read must still return the
    // right bytes, and accounting must stay consistent.
    let cache = Arc::new(TieredCache::memory_only_sharded(6 * 1024, 4));
    const THREADS: u64 = 8;
    const OPS: u64 = 300;
    const KEYS: u64 = 64;
    let fetches = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let fetches = Arc::clone(&fetches);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    // Deterministic per-thread walk: 17 is coprime with 64,
                    // so every thread cycles the whole working set and the
                    // tiny cache is forced to evict constantly. Each key is
                    // read twice back-to-back — the second read hits memory
                    // under any scheduling, so the hit assertion below does
                    // not depend on cross-thread timing luck.
                    let k = (t * 31 + i * 17) % KEYS;
                    let key = BlockKey { path: "stress".into(), offset: k * 1024 };
                    for _ in 0..2 {
                        let fetches = Arc::clone(&fetches);
                        let v = cache
                            .get_or_fetch(&key, move || {
                                fetches.fetch_add(1, Ordering::Relaxed);
                                Ok(vec![k as u8; 1024])
                            })
                            .unwrap();
                        assert_eq!(v.len(), 1024);
                        assert!(v.iter().all(|&b| b == k as u8), "wrong bytes for key {k}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    assert_eq!(
        stats.misses + stats.memory_hits + stats.singleflight_waits,
        THREADS * OPS * 2,
        "every lookup accounted exactly once"
    );
    assert_eq!(stats.misses, fetches.load(Ordering::Relaxed), "one fetch per counted miss");
    assert!(stats.misses > KEYS, "tiny cache must evict and refetch");
    assert!(stats.memory_hits > 0, "hot keys must hit");
}

#[test]
fn singleflight_error_propagates_to_waiters_and_is_not_sticky() {
    let cache = Arc::new(TieredCache::memory_only(1 << 20));
    let key = BlockKey { path: "obj".into(), offset: 0 };
    const READERS: usize = 16;
    let barrier = Arc::new(Barrier::new(READERS));
    let attempts = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let key = key.clone();
            let barrier = Arc::clone(&barrier);
            let attempts = Arc::clone(&attempts);
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_fetch(&key, move || {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    // Hold the flight open so the herd piles up on it.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    Err(logstore_types::Error::NotFound("object vanished".into()))
                })
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Every caller saw the failure — waiters received the leader's error.
    for r in &results {
        let e = r.as_ref().unwrap_err();
        assert!(
            matches!(e, logstore_types::Error::NotFound(m) if m == "object vanished"),
            "waiters must receive the leader's error, got: {e}"
        );
    }
    // Dedup held: far fewer executions than callers (leaders only)…
    let leads = attempts.load(Ordering::Relaxed);
    assert!(leads < READERS as u64, "{leads} executions for {READERS} callers — no dedup");
    assert_eq!(cache.stats().singleflight_waits, READERS as u64 - leads);
    // …and the error is not cached: the next fetch runs and succeeds.
    let v = cache.get_or_fetch(&key, || Ok(vec![1, 2, 3])).unwrap();
    assert_eq!(*v, vec![1, 2, 3]);
}

#[test]
fn prefetch_and_demand_read_share_one_flight() {
    // A demand read issued while a prefetch of the same block is in flight
    // must not duplicate the origin GET.
    let latency = LatencyModel::oss_like().with_time_scale(0.1);
    let (store, object) = simulated_object(BLOCK as usize, latency);
    let cache = Arc::new(TieredCache::memory_only(8 << 20));
    let src = Arc::new(CachedObjectSource::open_with_known_size(
        Arc::clone(&store),
        "obj",
        Arc::clone(&cache),
        BLOCK,
        object.len() as u64,
    ));
    let prefetcher = {
        let src = Arc::clone(&src);
        std::thread::spawn(move || src.prefetch_block(0, BLOCK).unwrap())
    };
    // Demand-read the same block concurrently, repeatedly.
    for _ in 0..4 {
        assert_eq!(src.read_at(0, BLOCK).unwrap(), object);
    }
    prefetcher.join().unwrap();
    assert_eq!(
        store.metrics().get_requests,
        1,
        "prefetch + demand reads of one block must share a single origin GET"
    );
}
