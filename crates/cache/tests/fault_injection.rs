//! Failure injection across the read stack: OSS faults must surface as
//! errors (never wrong data), must not poison the cache, and must heal on
//! retry.

use logstore_cache::{CachedObjectSource, Prefetcher, TieredCache};
use logstore_codec::Compression;
use logstore_logblock::pack::RangeSource;
use logstore_logblock::scan::{evaluate_predicates, ScanStats};
use logstore_logblock::{LogBlockBuilder, LogBlockReader};
use logstore_oss::{FaultScope, FaultyStore, MemoryStore, ObjectStore};
use logstore_types::{CmpOp, ColumnPredicate, TableSchema, Value};
use std::sync::Arc;

fn build_fixture(store: &impl ObjectStore) {
    let mut b = LogBlockBuilder::with_options(TableSchema::request_log(), Compression::LzHigh, 64);
    for i in 0..500i64 {
        b.add_row(&[
            Value::U64(1),
            Value::I64(1000 + i),
            Value::from(format!("10.0.0.{}", i % 9)),
            Value::from("/api"),
            Value::I64(i % 300),
            Value::Bool(i % 11 == 0),
            Value::from(format!("line {i}")),
        ])
        .unwrap();
    }
    store.put("tenants/1/blk.pack", &b.finish().unwrap()).unwrap();
}

fn fixture_store() -> Arc<FaultyStore<MemoryStore>> {
    let store = FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.0, 3);
    build_fixture(store.inner());
    Arc::new(store)
}

fn scan_count(
    source: &CachedObjectSource<FaultyStore<MemoryStore>>,
) -> Result<u32, logstore_types::Error> {
    // CachedObjectSource is not Clone; reopen a reader over a shared Arc'd
    // source by reading through it directly.
    let reader = LogBlockReader::open(ManualSource(source))?;
    let mut stats = ScanStats::default();
    let preds = vec![
        ColumnPredicate::new("latency", CmpOp::Ge, 100i64),
        ColumnPredicate::new("ip", CmpOp::Eq, "10.0.0.3"),
    ];
    Ok(evaluate_predicates(&reader, &preds, true, &mut stats)?.count())
}

/// Borrowing adapter so one cached source serves several readers.
struct ManualSource<'a>(&'a CachedObjectSource<FaultyStore<MemoryStore>>);

impl RangeSource for ManualSource<'_> {
    fn read_at(&self, offset: u64, len: u64) -> logstore_types::Result<Vec<u8>> {
        self.0.read_at(offset, len)
    }
    fn size(&self) -> u64 {
        self.0.size()
    }
}

#[test]
fn faults_surface_and_heal_without_wrong_results() {
    let store = fixture_store();
    let cache = Arc::new(TieredCache::memory_only(1 << 20));
    let source = CachedObjectSource::open_with_block_size(
        Arc::clone(&store),
        "tenants/1/blk.pack",
        cache,
        4 * 1024,
    )
    .unwrap();

    // Healthy baseline.
    let expected = scan_count(&source).expect("healthy scan");
    assert!(expected > 0);

    // Inject a burst of read failures on a cold cache: the scan must error,
    // not fabricate results.
    source.cache().clear_memory();
    store.fail_next(3);
    let result = scan_count(&source);
    assert!(result.is_err(), "scan over failing OSS must error");
    assert!(store.injected() >= 1);

    // After the fault clears, the same scan heals and agrees with baseline.
    store.clear_faults();
    let healed = scan_count(&source).expect("healed scan");
    assert_eq!(healed, expected, "fault must not leave wrong data behind");
}

#[test]
fn prefetch_reports_faults_and_retry_succeeds() {
    let store = fixture_store();
    let cache = Arc::new(TieredCache::memory_only(1 << 20));
    let source = CachedObjectSource::open_with_block_size(
        Arc::clone(&store),
        "tenants/1/blk.pack",
        cache,
        4 * 1024,
    )
    .unwrap();
    let prefetcher = Prefetcher::new(4);
    let size = source.size();

    store.fail_next(2);
    assert!(prefetcher.prefetch(&source, vec![(0, size)]).is_err());

    // Retry fills the cache; subsequent reads never touch the origin.
    prefetcher.prefetch(&source, vec![(0, size)]).expect("retry");
    store.fail_next(u64::MAX); // origin is now poisoned...
    let got = source.read_at(0, size).expect("served from cache");
    assert_eq!(got.len() as u64, size);
}

#[test]
fn flaky_store_eventually_serves_everything() {
    // 30% read-failure rate: a retry loop must still complete a full scan.
    let store = FaultyStore::new(MemoryStore::new(), FaultScope::Reads, 0.3, 11);
    build_fixture(store.inner());
    let store = Arc::new(store);
    let cache = Arc::new(TieredCache::memory_only(1 << 20));
    let mut attempts = 0;
    let count = loop {
        attempts += 1;
        assert!(attempts < 100, "retry loop diverged");
        let Ok(source) = CachedObjectSource::open_with_block_size(
            Arc::clone(&store),
            "tenants/1/blk.pack",
            Arc::clone(&cache),
            4 * 1024,
        ) else {
            continue;
        };
        match scan_count(&source) {
            Ok(n) => break n,
            Err(_) => continue, // cache keeps partial progress; retry
        }
    };
    assert!(count > 0);
}
