//! Shared engine + dataset construction for the query experiments
//! (Figures 15–17).
//!
//! Mirrors the paper's setup at laptop scale: a Zipfian(0.99) tenant
//! population with a 48-hour history, archived into per-tenant LogBlocks on
//! the simulated OSS, queried with the six per-tenant templates of §6.3.

use logstore_core::{ClusterConfig, LogStore};
use logstore_oss::LatencyModel;
use logstore_types::Timestamp;
use logstore_workload::{LogRecordGenerator, WorkloadSpec};

/// A ready-to-query engine plus its workload description.
pub struct EngineSetup {
    /// The engine.
    pub store: LogStore,
    /// The tenant population.
    pub spec: WorkloadSpec,
    /// History start.
    pub start: Timestamp,
    /// History end.
    pub end: Timestamp,
}

/// Parameters for dataset construction.
#[derive(Debug, Clone)]
pub struct DatasetParams {
    /// Number of tenants.
    pub tenants: u64,
    /// Zipfian skew.
    pub theta: f64,
    /// Total history rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams { tenants: 100, theta: 0.99, rows: 400_000, seed: 61 }
    }
}

/// Builds an engine over `latency`-modelled OSS and loads the dataset
/// through the full two-phase write path.
pub fn build_engine(latency: LatencyModel, params: &DatasetParams) -> EngineSetup {
    let mut config = ClusterConfig::for_testing();
    config.workers = 4;
    config.shards_per_worker = 2;
    config.oss_latency = latency;
    config.block_rows = 1024;
    config.max_rows_per_logblock = 65536;
    config.cache_memory_bytes = 256 << 20;
    config.cache_block_size = 8 * 1024;
    config.prefetch_threads = 32;
    // Benchmarks flush explicitly after loading.
    config.rowstore_flush_bytes = usize::MAX;
    config.rowstore_backpressure_bytes = usize::MAX;
    config.seed = params.seed;
    let store = LogStore::open(config).expect("engine open");

    let spec = WorkloadSpec::new(params.tenants, params.theta);
    let start = Timestamp(1_600_000_000_000);
    let end = Timestamp(1_600_000_000_000 + 48 * 3600 * 1000);
    let mut gen = LogRecordGenerator::new(params.seed);
    let history = gen.history(&spec, params.rows, start, end);
    for chunk in history.chunks(5000) {
        let report = store.ingest(chunk.to_vec()).expect("ingest");
        assert_eq!(report.rejected, 0, "benchmark load must not be backpressured");
    }
    let report = store.flush().expect("flush");
    assert_eq!(report.rows_archived as usize, params.rows);
    EngineSetup { store, spec, start, end }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_builds_and_queries() {
        let params = DatasetParams { tenants: 20, theta: 0.99, rows: 2000, seed: 3 };
        let setup = build_engine(LatencyModel::zero(), &params);
        assert!(setup.store.block_count() >= 20, "every tenant should have a block");
        let result =
            setup.store.query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1").unwrap();
        let count = result.rows[0][0].as_u64().unwrap();
        assert!(count > 100, "rank-1 tenant should dominate: {count}");
    }
}
