//! Shared plumbing for the figure-reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (§6); see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results. The helpers here keep
//! the harness outputs uniform: aligned text tables and percentile
//! summaries.

#![forbid(unsafe_code)]

pub mod balancing;
pub mod dataset;

/// Prints an aligned text table: header row + data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Percentile of a sorted slice (p in [0, 100]).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Fraction of samples strictly below `threshold`.
pub fn fraction_below(sorted: &[f64], threshold: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.partition_point(|&x| x < threshold);
    n as f64 / sorted.len() as f64
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn fraction_below_counts() {
        let xs = vec![1.0, 2.0, 3.0];
        assert_eq!(fraction_below(&xs, 2.5), 2.0 / 3.0);
        assert_eq!(fraction_below(&xs, 0.5), 0.0);
        assert_eq!(fraction_below(&xs, 10.0), 1.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
