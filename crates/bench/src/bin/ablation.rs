//! Ablation: the individual contribution of each §5 query optimization.
//!
//! The paper evaluates data skipping (Fig 15) and prefetch/cache (Fig 16)
//! separately, then everything together (Fig 17). This harness completes
//! the matrix: baseline, each optimization alone, and all combined, over
//! the same query workload — the ablation DESIGN.md calls out.

use logstore_bench::dataset::{build_engine, DatasetParams};
use logstore_bench::{mean, print_table};
use logstore_core::QueryOptions;
use logstore_oss::LatencyModel;
use logstore_types::{TenantId, Timestamp};
use logstore_workload::records::session_ip;

/// Fraction of modelled latency actually slept.
const TIME_SCALE: f64 = 0.1;

fn main() {
    let params = DatasetParams { rows: 100_000, tenants: 100, ..DatasetParams::default() };
    println!(
        "loading {} rows across {} tenants; time scale {TIME_SCALE} ...",
        params.rows, params.tenants
    );
    let setup = build_engine(LatencyModel::oss_like().with_time_scale(TIME_SCALE), &params);
    let span = setup.end - setup.start;

    let configs: Vec<(&str, QueryOptions)> = vec![
        ("baseline", QueryOptions::baseline()),
        (
            "+skipping",
            QueryOptions {
                use_skipping: true,
                use_prefetch: false,
                use_cache: false,
                ..QueryOptions::default()
            },
        ),
        (
            "+cache",
            QueryOptions {
                use_skipping: false,
                use_prefetch: false,
                use_cache: true,
                ..QueryOptions::default()
            },
        ),
        (
            "+cache+prefetch",
            QueryOptions {
                use_skipping: false,
                use_prefetch: true,
                use_cache: true,
                ..QueryOptions::default()
            },
        ),
        ("all", QueryOptions::default()),
    ];

    let mut rows = Vec::new();
    for (name, opts) in &configs {
        let mut latencies = Vec::new();
        for tenant in 1..=25u64 {
            let qs = setup.start.millis() + span / 3;
            let qe = qs + span / 48;
            let ip = session_ip(TenantId(tenant), Timestamp(qs + span / 96), 32);
            let sql = format!(
                "SELECT log FROM request_log WHERE tenant_id = {tenant} \
                 AND ts >= {qs} AND ts <= {qe} AND ip = '{ip}' AND latency >= 100"
            );
            // Cold cache per query so each configuration pays its own I/O.
            setup.store.clear_cache();
            let exec = setup.store.query_with_options(&sql, opts).expect("query");
            latencies.push(exec.wall.as_secs_f64() * 1000.0 / TIME_SCALE);
        }
        rows.push(vec![name.to_string(), format!("{:.0}", mean(&latencies))]);
    }
    print_table(
        "Ablation: mean cold-cache query latency (modelled ms) per optimization",
        &["configuration", "mean latency"],
        &rows,
    );
    println!(
        "\nreading guide: 'skipping' cuts bytes+requests; 'cache' adds block \
         alignment (fewer, larger requests); 'prefetch' parallelizes the \
         misses; 'all' composes them."
    );
}
