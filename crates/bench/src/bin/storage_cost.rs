//! Storage cost: raw log bytes vs packed LogBlock bytes per codec.
//!
//! The paper motivates the shared-data design with storage cost: OSS is
//! cheap per byte and LogBlocks are "read-optimized ... with a high
//! compression rate", ZSTD chosen as the default *because* "the compression
//! ratio is preferred in LogStore to reduce the amount of data transmitted
//! over the network". This harness quantifies that trade-off on a
//! realistic log corpus, including the cost of the full-column indexes
//! ("the extra space cost of the index is acceptable after using OSS").

use logstore_bench::print_table;
use logstore_codec::Compression;
use logstore_logblock::pack::PackReader;
use logstore_logblock::LogBlockBuilder;
use logstore_types::{TableSchema, Timestamp};
use logstore_workload::{LogRecordGenerator, WorkloadSpec};

fn main() {
    let rows = 50_000usize;
    let spec = WorkloadSpec::new(1, 0.0); // one tenant: one LogBlock
    let mut gen = LogRecordGenerator::new(5);
    let history = gen.history(&spec, rows, Timestamp(0), Timestamp(3_600_000));
    let raw_bytes: usize = history.iter().map(|r| r.approx_size()).sum();
    println!(
        "{rows} rows of request_log, {:.1} MiB raw (in-memory row-store size)",
        raw_bytes as f64 / (1 << 20) as f64
    );

    let mut table = Vec::new();
    for codec in [Compression::None, Compression::LzFast, Compression::LzHigh] {
        let mut builder = LogBlockBuilder::with_options(TableSchema::request_log(), codec, 4096);
        let wall = std::time::Instant::now();
        for r in &history {
            builder.add_row(&r.to_row()).expect("add row");
        }
        let bytes = builder.finish().expect("finish");
        let secs = wall.elapsed().as_secs_f64();
        let pack = PackReader::open(bytes.clone()).expect("reopen");
        let index_bytes: u64 =
            pack.members().iter().filter(|m| m.name.starts_with("index.")).map(|m| m.len).sum();
        let data_bytes: u64 =
            pack.members().iter().filter(|m| m.name.starts_with("col.")).map(|m| m.len).sum();
        table.push(vec![
            codec.to_string(),
            format!("{:.2}", bytes.len() as f64 / (1 << 20) as f64),
            format!("{:.2}x", raw_bytes as f64 / bytes.len() as f64),
            format!("{:.2}", data_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}", index_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}%", index_bytes as f64 / bytes.len() as f64 * 100.0),
            format!("{:.0}k rows/s", rows as f64 / secs / 1000.0),
        ]);
    }
    print_table(
        "Storage cost per codec (one LogBlock, full-column indexes included)",
        &["codec", "packed MiB", "vs raw", "column MiB", "index MiB", "index share", "build rate"],
        &table,
    );
    println!(
        "\npaper check: the high-ratio codec ('ZSTD', our lz-high) is the default; \
         the index overhead is the price of 'Full-column indexed and Skippable', \
         deemed acceptable on cheap object storage."
    );
}
