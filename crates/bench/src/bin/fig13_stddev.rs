//! Figure 13: shard / worker access standard deviation, before vs after
//! max-flow balancing, as the skew factor grows.

use logstore_bench::balancing::{run, BalanceExperiment, Policy};
use logstore_bench::print_table;
use logstore_flow::monitor::load_stddev;

fn main() {
    let thetas = [0.0, 0.2, 0.4, 0.6, 0.8, 0.99];
    let mut shard_rows = Vec::new();
    let mut worker_rows = Vec::new();
    let mut improvements = Vec::new();
    for &theta in &thetas {
        let exp = BalanceExperiment::paper_like(theta);
        let outcome = run(&exp, Policy::MaxFlow);
        let shard_before = load_stddev(&outcome.before.shard_load);
        let shard_after = load_stddev(&outcome.after.shard_load);
        let worker_before = load_stddev(&outcome.before.worker_load);
        let worker_after = load_stddev(&outcome.after.worker_load);
        shard_rows.push(vec![
            format!("{theta}"),
            format!("{shard_before:.0}"),
            format!("{shard_after:.0}"),
        ]);
        worker_rows.push(vec![
            format!("{theta}"),
            format!("{worker_before:.0}"),
            format!("{worker_after:.0}"),
        ]);
        if theta >= 0.8 {
            improvements.push((
                theta,
                shard_before / shard_after.max(1.0),
                worker_before / worker_after.max(1.0),
            ));
        }
    }
    print_table(
        "Figure 13(a): shard accesses std (rows/s) before/after max-flow balancing",
        &["theta", "before", "after"],
        &shard_rows,
    );
    print_table(
        "Figure 13(b): worker accesses std (rows/s) before/after max-flow balancing",
        &["theta", "before", "after"],
        &worker_rows,
    );
    for (theta, s, w) in improvements {
        println!(
            "\ntheta={theta}: shard std reduced {s:.1}x, worker std reduced {w:.1}x \
             (paper reports 2.8x shard / 5x worker at high skew)"
        );
    }
}
