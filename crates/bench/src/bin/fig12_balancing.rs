//! Figure 12: system performance under different balancing algorithms.
//!
//! Sweeps the skew factor θ ∈ {0, 0.2, 0.4, 0.6, 0.8, 0.99} for three
//! policies — no flow control, the greedy balancer (Alg 2) and the
//! max-flow balancer (Alg 3) — and reports:
//!
//! * (a) write throughput,
//! * (b) write latency for a batch of 1000 log entries,
//! * (c) the number of route rules.

use logstore_bench::balancing::{run, BalanceExperiment, Policy};
use logstore_bench::print_table;

fn main() {
    let thetas = [0.0, 0.2, 0.4, 0.6, 0.8, 0.99];
    let policies = [Policy::None, Policy::Greedy, Policy::MaxFlow];

    let mut tp_rows = Vec::new();
    let mut lat_rows = Vec::new();
    let mut route_rows = Vec::new();
    for &theta in &thetas {
        let exp = BalanceExperiment::paper_like(theta);
        let mut tp = vec![format!("{theta}")];
        let mut lat = vec![format!("{theta}")];
        let mut routes = vec![format!("{theta}")];
        for &policy in &policies {
            let outcome = run(&exp, policy);
            tp.push(format!("{}", outcome.after.throughput));
            lat.push(format!("{:.1}", outcome.after.avg_latency_ms));
            routes.push(format!("{}", outcome.routes));
        }
        tp_rows.push(tp);
        lat_rows.push(lat);
        route_rows.push(routes);
    }

    let exp0 = BalanceExperiment::paper_like(0.0);
    println!(
        "cluster: 6 workers x 4 shards, shard capacity 100k rows/s, offered {} rows/s",
        exp0.total_rate
    );
    print_table(
        "Figure 12(a): write throughput (rows/s) vs skew factor",
        &["theta", "no-control", "greedy", "max-flow"],
        &tp_rows,
    );
    print_table(
        "Figure 12(b): write latency (ms per 1000-entry batch) vs skew factor",
        &["theta", "no-control", "greedy", "max-flow"],
        &lat_rows,
    );
    print_table(
        "Figure 12(c): route rules vs skew factor",
        &["theta", "no-control", "greedy", "max-flow"],
        &route_rows,
    );
    println!(
        "\npaper shape check: without control, throughput collapses and latency \
         grows toward ~2000 ms as theta -> 0.99; both balancers hold throughput \
         near the offered rate, and max-flow needs fewer route rules than greedy."
    );
}
