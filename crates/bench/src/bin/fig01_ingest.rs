//! Figure 1 (motivation): write throughput over a day.
//!
//! The paper's Figure 1 shows the diurnal curve of Alibaba Cloud DBaaS
//! audit-log traffic (peaking near 50 M entries/s during working hours).
//! This harness drives the embedded engine with a scaled diurnal rate
//! curve and reports per-"hour" accepted throughput, demonstrating that the
//! two-phase write path sustains the shape end to end (row store ingest +
//! background builds).

use logstore_bench::print_table;
use logstore_core::{ClusterConfig, LogStore};
use logstore_types::Timestamp;
use logstore_workload::{LogRecordGenerator, WorkloadSpec};

/// Relative diurnal shape (fraction of peak, hourly).
const DIURNAL: [f64; 24] = [
    0.45, 0.40, 0.38, 0.36, 0.35, 0.37, 0.45, 0.60, 0.80, 0.95, 1.00, 0.98, 0.90, 0.95, 1.00, 0.98,
    0.92, 0.85, 0.75, 0.68, 0.62, 0.58, 0.52, 0.48,
];

fn main() {
    let mut config = ClusterConfig::for_testing();
    config.workers = 4;
    config.shards_per_worker = 2;
    config.rowstore_flush_bytes = 8 << 20;
    let store = LogStore::open(config).expect("engine open");
    let spec = WorkloadSpec::new(200, 0.99);
    let mut gen = LogRecordGenerator::new(1);

    // Scale: peak "hour" carries this many records.
    let peak_rows = 20_000usize;
    let mut rows = Vec::new();
    let mut total_accepted = 0u64;
    let day_start = Timestamp(1_600_000_000_000);
    for (hour, share) in DIURNAL.iter().enumerate() {
        let n = (peak_rows as f64 * share) as usize;
        let hour_start = day_start + (hour as i64) * 3_600_000;
        let records =
            gen.history(&spec, n, hour_start, hour_start.saturating_add_millis(3_599_000));
        let wall = std::time::Instant::now();
        let mut accepted = 0u64;
        for chunk in records.chunks(2000) {
            let report = store.ingest(chunk.to_vec()).expect("ingest");
            accepted += report.accepted;
        }
        let secs = wall.elapsed().as_secs_f64();
        total_accepted += accepted;
        rows.push(vec![
            format!("{hour:02}:00"),
            accepted.to_string(),
            format!("{:.0}", accepted as f64 / secs.max(1e-9)),
        ]);
    }
    print_table(
        "Figure 1: diurnal ingest (scaled) — accepted records and achieved rows/s per hour",
        &["hour", "accepted", "achieved rows/s"],
        &rows,
    );
    let report = store.flush().expect("final flush");
    println!(
        "\nday total: {total_accepted} records accepted; final flush archived {} rows \
         into {} more logblocks; {} logblocks on OSS overall",
        report.rows_archived,
        report.blocks_built,
        store.block_count()
    );
}
