//! Concurrent block-cache benchmark: the seed cache (one global LRU lock,
//! no miss dedup, per-block demand GETs) vs the concurrency-grade cache
//! (sharded tiers + singleflight + coalesced run GETs) on a
//! latency-simulated OSS under a zipf hot/cold workload.
//!
//! Eight reader threads hammer one object: zipf-distributed point reads
//! (a hot head that thunders) mixed with sequential scans of cold runs
//! (which the new path coalesces into single GETs). Axes: cache block
//! size × shard count. Emits `BENCH_cache.json` with origin GET counts
//! and wall-clock per configuration.

use logstore_bench::print_table;
use logstore_cache::{BlockKey, CachedObjectSource, SizedLru, TieredCache};
use logstore_logblock::pack::RangeSource;
use logstore_oss::{LatencyModel, MemoryStore, ObjectStore, SimulatedOss};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Fraction of modelled OSS latency actually slept.
const TIME_SCALE: f64 = 0.05;
/// Object size in cache blocks.
const OBJECT_BLOCKS: u64 = 256;
/// Reader threads.
const THREADS: u64 = 8;
/// Operations per thread.
const OPS: u64 = 250;
/// Blocks per sequential cold scan.
const SCAN_BLOCKS: u64 = 8;
/// Zipf skew of the point-read block distribution.
const ZIPF_S: f64 = 1.1;

/// The pre-rework cache shape: one `SizedLru` behind one mutex, probe →
/// release → fetch → insert, no dedup, no coalescing. This is what every
/// `get_or_fetch` call did at the seed.
struct SeedCache {
    lru: Mutex<SizedLru<BlockKey, Arc<Vec<u8>>>>,
}

impl SeedCache {
    fn new(capacity: usize) -> Self {
        SeedCache { lru: Mutex::new(SizedLru::new(capacity)) }
    }

    fn get_or_fetch(&self, key: &BlockKey, fetch: impl FnOnce() -> Vec<u8>) -> Arc<Vec<u8>> {
        if let Some(hit) = self.lru.lock().get(key).cloned() {
            return hit;
        }
        let data = Arc::new(fetch());
        let size = data.len();
        self.lru.lock().put(key.clone(), Arc::clone(&data), size);
        data
    }
}

/// Zipf-over-ranks sampler: rank r is drawn with weight 1/(r+1)^s, and a
/// seeded shuffle maps ranks to block indices so the hot head is scattered
/// across the object.
struct ZipfBlocks {
    cdf: Vec<f64>,
    rank_to_block: Vec<u64>,
}

impl ZipfBlocks {
    fn new(n: u64, s: f64, seed: u64) -> Self {
        let mut weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let mut rank_to_block: Vec<u64> = (0..n).collect();
        use rand::seq::SliceRandom;
        rank_to_block.shuffle(&mut StdRng::seed_from_u64(seed));
        ZipfBlocks { cdf: weights, rank_to_block }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        self.rank_to_block[rank]
    }
}

struct RunResult {
    mode: &'static str,
    block_kib: u64,
    shards: usize,
    wall_ms: f64,
    origin_gets: u64,
    bytes_from_origin: u64,
    singleflight_waits: u64,
    coalesced_gets: u64,
}

fn make_store(block_size: u64) -> (Arc<SimulatedOss<MemoryStore>>, u64) {
    let object_len = OBJECT_BLOCKS * block_size;
    let object: Vec<u8> = (0..=255u8).cycle().take(object_len as usize).collect();
    let store = SimulatedOss::new(
        MemoryStore::new(),
        LatencyModel::oss_like().with_time_scale(TIME_SCALE),
        11,
    );
    store.inner().put("obj", &object).unwrap();
    (Arc::new(store), object_len)
}

/// One op stream, identical for every configuration (seeded per thread):
/// 80% zipf point reads of one block, 20% sequential cold scans.
fn workload_ops(thread: u64, zipf: &ZipfBlocks) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(0xCAC4E + thread);
    let mut ops = Vec::with_capacity(OPS as usize);
    for _ in 0..OPS {
        if rng.gen_bool(0.2) {
            let start = rng.gen_range(0..OBJECT_BLOCKS - SCAN_BLOCKS);
            ops.push((start, SCAN_BLOCKS));
        } else {
            ops.push((zipf.sample(&mut rng), 1));
        }
    }
    ops
}

fn run_seed(block_size: u64, cache_bytes: usize) -> RunResult {
    let (store, _) = make_store(block_size);
    let cache = SeedCache::new(cache_bytes);
    let zipf = ZipfBlocks::new(OBJECT_BLOCKS, ZIPF_S, 99);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ops = workload_ops(t, &zipf);
            let cache = &cache;
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for (block, count) in ops {
                    // Assemble the op's result buffer exactly like
                    // `read_at` does, so both modes do equal work.
                    let mut out = Vec::with_capacity((count * block_size) as usize);
                    for b in block..block + count {
                        let key = BlockKey { path: "obj".into(), offset: b * block_size };
                        let data = cache.get_or_fetch(&key, || {
                            store.get_range("obj", b * block_size, block_size).unwrap()
                        });
                        out.extend_from_slice(&data);
                    }
                    assert_eq!(out.len() as u64, count * block_size);
                }
            });
        }
    });
    RunResult {
        mode: "seed",
        block_kib: block_size / 1024,
        shards: 1,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        origin_gets: store.metrics().get_requests,
        bytes_from_origin: store.metrics().bytes_read,
        singleflight_waits: 0,
        coalesced_gets: 0,
    }
}

fn run_new(block_size: u64, shards: usize, cache_bytes: usize) -> RunResult {
    let (store, object_len) = make_store(block_size);
    let cache = Arc::new(TieredCache::memory_only_sharded(cache_bytes, shards));
    let src = Arc::new(CachedObjectSource::open_with_known_size(
        Arc::clone(&store),
        "obj",
        Arc::clone(&cache),
        block_size,
        object_len,
    ));
    let zipf = ZipfBlocks::new(OBJECT_BLOCKS, ZIPF_S, 99);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ops = workload_ops(t, &zipf);
            let src = Arc::clone(&src);
            scope.spawn(move || {
                for (block, count) in ops {
                    let data = src.read_at(block * block_size, count * block_size).unwrap();
                    assert_eq!(data.len() as u64, count * block_size);
                }
            });
        }
    });
    let stats = cache.stats();
    RunResult {
        mode: "new",
        block_kib: block_size / 1024,
        shards: cache.shard_count(),
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        origin_gets: store.metrics().get_requests,
        bytes_from_origin: stats.bytes_from_origin,
        singleflight_waits: stats.singleflight_waits,
        coalesced_gets: stats.coalesced_gets,
    }
}

fn main() {
    let block_sizes: &[u64] = &[16 * 1024, 64 * 1024, 256 * 1024];
    let shard_counts: &[usize] = &[1, 4, 16];

    println!(
        "concurrent zipf hot/cold workload: {THREADS} threads x {OPS} ops, \
         {OBJECT_BLOCKS}-block object, time scale {TIME_SCALE}"
    );

    let mut results: Vec<RunResult> = Vec::new();
    for &block_size in block_sizes {
        // The cache holds a quarter of the object at every block size, so
        // cold scans must evict and the hot head stays resident.
        let cache_bytes = (OBJECT_BLOCKS * block_size / 4) as usize;
        results.push(run_seed(block_size, cache_bytes));
        for &shards in shard_counts {
            results.push(run_new(block_size, shards, cache_bytes));
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.block_kib.to_string(),
                r.shards.to_string(),
                format!("{:.1}", r.wall_ms),
                r.origin_gets.to_string(),
                r.singleflight_waits.to_string(),
                r.coalesced_gets.to_string(),
            ]
        })
        .collect();
    print_table(
        "block cache under concurrency (seed vs sharded+singleflight+coalesced)",
        &["mode", "block KiB", "shards", "wall ms", "origin GETs", "sf waits", "coalesced"],
        &rows,
    );

    for &block_size in block_sizes {
        let kib = block_size / 1024;
        let seed = results.iter().find(|r| r.mode == "seed" && r.block_kib == kib).unwrap();
        let best = results
            .iter()
            .filter(|r| r.mode == "new" && r.block_kib == kib)
            .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
            .unwrap();
        println!(
            "{kib:>4} KiB blocks: {:.0} -> {:.0} origin GETs ({:.1}x), wall {:.0} -> {:.0} ms \
             ({:.1}x, best at {} shards)",
            seed.origin_gets as f64,
            best.origin_gets as f64,
            seed.origin_gets as f64 / best.origin_gets.max(1) as f64,
            seed.wall_ms,
            best.wall_ms,
            seed.wall_ms / best.wall_ms,
            best.shards,
        );
    }

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"threads\": {THREADS}, \"ops_per_thread\": {OPS}, \
         \"object_blocks\": {OBJECT_BLOCKS}, \"scan_blocks\": {SCAN_BLOCKS}, \
         \"zipf_s\": {ZIPF_S}, \"time_scale\": {TIME_SCALE}}},\n"
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"block_kib\": {}, \"shards\": {}, \"wall_ms\": {:.2}, \
             \"origin_gets\": {}, \"bytes_from_origin\": {}, \"singleflight_waits\": {}, \
             \"coalesced_gets\": {}}}{}\n",
            r.mode,
            r.block_kib,
            r.shards,
            r.wall_ms,
            r.origin_gets,
            r.bytes_from_origin,
            r.singleflight_waits,
            r.coalesced_gets,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"notes\": \"'new' runs use the production TieredCache whose shard locks are \
         logstore_sync::OrderedMutex wrappers; in release they compile to plain parking_lot \
         locks (zero-cost passthrough, size_of-tested), and measured wall times match the \
         pre-wrapper PR 3 baselines within run-to-run noise. 'seed' is the PR 2-era \
         single-Mutex cache, kept raw as the benchmark control.\"\n",
    );
    json.push_str("}\n");
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("\nwrote BENCH_cache.json ({} runs)", results.len());
}
