//! Figure 17: overall query performance before vs after enabling all
//! optimizations (data skipping + multi-level cache + parallel prefetch),
//! on a mixed workload of the §6.3 per-tenant query templates.
//!
//! Paper result: before, >50% of queries exceed 10 s and 1% exceed 30 s;
//! after, 99% return within 2 s, 90% within 1 s, 75% within 100 ms.

use logstore_bench::dataset::{build_engine, DatasetParams};
use logstore_bench::{fraction_below, percentile, print_table};
use logstore_core::QueryOptions;
use logstore_oss::LatencyModel;
use logstore_types::TenantId;
use logstore_workload::queries::tenant_queries;
use rand::SeedableRng;

/// Fraction of modelled latency actually slept.
const TIME_SCALE: f64 = 0.05;

fn main() {
    let params = DatasetParams { rows: 60_000, tenants: 100, ..DatasetParams::default() };
    println!(
        "loading {} rows across {} tenants; time scale {TIME_SCALE} ...",
        params.rows, params.tenants
    );
    let setup = build_engine(LatencyModel::oss_like().with_time_scale(TIME_SCALE), &params);

    // The mixed workload: every §6.3 template (retrieval, full-text and
    // the aggregation pair) for a sample of tenants across the whole rank
    // range.
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut workload = Vec::new();
    for tenant in (1..=params.tenants).step_by(2) {
        workload.extend(tenant_queries(TenantId(tenant), setup.start, setup.end, &mut rng));
    }
    println!("{} queries in the mixed workload", workload.len());

    let before_opts = QueryOptions::baseline();
    // "after(seq)" isolates the scatter/gather contribution: all paper
    // optimizations on, but sources collected one at a time.
    let after_seq_opts = QueryOptions::default().with_parallelism(1);
    let after_opts = QueryOptions::default();
    let mut samples: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, opts) in
        [("before", &before_opts), ("after(seq)", &after_seq_opts), ("after", &after_opts)]
    {
        // Each configuration starts cold and may warm its own cache.
        setup.store.clear_cache();
        let mut latencies = Vec::with_capacity(workload.len());
        for sql in &workload {
            // Cold cache per query for the baseline fairness; the "after"
            // configuration keeps its cache warm across queries, exactly
            // like production.
            if !opts.use_cache {
                setup.store.clear_cache();
            }
            let exec = setup.store.query_with_options(sql, opts).expect("query");
            latencies.push(exec.wall.as_secs_f64() * 1000.0 / TIME_SCALE);
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        samples.push((name.to_string(), latencies));
    }

    let mut rows = Vec::new();
    for (name, lat) in &samples {
        rows.push(vec![
            name.clone(),
            format!("{:.0}", percentile(lat, 50.0)),
            format!("{:.0}", percentile(lat, 75.0)),
            format!("{:.0}", percentile(lat, 90.0)),
            format!("{:.0}", percentile(lat, 99.0)),
            format!("{:.0}", percentile(lat, 100.0)),
        ]);
    }
    print_table(
        "Figure 17: query latency percentiles (modelled ms)",
        &["config", "p50", "p75", "p90", "p99", "max"],
        &rows,
    );

    let mut rows = Vec::new();
    for (name, lat) in &samples {
        rows.push(vec![
            name.clone(),
            format!("{:.1}%", fraction_below(lat, 100.0) * 100.0),
            format!("{:.1}%", fraction_below(lat, 1000.0) * 100.0),
            format!("{:.1}%", fraction_below(lat, 2000.0) * 100.0),
            format!("{:.1}%", (1.0 - fraction_below(lat, 10_000.0)) * 100.0),
        ]);
    }
    print_table(
        "Figure 17: latency distribution",
        &["config", "<100ms", "<1s", "<2s", ">10s"],
        &rows,
    );
    println!(
        "\npaper shape: before — >50% of queries over 10s; after — 99% under 2s, \
         90% under 1s, 75% under 100ms."
    );
}
