//! Compaction read-amplification benchmark: an aged multi-tenant dataset
//! (many small LogBlocks, the residue of frequent small flushes) queried
//! cold before and after one background compaction pass.
//!
//! Measures, summed over a fixed per-tenant query set: OSS GET requests,
//! LogBlocks visited, and modelled OSS time. Compaction must cut GETs and
//! blocks visited by at least 2× — the acceptance bar — while every query
//! returns byte-identical results and GC leaves OSS exactly mirroring the
//! LogBlock map. Emits `BENCH_compact.json`.
//!
//! `--smoke` runs a small matrix into a temp file and asserts the same
//! invariants (used by `scripts/check.sh`).

use logstore_core::{ClusterConfig, LogStore, QueryOptions};
use logstore_oss::ObjectStore;
use logstore_types::{TenantId, Timestamp};
use logstore_workload::LogRecordGenerator;

struct Knobs {
    tenants: u64,
    /// Ingest+flush cycles per tenant: each cycle strands one small block.
    cycles: usize,
    rows_per_cycle: usize,
    out_path: std::path::PathBuf,
    smoke: bool,
}

/// One measured phase (before or after compaction).
#[derive(Default)]
struct Phase {
    oss_gets: u64,
    blocks_visited: u64,
    modelled_oss_ms: f64,
    results: Vec<Vec<Vec<logstore_types::Value>>>,
}

fn tenant_queries(tenant: u64, max_ts: i64) -> Vec<String> {
    vec![
        format!("SELECT COUNT(*) FROM request_log WHERE tenant_id = {tenant}"),
        format!(
            "SELECT COUNT(*) FROM request_log WHERE tenant_id = {tenant} AND ts >= {}",
            max_ts / 2
        ),
        format!("SELECT latency FROM request_log WHERE tenant_id = {tenant} AND fail = true"),
    ]
}

/// Runs the full query set cold (cache cleared, OSS metrics zeroed) and
/// sums the read-amplification counters.
fn run_phase(s: &LogStore, tenants: u64, max_ts: i64) -> Phase {
    s.clear_cache();
    s.reset_oss_metrics();
    let mut phase = Phase::default();
    for tenant in 1..=tenants {
        for sql in tenant_queries(tenant, max_ts) {
            let exec = s.query_with_options(&sql, &QueryOptions::default()).expect("bench query");
            phase.blocks_visited += exec.stats.blocks_visited;
            phase.modelled_oss_ms += exec.modelled_oss.as_secs_f64() * 1e3;
            phase.results.push(exec.result.rows);
        }
    }
    phase.oss_gets = s.oss_metrics().get_requests;
    phase
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let knobs = if smoke {
        Knobs {
            tenants: 4,
            cycles: 8,
            rows_per_cycle: 12,
            out_path: std::env::temp_dir()
                .join(format!("BENCH_compact_smoke_{}.json", std::process::id())),
            smoke: true,
        }
    } else {
        Knobs {
            tenants: 16,
            cycles: 40,
            rows_per_cycle: 12,
            out_path: "BENCH_compact.json".into(),
            smoke: false,
        }
    };

    let s = LogStore::open(ClusterConfig::for_testing()).expect("open engine");
    let mut generator = LogRecordGenerator::new(0xc0de);
    let mut ts = 0i64;
    // Age the dataset: frequent small flushes strand one small LogBlock
    // per tenant per cycle, exactly the fragmentation compaction targets.
    for _cycle in 0..knobs.cycles {
        for tenant in 1..=knobs.tenants {
            let batch: Vec<_> = (0..knobs.rows_per_cycle)
                .map(|_| {
                    ts += 1;
                    generator.record(TenantId(tenant), Timestamp(ts))
                })
                .collect();
            let report = s.ingest(batch).expect("bench ingest");
            assert_eq!(report.rejected + report.failed, 0, "bench ingest must be clean");
        }
        s.flush().expect("bench flush");
    }
    let blocks_before = s.block_count();
    let total_rows = (knobs.tenants as usize * knobs.cycles * knobs.rows_per_cycle) as u64;

    let before = run_phase(&s, knobs.tenants, ts);

    let report = s.compact().expect("compaction pass");
    let gc = s.gc();
    assert!(report.runs_committed >= knobs.tenants, "every tenant must compact: {report:?}");
    assert_eq!(report.rows_rewritten, total_rows, "compaction must rewrite every row");
    assert_eq!(gc.retained, 0, "no delete may fail on the in-memory store");
    let blocks_after = s.block_count();

    // OSS must hold exactly the mapped blocks — nothing leaked, nothing
    // dangling — and the whole dataset must still be there.
    let on_oss = s.shared().fault_layer().inner().list("tenants/").expect("raw list").len();
    assert_eq!(on_oss, blocks_after, "OSS objects must mirror the LogBlock map after GC");

    let after = run_phase(&s, knobs.tenants, ts);
    assert_eq!(before.results, after.results, "compaction changed query results");

    let gets_ratio = before.oss_gets as f64 / after.oss_gets.max(1) as f64;
    let visited_ratio = before.blocks_visited as f64 / after.blocks_visited.max(1) as f64;
    println!(
        "blocks {blocks_before} -> {blocks_after} | per-query-set OSS GETs {} -> {} ({gets_ratio:.1}x) \
         | blocks visited {} -> {} ({visited_ratio:.1}x) | modelled OSS {:.2}ms -> {:.2}ms",
        before.oss_gets,
        after.oss_gets,
        before.blocks_visited,
        after.blocks_visited,
        before.modelled_oss_ms,
        after.modelled_oss_ms
    );
    assert!(gets_ratio >= 2.0, "compaction must cut per-query OSS GETs >=2x, got {gets_ratio:.2}x");
    assert!(
        visited_ratio >= 2.0,
        "compaction must cut blocks visited >=2x, got {visited_ratio:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"compact_read_amplification\",\n  \"tenants\": {},\n  \
         \"cycles\": {},\n  \"rows_total\": {},\n  \"blocks_before\": {},\n  \
         \"blocks_after\": {},\n  \"runs_committed\": {},\n  \"blocks_merged\": {},\n  \
         \"gc_deleted\": {},\n  \"oss_gets_before\": {},\n  \"oss_gets_after\": {},\n  \
         \"oss_gets_reduction\": {:.2},\n  \"blocks_visited_before\": {},\n  \
         \"blocks_visited_after\": {},\n  \"blocks_visited_reduction\": {:.2},\n  \
         \"modelled_oss_ms_before\": {:.3},\n  \"modelled_oss_ms_after\": {:.3}\n}}\n",
        knobs.tenants,
        knobs.cycles,
        total_rows,
        blocks_before,
        blocks_after,
        report.runs_committed,
        report.blocks_merged,
        gc.deleted,
        before.oss_gets,
        after.oss_gets,
        gets_ratio,
        before.blocks_visited,
        after.blocks_visited,
        visited_ratio,
        before.modelled_oss_ms,
        after.modelled_oss_ms
    );
    std::fs::write(&knobs.out_path, json).expect("write bench json");
    println!("wrote {}", knobs.out_path.display());
    if knobs.smoke {
        let _ = std::fs::remove_file(&knobs.out_path);
    }
}
