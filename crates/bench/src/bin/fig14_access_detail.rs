//! Figure 14: per-shard and per-worker running state at θ = 0.99,
//! before vs after max-flow balancing.
//!
//! * (a) per-shard accesses/s, shards ranked by load;
//! * (b) per-worker accesses/s before balancing;
//! * (c) per-worker accesses/s and CPU utilisation after balancing — the
//!   paper observes "the workload of workers is almost balanced, and the
//!   CPU utilization of all workers is close to α (85%)".

use logstore_bench::balancing::{run, BalanceExperiment, Policy};
use logstore_bench::print_table;

fn main() {
    let theta = 0.99;
    let exp = BalanceExperiment::paper_like(theta);
    let outcome = run(&exp, Policy::MaxFlow);

    // (a) shard accesses ranked by before-load.
    let mut shards: Vec<_> = outcome.before.shard_load.iter().collect();
    shards.sort_by_key(|(_, &load)| std::cmp::Reverse(load));
    let rows: Vec<Vec<String>> = shards
        .iter()
        .enumerate()
        .map(|(rank, (shard, &before))| {
            let after = outcome.after.shard_load.get(shard).copied().unwrap_or(0);
            vec![(rank + 1).to_string(), shard.to_string(), before.to_string(), after.to_string()]
        })
        .collect();
    print_table(
        &format!("Figure 14(a): shard accesses/s at theta={theta} (ranked by before-load)"),
        &["rank", "shard", "before", "after"],
        &rows,
    );

    // (b) + (c) workers.
    let mut workers: Vec<_> = outcome.before.worker_load.keys().copied().collect();
    workers.sort_unstable();
    let rows: Vec<Vec<String>> = workers
        .iter()
        .map(|w| {
            let before = outcome.before.worker_load.get(w).copied().unwrap_or(0);
            let after = outcome.after.worker_load.get(w).copied().unwrap_or(0);
            let util = outcome.after.worker_utilization.get(w).copied().unwrap_or(0.0);
            vec![
                w.to_string(),
                before.to_string(),
                after.to_string(),
                format!("{:.1}%", util * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 14(b)+(c): worker accesses/s and post-balance CPU utilisation",
        &["worker", "before", "after", "cpu-util(after)"],
        &rows,
    );
    let utils: Vec<f64> =
        workers.iter().filter_map(|w| outcome.after.worker_utilization.get(w).copied()).collect();
    let min = utils.iter().copied().fold(f64::INFINITY, f64::min);
    let max = utils.iter().copied().fold(0.0, f64::max);
    println!(
        "\npost-balance worker utilisation spread: {:.1}%..{:.1}% against alpha = {:.0}% \
         (paper: 'CPU utilization of all workers is close to alpha (85%)')",
        min * 100.0,
        max * 100.0,
        exp.flow.alpha * 100.0
    );
}
