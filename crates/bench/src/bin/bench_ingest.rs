//! Ingest write-path benchmark: the seed-shaped write path (every append
//! holds one shard lock across encode + WAL fsync + row-store insert) vs
//! the group-commit fast path (encode outside locks, concurrent producers
//! coalesced into one WAL frame + one fsync per epoch, short lock only
//! for the row-store apply).
//!
//! Producer counts 1/4/16/64, fixed work per producer, durable appends
//! (`FlushPolicy::Sync`) in both modes so the comparison is fsync against
//! fsync. Emits `BENCH_ingest.json` with rows/s, p99 ack latency and
//! fsyncs-per-batch per (mode, producers) cell, plus a replay check that
//! every appended frame survives reopen.
//!
//! `--smoke` runs a tiny matrix into a temp file and asserts the
//! invariants hold (used by `scripts/check.sh`).

use logstore_sync::OrderedMutex;
use logstore_types::{LogRecord, TableSchema, TenantId, Timestamp};
use logstore_wal::{FlushPolicy, GroupCommitWal, Lsn, RowStore, ShardStore, Wal, WalConfig};
use logstore_workload::LogRecordGenerator;
use std::sync::Arc;
use std::time::Instant;

/// Rows per append call (one ingest sub-batch).
const ROWS_PER_BATCH: usize = 16;

/// Producer counts of the sweep.
const PRODUCERS: [usize; 4] = [1, 4, 16, 64];

struct Knobs {
    /// Append calls per producer.
    appends_per_producer: usize,
    out_path: std::path::PathBuf,
    smoke: bool,
}

/// One (mode, producers) cell.
struct Cell {
    producers: usize,
    rows_per_sec: f64,
    p99_ack_ms: f64,
    appends: u64,
    fsyncs: u64,
    wall_ms: f64,
}

impl Cell {
    fn fsyncs_per_batch(&self) -> f64 {
        self.fsyncs as f64 / self.appends as f64
    }
}

fn wal_config() -> WalConfig {
    WalConfig { flush: FlushPolicy::Sync, ..WalConfig::default() }
}

/// Pre-generated per-producer record batches so both modes ingest
/// identical data (generation cost is excluded from the timed region).
/// Encoding is NOT pre-done: where it happens is part of what each mode
/// measures — under the shard lock at the seed, outside every lock on
/// the fast path.
fn workloads(producers: usize, appends: usize) -> Vec<Vec<Vec<LogRecord>>> {
    (0..producers)
        .map(|p| {
            let mut generator = LogRecordGenerator::new(0x1265 + p as u64);
            (0..appends)
                .map(|i| {
                    (0..ROWS_PER_BATCH)
                        .map(|r| {
                            generator.record(
                                TenantId((p % 7) as u64 + 1),
                                Timestamp((i * ROWS_PER_BATCH + r) as i64),
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn percentile_ms(mut latencies_ns: Vec<u64>, p: f64) -> f64 {
    latencies_ns.sort_unstable();
    if latencies_ns.is_empty() {
        return 0.0;
    }
    let idx = ((latencies_ns.len() as f64 - 1.0) * p).round() as usize;
    latencies_ns[idx] as f64 / 1e6
}

/// The seed-shaped write path: one lock around the whole append (encode
/// happened outside here too, but the WAL fsync and the row-store insert
/// both run under it, serializing every producer).
struct BaselineShard {
    wal: Wal,
    rows: RowStore,
}

fn run_baseline(dir: &std::path::Path, producers: usize, work: &[Vec<Vec<LogRecord>>]) -> Cell {
    let (wal, replayed) = Wal::open(dir, wal_config()).expect("open baseline wal");
    assert!(replayed.is_empty(), "baseline bench dir must start empty");
    let shard = Arc::new(OrderedMutex::new(
        "bench.ingest.baseline",
        BaselineShard { wal, rows: RowStore::new(TableSchema::request_log()) },
    ));
    let start = Instant::now();
    let mut joins = Vec::new();
    for batches in work.iter().take(producers).cloned() {
        let shard = Arc::clone(&shard);
        joins.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(batches.len());
            for batch in batches {
                let op = Instant::now();
                // Seed shape: encode, fsyncing append and row-store
                // insert all serialized under the one shard lock.
                let mut guard = shard.lock();
                let payload = ShardStore::encode_batch_payload(&batch);
                guard.wal.append(&payload).expect("baseline append");
                for record in batch {
                    guard.rows.insert(record);
                }
                drop(guard);
                latencies.push(op.elapsed().as_nanos() as u64);
            }
            latencies
        }));
    }
    let mut latencies = Vec::new();
    for j in joins {
        latencies.extend(j.join().expect("baseline producer"));
    }
    let wall = start.elapsed();
    let appends = (producers * work[0].len()) as u64;
    let guard = shard.lock();
    assert_eq!(guard.rows.row_count() as u64, appends * ROWS_PER_BATCH as u64);
    let fsyncs = guard.wal.fsyncs();
    drop(guard);
    Cell {
        producers,
        rows_per_sec: (appends * ROWS_PER_BATCH as u64) as f64 / wall.as_secs_f64(),
        p99_ack_ms: percentile_ms(latencies, 0.99),
        appends,
        fsyncs,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

/// The group-commit fast path: stage into the shared WAL with no locks
/// held (concurrent producers coalesce into one frame + one fsync), then
/// a short lock only for the row-store apply.
fn run_group(dir: &std::path::Path, producers: usize, work: &[Vec<Vec<LogRecord>>]) -> Cell {
    let (wal, replayed) = GroupCommitWal::open(dir, wal_config()).expect("open group wal");
    assert!(replayed.is_empty(), "group bench dir must start empty");
    let wal = Arc::new(wal);
    let rows =
        Arc::new(OrderedMutex::new("bench.ingest.rows", RowStore::new(TableSchema::request_log())));
    let start = Instant::now();
    let mut joins = Vec::new();
    for batches in work.iter().take(producers).cloned() {
        let wal = Arc::clone(&wal);
        let rows = Arc::clone(&rows);
        joins.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(batches.len());
            for batch in batches {
                let op = Instant::now();
                // Fast-path shape: encode with no locks held, coalesce
                // into a shared group commit, short lock only to apply.
                let payload = ShardStore::encode_batch_payload(&batch);
                let lsn: Lsn = wal.append(&payload).expect("group append");
                {
                    let mut guard = rows.lock();
                    for record in batch {
                        guard.insert(record);
                    }
                }
                wal.confirm_applied(lsn);
                latencies.push(op.elapsed().as_nanos() as u64);
            }
            latencies
        }));
    }
    let mut latencies = Vec::new();
    for j in joins {
        latencies.extend(j.join().expect("group producer"));
    }
    let wall = start.elapsed();
    let appends = (producers * work[0].len()) as u64;
    assert_eq!(rows.lock().row_count() as u64, appends * ROWS_PER_BATCH as u64);
    let stats = wal.stats();
    assert_eq!(stats.appends, appends);
    Cell {
        producers,
        rows_per_sec: (appends * ROWS_PER_BATCH as u64) as f64 / wall.as_secs_f64(),
        p99_ack_ms: percentile_ms(latencies, 0.99),
        appends,
        fsyncs: stats.fsyncs,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

/// Round-trips a batch payload through the shard framing (tag byte +
/// encoded batch), as the recovery path would.
fn decode_payload(payload: &[u8]) -> Vec<logstore_types::LogRecord> {
    logstore_codec::batch::decode_batch(&payload[1..]).expect("payload roundtrip")
}

/// Reopen the group WAL and verify every appended frame replays — the
/// no-loss check behind the throughput numbers.
fn verify_replay(dir: &std::path::Path, expected_appends: u64) {
    let (_, replayed) = GroupCommitWal::open(dir, wal_config()).expect("reopen group wal");
    assert_eq!(
        replayed.len() as u64,
        expected_appends,
        "replay must return every appended batch exactly once"
    );
    let rows: u64 = replayed.iter().map(|(_, payload)| decode_payload(payload).len() as u64).sum();
    assert_eq!(rows, expected_appends * ROWS_PER_BATCH as u64);
}

fn json_cells(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"producers\": {}, \"rows_per_sec\": {:.0}, \"p99_ack_ms\": {:.3}, \
                 \"appends\": {}, \"fsyncs\": {}, \"fsyncs_per_batch\": {:.3}, \
                 \"wall_ms\": {:.1}}}",
                c.producers,
                c.rows_per_sec,
                c.p99_ack_ms,
                c.appends,
                c.fsyncs,
                c.fsyncs_per_batch(),
                c.wall_ms
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let knobs = if smoke {
        Knobs {
            appends_per_producer: 8,
            out_path: std::env::temp_dir()
                .join(format!("BENCH_ingest_smoke_{}.json", std::process::id())),
            smoke: true,
        }
    } else {
        Knobs { appends_per_producer: 96, out_path: "BENCH_ingest.json".into(), smoke: false }
    };
    let scratch =
        std::env::temp_dir().join(format!("logstore-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut baseline = Vec::new();
    let mut group = Vec::new();
    let producer_counts: &[usize] = if knobs.smoke { &[1, 4, 16] } else { &PRODUCERS };
    for &producers in producer_counts {
        let work = workloads(producers, knobs.appends_per_producer);
        let base_dir = scratch.join(format!("baseline-{producers}"));
        let group_dir = scratch.join(format!("group-{producers}"));
        std::fs::create_dir_all(&base_dir).expect("mkdir");
        std::fs::create_dir_all(&group_dir).expect("mkdir");
        let b = run_baseline(&base_dir, producers, &work);
        let g = run_group(&group_dir, producers, &work);
        verify_replay(&group_dir, g.appends);
        println!(
            "producers={producers:>2}  baseline {:>9.0} rows/s ({:.2} fsyncs/batch, p99 {:.2}ms)  \
             group {:>9.0} rows/s ({:.2} fsyncs/batch, p99 {:.2}ms)  speedup {:.2}x",
            b.rows_per_sec,
            b.fsyncs_per_batch(),
            b.p99_ack_ms,
            g.rows_per_sec,
            g.fsyncs_per_batch(),
            g.p99_ack_ms,
            g.rows_per_sec / b.rows_per_sec
        );
        baseline.push(b);
        group.push(g);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // Invariants the acceptance criteria (and the smoke gate) rest on:
    // group commit must coalesce fsyncs below one per batch under
    // concurrency, and the 16-producer cell must show real speedup.
    let idx16 = producer_counts.iter().position(|&p| p == 16).expect("16-producer cell");
    let speedup16 = group[idx16].rows_per_sec / baseline[idx16].rows_per_sec;
    let coalesced = group[idx16].fsyncs_per_batch();
    assert!(
        coalesced < 1.0,
        "group commit must coalesce fsyncs at 16 producers (got {coalesced:.3}/batch)"
    );
    if !knobs.smoke {
        assert!(speedup16 >= 3.0, "expected >=3x at 16 producers, got {speedup16:.2}x");
    }

    let json = format!(
        "{{\n  \"bench\": \"ingest_group_commit\",\n  \"rows_per_batch\": {},\n  \
         \"appends_per_producer\": {},\n  \"flush_policy\": \"sync\",\n  \
         \"speedup_at_16_producers\": {:.2},\n  \"baseline\": {},\n  \"group_commit\": {}\n}}\n",
        ROWS_PER_BATCH,
        knobs.appends_per_producer,
        speedup16,
        json_cells(&baseline),
        json_cells(&group)
    );
    std::fs::write(&knobs.out_path, json).expect("write bench json");
    println!("wrote {}", knobs.out_path.display());
    if knobs.smoke {
        let _ = std::fs::remove_file(&knobs.out_path);
    }
}
