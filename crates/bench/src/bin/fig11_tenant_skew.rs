//! Figure 11 (and Figure 2): tenant data distribution under Zipfian skew.
//!
//! The paper plots rows per tenant against tenant rank at θ = 0.99 for
//! 1000 tenants; the distribution is near-linear on log-log axes with the
//! head tenants holding most of the volume. This harness draws the same
//! population and prints sampled ranks.

use logstore_bench::print_table;
use logstore_types::{TenantId, Timestamp};
use logstore_workload::{LogRecordGenerator, WorkloadSpec};
use std::collections::HashMap;

fn main() {
    let theta = 0.99;
    let spec = WorkloadSpec::paper(theta);
    let total_rows = 500_000usize;
    let mut gen = LogRecordGenerator::new(11);
    let history = gen.history(&spec, total_rows, Timestamp(0), Timestamp(48 * 3600 * 1000));

    let mut counts: HashMap<TenantId, u64> = HashMap::new();
    for r in &history {
        *counts.entry(r.tenant_id).or_default() += 1;
    }
    let mut by_rank: Vec<u64> =
        (1..=spec.tenants).map(|t| counts.get(&TenantId(t)).copied().unwrap_or(0)).collect();
    // Tenant ids are ranks by construction, but sort defensively so the
    // printed curve is monotone like the figure's.
    by_rank.sort_unstable_by(|a, b| b.cmp(a));

    let sample_ranks = [1usize, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000];
    let rows: Vec<Vec<String>> = sample_ranks
        .iter()
        .map(|&rank| {
            vec![
                rank.to_string(),
                by_rank[rank - 1].to_string(),
                format!("{:.3}%", by_rank[rank - 1] as f64 / total_rows as f64 * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 11: rows per tenant rank (theta = {theta}, {total_rows} rows, 1000 tenants)"
        ),
        &["rank", "rows", "share"],
        &rows,
    );

    let head: u64 = by_rank[..10].iter().sum();
    let tail: u64 = by_rank[900..].iter().sum();
    println!(
        "\ntop-10 tenants hold {:.1}% of all rows; bottom-100 hold {:.2}% \
         (paper: 'a few tenants contribute most of the log volumes')",
        head as f64 / total_rows as f64 * 100.0,
        tail as f64 / total_rows as f64 * 100.0
    );
}
