//! Figure 15: impact of the data-skipping strategy on query latency.
//!
//! Loads a Zipfian(0.99) history, then runs the paper's Fig-8-style query
//! (time range + ip + latency + fail filters) for the top tenants with the
//! multi-level data-skipping strategy enabled vs disabled. Latency is the
//! modelled OSS time plus compute time; the simulator accounts modelled
//! time deterministically, so the numbers are host-independent.
//!
//! Paper result: average improvement 1.7x, largest tenant up to 2.6x, with
//! the gain growing with tenant size.

use logstore_bench::dataset::{build_engine, DatasetParams};
use logstore_bench::{mean, print_table};
use logstore_core::QueryOptions;
use logstore_oss::LatencyModel;
use logstore_query::datetime::format_datetime;

fn main() {
    let params = DatasetParams::default();
    println!(
        "loading {} rows across {} tenants (theta={}) ...",
        params.rows, params.tenants, params.theta
    );
    let setup = build_engine(LatencyModel::oss_like(), &params);
    println!("{} logblocks archived", setup.store.block_count());

    let top_n = 50u64;
    let skip_on = QueryOptions {
        use_skipping: true,
        use_prefetch: false,
        use_cache: true,
        ..QueryOptions::default()
    };
    let skip_off = QueryOptions {
        use_skipping: false,
        use_prefetch: false,
        use_cache: true,
        ..QueryOptions::default()
    };

    let mut rows = Vec::new();
    let mut with_ms = Vec::new();
    let mut without_ms = Vec::new();
    let span = setup.end - setup.start;
    for tenant in 1..=top_n {
        // One "hour" window in the middle of the history plus field filters
        // (the paper's Fig 8 walk-through query).
        let qs = setup.start.millis() + span / 3;
        let qe = qs + span / 48;
        // The dominant client of this window: a realistic, selective filter.
        let ip = logstore_workload::records::session_ip(
            logstore_types::TenantId(tenant),
            logstore_types::Timestamp(qs + span / 96),
            32,
        );
        let sql = format!(
            "SELECT log FROM request_log WHERE tenant_id = {tenant} \
             AND ts >= {qs} AND ts <= {qe} \
             AND ip = '{ip}' AND latency >= 100 AND fail = false"
        );
        let mut latencies = [0.0f64; 2];
        for (i, opts) in [&skip_on, &skip_off].into_iter().enumerate() {
            setup.store.clear_cache();
            let exec = setup.store.query_with_options(&sql, opts).expect("query");
            latencies[i] =
                exec.modelled_oss.as_secs_f64() * 1000.0 + exec.wall.as_secs_f64() * 1000.0;
        }
        let (with, without) = (latencies[0], latencies[1]);
        with_ms.push(with);
        without_ms.push(without);
        if tenant <= 15 || tenant % 10 == 0 {
            rows.push(vec![
                tenant.to_string(),
                format!("{with:.1}"),
                format!("{without:.1}"),
                format!("{:.2}x", without / with.max(1e-9)),
            ]);
        }
    }
    println!(
        "\nquery window: {} .. {} (1/48th of the history)",
        format_datetime(setup.start.millis() + span / 3),
        format_datetime(setup.start.millis() + span / 3 + span / 48),
    );
    print_table(
        "Figure 15: query latency (ms) with vs without data skipping, by tenant rank",
        &["tenant", "with-skipping", "w/o-skipping", "speedup"],
        &rows,
    );
    let avg_improvement = mean(&without_ms) / mean(&with_ms).max(1e-9);
    let best =
        with_ms.iter().zip(&without_ms).map(|(w, wo)| wo / w.max(1e-9)).fold(0.0f64, f64::max);
    println!(
        "\naverage latency improvement {avg_improvement:.1}x, best tenant {best:.1}x \
         (paper: 1.7x average, 2.6x for the largest tenant)"
    );
}
