//! Figure 16: impact of the parallel prefetch strategy on query latency.
//!
//! Three configurations over the same dataset, as in the paper:
//!
//! * data on local storage (SSD-like latency model),
//! * data on OSS **with** the 32-thread parallel prefetch,
//! * data on OSS **without** prefetch (serial cache misses).
//!
//! Prefetch only pays off against *real* concurrency, so this harness runs
//! the latency simulator with a non-zero time scale (modelled delays are
//! actually slept, scaled down) and reports wall latencies scaled back to
//! modelled milliseconds. It also demonstrates the multi-level cache: the
//! second run of the same query is served from cache.

use logstore_bench::dataset::{build_engine, DatasetParams, EngineSetup};
use logstore_bench::{mean, print_table};
use logstore_core::QueryOptions;
use logstore_oss::LatencyModel;

/// Fraction of modelled latency actually slept (keeps runtime tolerable).
const TIME_SCALE: f64 = 0.2;

fn run_config(setup: &EngineSetup, opts: &QueryOptions, top_n: u64) -> Vec<f64> {
    let span = setup.end - setup.start;
    let mut latencies = Vec::new();
    for tenant in 1..=top_n {
        let qs = setup.start.millis() + span / 4;
        let qe = qs + span / 24;
        let sql = format!(
            "SELECT log FROM request_log WHERE tenant_id = {tenant} \
             AND ts >= {qs} AND ts <= {qe} AND latency >= 50"
        );
        setup.store.clear_cache();
        let exec = setup.store.query_with_options(&sql, opts).expect("query");
        // Scale slept time back up to modelled milliseconds.
        latencies.push(exec.wall.as_secs_f64() * 1000.0 / TIME_SCALE);
    }
    latencies
}

fn main() {
    let params = DatasetParams { rows: 60_000, tenants: 100, ..DatasetParams::default() };
    let top_n = 30u64;
    println!(
        "loading {} rows across {} tenants; time scale {TIME_SCALE} ...",
        params.rows, params.tenants
    );

    let local = build_engine(LatencyModel::local_ssd_like().with_time_scale(TIME_SCALE), &params);
    let oss = build_engine(LatencyModel::oss_like().with_time_scale(TIME_SCALE), &params);

    let with_prefetch = QueryOptions::default();
    let without_prefetch = QueryOptions { use_prefetch: false, ..QueryOptions::default() };

    let local_ms = run_config(&local, &without_prefetch, top_n);
    let oss_prefetch_ms = run_config(&oss, &with_prefetch, top_n);
    let oss_serial_ms = run_config(&oss, &without_prefetch, top_n);

    let rows: Vec<Vec<String>> = (0..top_n as usize)
        .filter(|i| i < &15 || (i + 1) % 10 == 0)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                format!("{:.1}", local_ms[i]),
                format!("{:.1}", oss_prefetch_ms[i]),
                format!("{:.1}", oss_serial_ms[i]),
            ]
        })
        .collect();
    print_table(
        "Figure 16: query latency (modelled ms) by tenant rank",
        &["tenant", "local", "oss+prefetch(32)", "oss-no-prefetch"],
        &rows,
    );

    let (l, p, s) = (mean(&local_ms), mean(&oss_prefetch_ms), mean(&oss_serial_ms));
    println!("\nmeans: local {l:.1} ms | oss+prefetch {p:.1} ms | oss w/o prefetch {s:.1} ms");
    println!(
        "local is {:.1}x faster than raw OSS; prefetch narrows the gap to {:.1}x \
         (paper: 18.5x narrowed to 6x)",
        s / l.max(1e-9),
        p / l.max(1e-9)
    );

    // Scatter/gather parallelism axis: one tenant spread over many small
    // LogBlocks (the bench dataset above packs each tenant into one big
    // block, which a single prefetch wave already covers), then the same
    // OSS+prefetch scan at increasing per-query parallelism. Results are
    // bit-identical at every setting; only the wall clock moves.
    let many = {
        use logstore_core::{ClusterConfig, LogStore};
        use logstore_types::{LogRecord, TenantId, Timestamp, Value};
        let mut config = ClusterConfig::for_testing();
        config.oss_latency = LatencyModel::oss_like().with_time_scale(TIME_SCALE);
        config.max_rows_per_logblock = 2048;
        config.query_threads = 8;
        let s = LogStore::open(config).expect("engine open");
        for b in 0..12 {
            let batch: Vec<LogRecord> = (0..2000)
                .map(|i| {
                    let ts = i64::from(b) * 2000 + i;
                    LogRecord::new(
                        TenantId(1),
                        Timestamp(ts),
                        vec![
                            Value::from(format!("10.0.{}.{}", ts % 200, ts % 250)),
                            Value::from("/api/v1/users"),
                            Value::I64((ts * 7 + 13) % 600),
                            Value::Bool(ts % 9 == 0),
                            Value::from(format!("request {ts} block {b}")),
                        ],
                    )
                })
                .collect();
            s.ingest(batch).expect("ingest");
            s.flush().expect("flush");
        }
        s
    };
    println!("\nscatter dataset: {} LogBlocks for tenant 1", many.block_count());
    let scatter_sql = "SELECT log FROM request_log WHERE tenant_id = 1 AND latency >= 50";
    let mut rows = Vec::new();
    for parallelism in [1usize, 2, 4, 8] {
        let opts = QueryOptions::default().with_parallelism(parallelism);
        let mut latencies = Vec::new();
        for _ in 0..3 {
            many.clear_cache();
            let exec = many.query_with_options(scatter_sql, &opts).expect("query");
            latencies.push(exec.wall.as_secs_f64() * 1000.0 / TIME_SCALE);
        }
        rows.push(vec![parallelism.to_string(), format!("{:.1}", mean(&latencies))]);
    }
    print_table(
        "Figure 16 addendum: scatter/gather parallelism (12 LogBlocks, mean modelled ms)",
        &["parallelism", "latency"],
        &rows,
    );

    // The multi-level cache claim: re-running the same query is much
    // faster than its first (cold) run.
    let span = oss.end - oss.start;
    let qs = oss.start.millis() + span / 4;
    let sql = format!(
        "SELECT log FROM request_log WHERE tenant_id = 1 AND ts >= {qs} AND ts <= {}",
        qs + span / 24
    );
    oss.store.clear_cache();
    let cold = oss.store.query_with_options(&sql, &without_prefetch).unwrap();
    let warm = oss.store.query_with_options(&sql, &without_prefetch).unwrap();
    println!(
        "repeat-query cache effect: cold {:.1} ms -> warm {:.1} ms ({:.1}x; paper: 6x)",
        cold.wall.as_secs_f64() * 1000.0 / TIME_SCALE,
        warm.wall.as_secs_f64() * 1000.0 / TIME_SCALE,
        cold.wall.as_secs_f64() / warm.wall.as_secs_f64().max(1e-9)
    );
}
