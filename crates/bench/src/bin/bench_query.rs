//! Aggregation-pushdown benchmark: the §6.3 aggregation templates run
//! against an aged Zipfian multi-tenant dataset under the four
//! {pushdown, data skipping} configurations.
//!
//! Measures, summed over the query set: partial-state bytes moved from
//! sources to the executor, rows/bytes decoded into typed batches,
//! batches run through vectorized predicate evaluation, LogBlocks
//! visited, and modelled OSS time. Every configuration must return
//! byte-identical results, and pushdown must move at least 10× fewer
//! partial bytes than the row-transport plan — the acceptance bar.
//! Emits `BENCH_query.json`.
//!
//! `--smoke` runs a small matrix into a temp file and asserts the same
//! invariants (used by `scripts/check.sh`).

use logstore_bench::dataset::{build_engine, DatasetParams};
use logstore_core::{LogStore, QueryOptions};
use logstore_oss::LatencyModel;
use logstore_types::TenantId;
use logstore_workload::queries::tenant_queries;
use rand::SeedableRng;

struct Knobs {
    params: DatasetParams,
    /// Queries are generated for tenants 1..=query_tenants (the Zipfian
    /// head, where the rows are).
    query_tenants: u64,
    out_path: std::path::PathBuf,
    smoke: bool,
}

/// Counter sums for one {pushdown, skipping} configuration.
#[derive(Default)]
struct Config {
    use_pushdown: bool,
    use_skipping: bool,
    partial_bytes: u64,
    rows_decoded: u64,
    bytes_decoded: u64,
    batches_evaluated: u64,
    blocks_visited: u64,
    modelled_oss_ms: f64,
    results: Vec<Vec<Vec<logstore_types::Value>>>,
}

fn run_config(s: &LogStore, workload: &[String], use_pushdown: bool, use_skipping: bool) -> Config {
    s.clear_cache();
    let opts = QueryOptions { use_pushdown, use_skipping, ..QueryOptions::default() };
    let mut c = Config { use_pushdown, use_skipping, ..Config::default() };
    for sql in workload {
        let exec = s.query_with_options(sql, &opts).expect("bench query");
        c.partial_bytes += exec.counters.partial_bytes;
        c.rows_decoded += exec.counters.decode.rows_decoded;
        c.bytes_decoded += exec.counters.decode.bytes_decoded;
        c.batches_evaluated += exec.counters.decode.batches_evaluated;
        c.blocks_visited += exec.stats.blocks_visited;
        c.modelled_oss_ms += exec.modelled_oss.as_secs_f64() * 1e3;
        c.results.push(exec.result.rows);
    }
    c
}

fn config_json(c: &Config) -> String {
    format!(
        "    {{\"pushdown\": {}, \"skipping\": {}, \"partial_bytes\": {}, \
         \"rows_decoded\": {}, \"bytes_decoded\": {}, \"batches_evaluated\": {}, \
         \"blocks_visited\": {}, \"modelled_oss_ms\": {:.3}}}",
        c.use_pushdown,
        c.use_skipping,
        c.partial_bytes,
        c.rows_decoded,
        c.bytes_decoded,
        c.batches_evaluated,
        c.blocks_visited,
        c.modelled_oss_ms
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let knobs = if smoke {
        Knobs {
            params: DatasetParams { tenants: 12, theta: 0.99, rows: 30_000, seed: 61 },
            query_tenants: 4,
            out_path: std::env::temp_dir()
                .join(format!("BENCH_query_smoke_{}.json", std::process::id())),
            smoke: true,
        }
    } else {
        Knobs {
            params: DatasetParams { tenants: 100, theta: 0.99, rows: 120_000, seed: 61 },
            query_tenants: 16,
            out_path: "BENCH_query.json".into(),
            smoke: false,
        }
    };

    println!("loading {} rows across {} tenants ...", knobs.params.rows, knobs.params.tenants);
    let setup = build_engine(LatencyModel::zero(), &knobs.params);

    // The aggregation slice of the §6.3 template mix: grouped top-K,
    // whole-history COUNT, the wide ungrouped aggregate, and the
    // time-bucketed histogram (templates 5-8).
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut workload = Vec::new();
    for tenant in 1..=knobs.query_tenants {
        let qs = tenant_queries(TenantId(tenant), setup.start, setup.end, &mut rng);
        workload.extend(qs.into_iter().skip(4));
    }
    println!("{} aggregation queries in the workload", workload.len());

    let matrix = [(true, true), (true, false), (false, true), (false, false)];
    let configs: Vec<Config> = matrix
        .iter()
        .map(|&(pushdown, skipping)| run_config(&setup.store, &workload, pushdown, skipping))
        .collect();

    // Byte-identical results across the whole matrix.
    for c in &configs[1..] {
        assert_eq!(
            c.results, configs[0].results,
            "results diverged at pushdown={} skipping={}",
            c.use_pushdown, c.use_skipping
        );
    }

    // Pushdown vs row transport, both with skipping on (the production
    // pairing): ≥10× fewer partial-state bytes moved.
    let on = &configs[0];
    let off = &configs[2];
    let bytes_ratio = off.partial_bytes as f64 / on.partial_bytes.max(1) as f64;
    println!(
        "partial bytes {} -> {} ({bytes_ratio:.1}x) | rows decoded {} -> {} | \
         batches evaluated {} vs {}",
        off.partial_bytes,
        on.partial_bytes,
        off.rows_decoded,
        on.rows_decoded,
        off.batches_evaluated,
        on.batches_evaluated
    );
    assert!(
        bytes_ratio >= 10.0,
        "pushdown must move >=10x fewer partial bytes, got {bytes_ratio:.2}x"
    );
    // Skipping must prune decode work with pushdown held fixed.
    let no_skip = &configs[1];
    assert!(
        on.bytes_decoded <= no_skip.bytes_decoded,
        "skipping must not increase decode volume: {} vs {}",
        on.bytes_decoded,
        no_skip.bytes_decoded
    );

    let mut json = String::from("{\n  \"bench\": \"query_pushdown\",\n");
    json.push_str(&format!(
        "  \"tenants\": {},\n  \"rows\": {},\n  \"queries\": {},\n  \
         \"partial_bytes_reduction\": {:.2},\n  \"configs\": [\n",
        knobs.params.tenants,
        knobs.params.rows,
        workload.len(),
        bytes_ratio
    ));
    let lines: Vec<String> = configs.iter().map(config_json).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&knobs.out_path, json).expect("write bench json");
    println!("wrote {}", knobs.out_path.display());
    if knobs.smoke {
        let _ = std::fs::remove_file(&knobs.out_path);
    }
}
