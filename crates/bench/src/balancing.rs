//! Shared driver for the load-balancing experiments (Figures 12–14).
//!
//! Reproduces the paper's setup: 1000 tenants with Zipfian(θ) traffic over
//! a homogeneous cluster, initially placed by consistent hashing, then
//! (optionally) rebalanced by the greedy or max-flow controller. Outcomes
//! are produced by the queueing simulator in `logstore_flow::sim`.

use logstore_flow::balancer::{Balancer, GreedyBalancer, MaxFlowBalancer};
use logstore_flow::sim::{build_snapshot, simulate, ClusterTopology, SimConfig, SimResult};
use logstore_flow::{ConsistentHashRing, ControlAction, FlowControlConfig, TrafficController};
use logstore_types::TenantId;
use logstore_workload::WorkloadSpec;
use std::collections::HashMap;

/// Which traffic-control policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// No flow control (the collapse baseline of Fig 12).
    None,
    /// Algorithm 2.
    Greedy,
    /// Algorithm 3.
    MaxFlow,
}

impl Policy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::Greedy => "greedy",
            Policy::MaxFlow => "max-flow",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct BalanceExperiment {
    /// Cluster shape.
    pub topology: ClusterTopology,
    /// Tenant population + skew.
    pub spec: WorkloadSpec,
    /// Total offered traffic (log entries / s).
    pub total_rate: u64,
    /// Flow-control knobs.
    pub flow: FlowControlConfig,
    /// Simulator knobs.
    pub sim: SimConfig,
    /// Max control ticks before declaring convergence.
    pub max_ticks: usize,
}

impl BalanceExperiment {
    /// The paper-like default: 6 workers × 4 shards (24 worker processes),
    /// 1000 tenants, offered load ≈ α × cluster capacity.
    pub fn paper_like(theta: f64) -> Self {
        let topology = ClusterTopology::homogeneous(6, 4, 100_000);
        let total_capacity: u64 = topology.worker_capacity.values().sum();
        BalanceExperiment {
            topology,
            spec: WorkloadSpec::paper(theta),
            total_rate: (total_capacity as f64 * 0.75) as u64,
            flow: FlowControlConfig {
                alpha: 0.85,
                per_tenant_shard_limit: 100_000,
                check_interval_secs: 300,
            },
            sim: SimConfig::default(),
            max_ticks: 10,
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct Outcome {
    /// State with the initial (hash-only) placement.
    pub before: SimResult,
    /// State after the policy converged (same as `before` for `None`).
    pub after: SimResult,
    /// Route edges after convergence.
    pub routes: usize,
    /// Control ticks actually executed.
    pub ticks: usize,
}

/// Runs one (θ, policy) cell.
pub fn run(exp: &BalanceExperiment, policy: Policy) -> Outcome {
    let rates: HashMap<TenantId, u64> = exp.spec.tenant_rates(exp.total_rate);
    let tenants = exp.spec.tenant_ids();
    let ring = ConsistentHashRing::new(&exp.topology.shards());

    let balancer: Box<dyn Balancer> = match policy {
        Policy::Greedy => Box::new(GreedyBalancer),
        _ => Box::new(MaxFlowBalancer),
    };
    let mut controller = TrafficController::new(exp.flow.clone(), balancer);
    controller.init_routes(&tenants, &ring).expect("route init cannot fail on a non-empty ring");

    let before = simulate(controller.routes(), &rates, &exp.topology, &exp.sim);
    if policy == Policy::None {
        let routes = controller.routes().route_count();
        return Outcome { after: before.clone(), before, routes, ticks: 0 };
    }

    let mut ticks = 0;
    let mut last = before.clone();
    for _ in 0..exp.max_ticks {
        let snapshot = build_snapshot(&last, &rates, &exp.topology);
        let action = controller.tick(&snapshot).expect("control tick");
        ticks += 1;
        last = simulate(controller.routes(), &rates, &exp.topology, &exp.sim);
        if matches!(action, ControlAction::None) {
            break;
        }
    }
    Outcome { before, after: last, routes: controller.routes().route_count(), ticks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_flow::monitor::load_stddev;

    #[test]
    fn skewed_workload_collapses_without_control_and_recovers_with_it() {
        let exp = BalanceExperiment::paper_like(0.99);
        let none = run(&exp, Policy::None);
        let maxflow = run(&exp, Policy::MaxFlow);
        let offered = exp.total_rate as f64;
        assert!(
            (none.after.throughput as f64) < offered * 0.9,
            "uncontrolled skew should shed load: {} of {offered}",
            none.after.throughput
        );
        assert!(
            (maxflow.after.throughput as f64) > offered * 0.99,
            "max-flow should reach the offered rate: {} of {offered}",
            maxflow.after.throughput
        );
        assert!(
            maxflow.after.avg_latency_ms * 10.0 < none.after.avg_latency_ms,
            "latency {} vs {}",
            maxflow.after.avg_latency_ms,
            none.after.avg_latency_ms
        );
    }

    #[test]
    fn uniform_workload_needs_no_intervention() {
        let exp = BalanceExperiment::paper_like(0.0);
        let none = run(&exp, Policy::None);
        let maxflow = run(&exp, Policy::MaxFlow);
        // Already balanced: throughput equals offered rate both ways.
        let offered = exp.total_rate as f64;
        assert!(none.after.throughput as f64 > offered * 0.95);
        assert!(maxflow.after.throughput as f64 > offered * 0.95);
    }

    #[test]
    fn maxflow_reduces_stddev_at_high_skew() {
        let exp = BalanceExperiment::paper_like(0.99);
        let outcome = run(&exp, Policy::MaxFlow);
        let before = load_stddev(&outcome.before.shard_load);
        let after = load_stddev(&outcome.after.shard_load);
        assert!(after < before / 2.0, "shard stddev before {before:.0} after {after:.0}");
    }

    #[test]
    fn maxflow_uses_fewer_routes_than_greedy_at_scale() {
        // The Fig 12(c) aggregate claim over the full 1000-tenant population.
        let exp = BalanceExperiment::paper_like(0.99);
        let greedy = run(&exp, Policy::Greedy);
        let maxflow = run(&exp, Policy::MaxFlow);
        assert!(
            maxflow.routes <= greedy.routes,
            "max-flow {} routes vs greedy {}",
            maxflow.routes,
            greedy.routes
        );
        // And both keep throughput near the offered rate.
        let offered = exp.total_rate as f64;
        assert!(greedy.after.throughput as f64 > offered * 0.9);
        assert!(maxflow.after.throughput as f64 > offered * 0.9);
    }
}
