//! Scatter/gather query benchmark: the same scan at increasing per-query
//! parallelism (1 → 2 → 4 → 8 workers) over a multi-LogBlock tenant.
//!
//! Uses a zero-latency store so the numbers isolate executor overhead and
//! CPU-side scaling; the wall-clock win against modelled OSS latency is
//! shown by `fig16_prefetch` and asserted by the `parallel_query`
//! integration tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logstore_bench::dataset::{build_engine, DatasetParams, EngineSetup};
use logstore_core::QueryOptions;
use logstore_oss::LatencyModel;
use std::hint::black_box;

fn setup() -> (EngineSetup, String) {
    let params = DatasetParams { rows: 40_000, tenants: 20, ..DatasetParams::default() };
    let setup = build_engine(LatencyModel::zero(), &params);
    let span = setup.end - setup.start;
    let sql = format!(
        "SELECT log FROM request_log WHERE tenant_id = 1 AND ts >= {} AND ts <= {} \
         AND latency >= 50",
        setup.start.millis(),
        setup.start.millis() + span / 2
    );
    (setup, sql)
}

fn bench_parallelism(c: &mut Criterion) {
    let (setup, sql) = setup();
    let rows = setup
        .store
        .query_with_options(&sql, &QueryOptions::default())
        .expect("query")
        .result
        .rows
        .len() as u64;

    let mut group = c.benchmark_group("query/scatter_gather");
    group.throughput(Throughput::Elements(rows.max(1)));
    for parallelism in [1usize, 2, 4, 8] {
        let opts = QueryOptions::default().with_parallelism(parallelism);
        group.bench_with_input(BenchmarkId::new("workers", parallelism), &opts, |b, opts| {
            b.iter(|| {
                let exec = setup.store.query_with_options(&sql, opts).expect("query");
                black_box(exec.result.rows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallelism);
criterion_main!(benches);
