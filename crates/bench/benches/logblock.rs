//! LogBlock build / scan benchmarks: the cost of phase two (columnar
//! conversion with full indexing) and the benefit of data skipping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use logstore_codec::Compression;
use logstore_logblock::scan::{evaluate_predicates, ScanStats};
use logstore_logblock::{LogBlockBuilder, LogBlockReader};
use logstore_types::{CmpOp, ColumnPredicate, TableSchema, Value};
use std::hint::black_box;

const ROWS: usize = 20_000;

fn rows() -> Vec<Vec<Value>> {
    (0..ROWS)
        .map(|i| {
            vec![
                Value::U64(7),
                Value::I64(1_000_000 + i as i64),
                Value::from(format!("10.0.{}.{}", i / 250 % 250, i % 250)),
                Value::from(if i % 2 == 0 { "/api/users" } else { "/api/orders" }),
                Value::I64((i as i64 * 13) % 800),
                Value::Bool(i % 50 == 0),
                Value::from(format!("request {i} completed with status ok")),
            ]
        })
        .collect()
}

fn build_block(compression: Compression) -> Vec<u8> {
    let mut b = LogBlockBuilder::with_options(TableSchema::request_log(), compression, 1024);
    for row in rows() {
        b.add_row(&row).unwrap();
    }
    b.finish().unwrap()
}

fn bench_build(c: &mut Criterion) {
    let data = rows();
    let mut group = c.benchmark_group("logblock/build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    for compression in [Compression::LzFast, Compression::LzHigh] {
        group.bench_function(compression.to_string(), |b| {
            b.iter(|| {
                let mut builder =
                    LogBlockBuilder::with_options(TableSchema::request_log(), compression, 1024);
                for row in &data {
                    builder.add_row(black_box(row)).unwrap();
                }
                builder.finish().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let bytes = build_block(Compression::LzHigh);
    let reader = LogBlockReader::open(bytes).unwrap();
    let preds = vec![
        ColumnPredicate::new("ts", CmpOp::Ge, 1_005_000i64),
        ColumnPredicate::new("ts", CmpOp::Le, 1_006_000i64),
        ColumnPredicate::new("ip", CmpOp::Eq, "10.0.20.100"),
        ColumnPredicate::new("latency", CmpOp::Ge, 100i64),
    ];
    let mut group = c.benchmark_group("logblock/scan");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, skipping) in [("with-skipping", true), ("without-skipping", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut stats = ScanStats::default();
                evaluate_predicates(&reader, black_box(&preds), skipping, &mut stats).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_scan);
criterion_main!(benches);
