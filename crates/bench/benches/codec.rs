//! Compression codec micro-benchmarks: the CPU/ratio trade-off behind the
//! paper's Snappy/LZ4/ZSTD menu (our lz-fast / lz-high codecs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logstore_codec::{compress, decompress, Compression};
use std::hint::black_box;

fn log_like_payload(n_lines: usize) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..n_lines {
        data.extend_from_slice(
            format!(
                "2020-11-11 {:02}:{:02}:{:02} GET /api/v1/users id={} latency={}ms status=ok\n",
                i / 3600 % 24,
                i / 60 % 60,
                i % 60,
                i * 7,
                i % 300
            )
            .as_bytes(),
        );
    }
    data
}

fn bench_compress(c: &mut Criterion) {
    let data = log_like_payload(4096);
    let mut group = c.benchmark_group("codec/compress");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for codec in [Compression::Rle, Compression::LzFast, Compression::LzHigh] {
        let ratio = data.len() as f64 / compress(codec, &data).len() as f64;
        group.bench_with_input(
            BenchmarkId::new(format!("{codec} (ratio {ratio:.1}x)"), data.len()),
            &data,
            |b, data| b.iter(|| compress(codec, black_box(data))),
        );
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = log_like_payload(4096);
    let mut group = c.benchmark_group("codec/decompress");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for codec in [Compression::LzFast, Compression::LzHigh] {
        let frame = compress(codec, &data);
        group.bench_with_input(BenchmarkId::new(codec.to_string(), data.len()), &frame, |b, f| {
            b.iter(|| decompress(black_box(f), data.len()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
