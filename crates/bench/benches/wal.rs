//! WAL append throughput: the phase-one durability cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use logstore_wal::{FlushPolicy, Wal, WalConfig};
use std::hint::black_box;

fn bench_append(c: &mut Criterion) {
    let payload = vec![7u8; 512];
    let mut group = c.benchmark_group("wal/append");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for (name, flush) in
        [("buffered", FlushPolicy::Flush), ("fsync-every-append", FlushPolicy::Sync)]
    {
        group.bench_function(name, |b| {
            let dir = std::env::temp_dir()
                .join(format!("logstore-walbench-{name}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let config = WalConfig { max_segment_bytes: 256 << 20, flush, ..WalConfig::default() };
            let (mut wal, _) = Wal::open(&dir, config).unwrap();
            b.iter(|| wal.append(black_box(&payload)).unwrap());
            drop(wal);
            let _ = std::fs::remove_dir_all(dir);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_append);
criterion_main!(benches);
