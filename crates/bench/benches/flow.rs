//! Flow-control benchmarks: Dinic max-flow runtime on paper-scale graphs
//! and full rebalance planning (greedy vs max-flow).

use criterion::{criterion_group, criterion_main, Criterion};
use logstore_bench::balancing::{run, BalanceExperiment, Policy};
use logstore_flow::FlowNetwork;
use std::hint::black_box;

/// The paper-scale flow graph: 1000 tenants, 24 shards, 6 workers.
fn paper_scale_network() -> (FlowNetwork, usize, usize) {
    let mut g = FlowNetwork::new();
    let s = g.add_node();
    let t = g.add_node();
    let tenants: Vec<usize> = (0..1000).map(|_| g.add_node()).collect();
    let shards: Vec<usize> = (0..24).map(|_| g.add_node()).collect();
    let workers: Vec<usize> = (0..6).map(|_| g.add_node()).collect();
    for (i, &k) in tenants.iter().enumerate() {
        g.add_edge(s, k, 100 + (1000 / (i as u64 + 1))).unwrap();
        g.add_edge(k, shards[i % 24], 100_000).unwrap();
    }
    for (j, &p) in shards.iter().enumerate() {
        g.add_edge(p, workers[j / 4], 100_000).unwrap();
    }
    for &d in &workers {
        g.add_edge(d, t, 340_000).unwrap();
    }
    (g, s, t)
}

fn bench_dinic(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/dinic");
    group.sample_size(20);
    group.bench_function("paper-scale (1030 nodes)", |b| {
        b.iter_with_setup(paper_scale_network, |(mut g, s, t)| black_box(g.max_flow(s, t).unwrap()))
    });
    group.finish();
}

fn bench_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/rebalance");
    group.sample_size(10);
    for policy in [Policy::Greedy, Policy::MaxFlow] {
        group.bench_function(policy.name(), |b| {
            let exp = BalanceExperiment::paper_like(0.99);
            b.iter(|| black_box(run(&exp, policy).after.throughput))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dinic, bench_rebalance);
criterion_main!(benches);
