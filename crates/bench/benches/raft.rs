//! Raft replication throughput: propose→replicate→apply cycles on a
//! 3-replica in-process group, with and without tight BFC bounds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use logstore_raft::{InProcCluster, RaftConfig};
use logstore_types::Error;
use std::hint::black_box;

fn ready_cluster(config: RaftConfig) -> InProcCluster {
    let mut c = InProcCluster::new(3, config, 5);
    c.run_until_leader(500).expect("leader");
    c
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft/replicate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100));
    group.bench_function("100-entry pipeline (3 replicas)", |b| {
        b.iter_with_setup(
            || ready_cluster(RaftConfig::default()),
            |mut cluster| {
                for i in 0..100u8 {
                    cluster.propose(vec![i]).unwrap();
                    cluster.step();
                }
                // Drain until everything is applied on the leader.
                let leader = cluster.any_leader().unwrap();
                while cluster.applied(leader).len() < 100 {
                    cluster.step();
                }
                black_box(cluster.applied(leader).len())
            },
        )
    });
    group.finish();
}

fn bench_bfc_rejection(c: &mut Criterion) {
    // How cheap is shedding load when the sync queue is saturated?
    let mut group = c.benchmark_group("raft/bfc");
    group.sample_size(20);
    group.bench_function("backpressure rejection path", |b| {
        let config = RaftConfig { sync_queue_limit: 8, ..RaftConfig::default() };
        let mut cluster = ready_cluster(config);
        // Saturate the sync queue (followers never ack because we stop
        // stepping).
        while cluster.propose(vec![0]).is_ok() {}
        b.iter(|| {
            let err = cluster.propose(black_box(vec![1])).unwrap_err();
            assert!(matches!(err, Error::Backpressure(_)));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replication, bench_bfc_rejection);
criterion_main!(benches);
