//! Multi-level cache benchmarks: hit paths vs the simulated OSS miss path,
//! and prefetch range merging.

use criterion::{criterion_group, criterion_main, Criterion};
use logstore_cache::prefetch::merge_ranges;
use logstore_cache::tiered::{BlockKey, TieredCache};
use logstore_oss::{LatencyModel, MemoryStore, ObjectStore, SimulatedOss};
use std::hint::black_box;

fn bench_cache_paths(c: &mut Criterion) {
    let store = SimulatedOss::new(MemoryStore::new(), LatencyModel::zero(), 1);
    store.inner().put("obj", &vec![1u8; 128 * 1024]).unwrap();
    let cache = TieredCache::memory_only(64 << 20);
    let key = BlockKey { path: "obj".into(), offset: 0 };
    cache.get_or_fetch(&key, || store.get_range("obj", 0, 128 * 1024)).unwrap();

    let mut group = c.benchmark_group("cache");
    group.sample_size(50);
    group.bench_function("memory hit (128 KiB block)", |b| {
        b.iter(|| cache.get_or_fetch(black_box(&key), || unreachable!("must hit")).unwrap())
    });
    group.bench_function("miss + fetch (128 KiB block)", |b| {
        let mut offset = 1u64;
        b.iter(|| {
            // A fresh key every iteration forces the miss path.
            let key = BlockKey { path: "obj".into(), offset };
            offset += 1;
            cache.get_or_fetch(&key, || store.get_range("obj", 0, 128 * 1024)).unwrap()
        })
    });
    group.finish();
}

fn bench_merge_ranges(c: &mut Criterion) {
    let ranges: Vec<(u64, u64)> = (0..1000).map(|i| ((i * 37) % 5000 * 100, 150)).collect();
    let mut group = c.benchmark_group("cache/prefetch");
    group.sample_size(50);
    group.bench_function("merge 1000 ranges", |b| {
        b.iter(|| merge_ranges(black_box(ranges.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_cache_paths, bench_merge_ranges);
criterion_main!(benches);
