//! Multi-level cache benchmarks: hit paths vs the simulated OSS miss path,
//! prefetch range merging, and the concurrent zipf hot/cold workload that
//! exercises sharding, singleflight and run coalescing under contention.

use criterion::{criterion_group, criterion_main, Criterion};
use logstore_cache::prefetch::merge_ranges;
use logstore_cache::tiered::{BlockKey, TieredCache};
use logstore_cache::SizedLru;
use logstore_oss::{LatencyModel, MemoryStore, ObjectStore, SimulatedOss};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_cache_paths(c: &mut Criterion) {
    let store = SimulatedOss::new(MemoryStore::new(), LatencyModel::zero(), 1);
    store.inner().put("obj", &vec![1u8; 128 * 1024]).unwrap();
    let cache = TieredCache::memory_only(64 << 20);
    let key = BlockKey { path: "obj".into(), offset: 0 };
    cache.get_or_fetch(&key, || store.get_range("obj", 0, 128 * 1024)).unwrap();

    let mut group = c.benchmark_group("cache");
    group.sample_size(50);
    group.bench_function("memory hit (128 KiB block)", |b| {
        b.iter(|| cache.get_or_fetch(black_box(&key), || unreachable!("must hit")).unwrap())
    });
    group.bench_function("miss + fetch (128 KiB block)", |b| {
        let mut offset = 1u64;
        b.iter(|| {
            // A fresh key every iteration forces the miss path.
            let key = BlockKey { path: "obj".into(), offset };
            offset += 1;
            cache.get_or_fetch(&key, || store.get_range("obj", 0, 128 * 1024)).unwrap()
        })
    });
    group.finish();
}

fn bench_merge_ranges(c: &mut Criterion) {
    let ranges: Vec<(u64, u64)> = (0..1000).map(|i| ((i * 37) % 5000 * 100, 150)).collect();
    let mut group = c.benchmark_group("cache/prefetch");
    group.sample_size(50);
    group.bench_function("merge 1000 ranges", |b| {
        b.iter(|| merge_ranges(black_box(ranges.clone())))
    });
    group.finish();
}

/// Zipf CDF over `n` ranks with skew `s` (rank r weighted 1/(r+1)^s).
fn zipf_cdf(n: u64, s: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

/// The op mix of one thread: 80% zipf-hot point blocks, 20% cold scan
/// starts (`u64::MAX` marks a scan op). Identical streams per seed, so
/// every contender sees the same traffic.
fn zipf_ops(cdf: &[f64], blocks: u64, scan: u64, seed: u64, ops: usize) -> Vec<(u64, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            if rng.gen_bool(0.2) {
                (rng.gen_range(0..blocks - scan), true)
            } else {
                let u: f64 = rng.gen();
                (cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64, false)
            }
        })
        .collect()
}

/// 8 threads of zipf hot/cold traffic against the cache machinery itself
/// (zero-latency fetches): measures lock contention, singleflight dedup
/// and run-coalescing overhead, not origin latency. Cold scans draw from
/// a per-iteration epoch namespace so they stay cold across iterations.
fn bench_concurrent_zipf(c: &mut Criterion) {
    const THREADS: u64 = 8;
    const OPS: usize = 64;
    const BLOCKS: u64 = 128;
    const BLOCK: usize = 4096;
    const SCAN: u64 = 8;
    let cdf = zipf_cdf(BLOCKS, 1.1);
    let ops: Vec<Vec<(u64, bool)>> =
        (0..THREADS).map(|t| zipf_ops(&cdf, BLOCKS, SCAN, 0xBE7C4 + t, OPS)).collect();

    let mut group = c.benchmark_group("cache/concurrent");
    group.sample_size(30);

    // Seed shape: one global lock, one GET-shaped fetch per block.
    group.bench_function("zipf hot/cold, seed shape (1 lock, per-block)", |b| {
        let lru = Mutex::new(SizedLru::new(BLOCKS as usize / 4 * BLOCK));
        let epoch = AtomicU64::new(1);
        b.iter(|| {
            let e = epoch.fetch_add(1, Ordering::Relaxed);
            std::thread::scope(|scope| {
                for per_thread in &ops {
                    let lru = &lru;
                    scope.spawn(move || {
                        for &(start, is_scan) in per_thread {
                            let (path, n): (&str, u64) =
                                if is_scan { ("cold", SCAN) } else { ("hot", 1) };
                            for blk in start..start + n {
                                let offset =
                                    if is_scan { e * BLOCKS + blk } else { blk } * BLOCK as u64;
                                let key = BlockKey { path: path.into(), offset };
                                let hit = lru.lock().get(&key).cloned();
                                let data: Arc<Vec<u8>> =
                                    hit.unwrap_or_else(|| Arc::new(vec![blk as u8; BLOCK]));
                                lru.lock().put(key, Arc::clone(&data), BLOCK);
                                black_box(data);
                            }
                        }
                    });
                }
            });
        })
    });

    for shards in [1usize, 8] {
        group.bench_function(
            format!("zipf hot/cold, sharded+singleflight+coalesced ({shards} shards)"),
            |b| {
                let cache = TieredCache::memory_only_sharded(BLOCKS as usize / 4 * BLOCK, shards);
                let epoch = AtomicU64::new(1);
                b.iter(|| {
                    let e = epoch.fetch_add(1, Ordering::Relaxed);
                    std::thread::scope(|scope| {
                        for per_thread in &ops {
                            let cache = &cache;
                            scope.spawn(move || {
                                for &(start, is_scan) in per_thread {
                                    if is_scan {
                                        // Epoch-unique cold run: exercises the
                                        // coalesced path end to end.
                                        let blocks: Vec<(u64, u64)> = (start..start + SCAN)
                                            .map(|b| {
                                                ((e * BLOCKS + b) * BLOCK as u64, BLOCK as u64)
                                            })
                                            .collect();
                                        let got = cache
                                            .get_or_fetch_run("cold", &blocks, &|run| {
                                                Ok(run
                                                    .iter()
                                                    .map(|&(o, l)| vec![o as u8; l as usize])
                                                    .collect())
                                            })
                                            .unwrap();
                                        black_box(got);
                                    } else {
                                        let key = BlockKey {
                                            path: "hot".into(),
                                            offset: start * BLOCK as u64,
                                        };
                                        let got = cache
                                            .get_or_fetch(&key, || Ok(vec![start as u8; BLOCK]))
                                            .unwrap();
                                        black_box(got);
                                    }
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache_paths, bench_merge_ranges, bench_concurrent_zipf);
criterion_main!(benches);
