//! Index micro-benchmarks: inverted term lookup and BKD range queries.

use criterion::{criterion_group, criterion_main, Criterion};
use logstore_index::{BkdReader, BkdWriter, InvertedIndexReader, InvertedIndexWriter};
use std::hint::black_box;

const ROWS: u32 = 100_000;

fn inverted() -> InvertedIndexReader {
    let mut w = InvertedIndexWriter::new();
    for i in 0..ROWS {
        w.add(i, &format!("GET /api/v1/endpoint{} status={}", i % 500, 200 + i % 5));
    }
    InvertedIndexReader::open(&w.finish(), ROWS).unwrap()
}

fn bkd() -> BkdReader {
    let mut w = BkdWriter::new();
    for i in 0..ROWS {
        w.add(i64::from(i % 10_000) * 3, i);
    }
    BkdReader::open(&w.finish(), ROWS).unwrap()
}

fn bench_inverted(c: &mut Criterion) {
    let idx = inverted();
    let mut group = c.benchmark_group("index/inverted");
    group.sample_size(30);
    group.bench_function("token-lookup (200 hits)", |b| {
        b.iter(|| idx.lookup_token(black_box("endpoint42")).unwrap())
    });
    group.bench_function("token-lookup (miss)", |b| {
        b.iter(|| idx.lookup_token(black_box("nonexistent")).unwrap())
    });
    group.bench_function("exact-lookup", |b| {
        b.iter(|| idx.lookup_exact(black_box("GET /api/v1/endpoint42 status=202")).unwrap())
    });
    group.finish();
}

fn bench_bkd(c: &mut Criterion) {
    let idx = bkd();
    let mut group = c.benchmark_group("index/bkd");
    group.sample_size(30);
    group.bench_function("narrow-range", |b| {
        b.iter(|| idx.query_range(black_box(300), black_box(330)).unwrap())
    });
    group.bench_function("wide-range (10%)", |b| {
        b.iter(|| idx.query_range(black_box(0), black_box(3_000)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_inverted, bench_bkd);
criterion_main!(benches);
