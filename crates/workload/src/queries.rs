//! Query-set generation (paper §6.3).
//!
//! "Our query set contains 6000 queries, and six queries with different
//! filtering predicates are generated for each tenant", all instances of
//! the most common template: retrieve one tenant's logs in a time range
//! with per-field filters. The first six templates below vary the time
//! span and the filter columns the way the paper's walk-through (Fig 8)
//! does; two aggregation templates (wide multi-aggregate, time-bucketed
//! histogram) exercise the pushdown path the Fig 17 mix now measures.

use crate::records::APIS;
use logstore_types::{TenantId, Timestamp};
use rand::Rng;

/// The per-tenant query templates. `history` is the full data window.
pub fn tenant_queries<R: Rng + ?Sized>(
    tenant: TenantId,
    history_start: Timestamp,
    history_end: Timestamp,
    rng: &mut R,
) -> Vec<String> {
    let span = history_end - history_start;
    let t = tenant.raw();
    // Random sub-windows of different widths: 1/48th (one "hour" of the
    // 48h history), 1/8th, and the full window.
    let hour = span / 48;
    let wide = span / 8;
    let start_1h = history_start.millis() + rng.gen_range(0..(span - hour).max(1));
    let start_wide = history_start.millis() + rng.gen_range(0..(span - wide).max(1));
    let api = APIS[rng.gen_range(0..APIS.len())];
    let ip = format!("10.{}.0.{}", t % 250, rng.gen_range(1..30));
    vec![
        // 1. Narrow time-range retrieval (the dominant production query).
        format!(
            "SELECT log FROM request_log WHERE tenant_id = {t} \
             AND ts >= {start_1h} AND ts <= {} LIMIT 1000",
            start_1h + hour
        ),
        // 2. The paper's Fig 8 example: ip + latency + fail filters.
        format!(
            "SELECT log FROM request_log WHERE tenant_id = {t} \
             AND ts >= {start_1h} AND ts <= {} \
             AND ip = '{ip}' AND latency >= 100 AND fail = false LIMIT 1000",
            start_1h + hour
        ),
        // 3. Full-text search for failures.
        format!(
            "SELECT log FROM request_log WHERE tenant_id = {t} \
             AND ts >= {start_wide} AND ts <= {} \
             AND log CONTAINS 'timeout' LIMIT 1000",
            start_wide + wide
        ),
        // 4. API-scoped slow-request hunt.
        format!(
            "SELECT log, latency FROM request_log WHERE tenant_id = {t} \
             AND api = '{api}' AND latency >= 500 LIMIT 1000"
        ),
        // 5. The intro's BI query: which IPs hit this API most.
        format!(
            "SELECT ip, COUNT(*) FROM request_log WHERE tenant_id = {t} \
             AND api = '{api}' GROUP BY ip ORDER BY COUNT(*) DESC LIMIT 10"
        ),
        // 6. Failure count over the whole history.
        format!("SELECT COUNT(*) FROM request_log WHERE tenant_id = {t} AND fail = true"),
        // 7. Latency profile of one window — the wide ungrouped aggregate
        //    the pushdown path collapses to one AggState row per source.
        format!(
            "SELECT COUNT(*), SUM(latency), MIN(latency), MAX(latency) \
             FROM request_log WHERE tenant_id = {t} \
             AND ts >= {start_wide} AND ts <= {}",
            start_wide + wide
        ),
        // 8. Time-bucketed failure histogram over the full history (bucket
        //    width floors at 1ms so tiny test windows stay valid).
        format!(
            "SELECT TIMEBUCKET(ts, {bucket}), COUNT(*) FROM request_log \
             WHERE tenant_id = {t} AND fail = true GROUP BY TIMEBUCKET(ts, {bucket})",
            bucket = hour.max(1)
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_query::{analyze, parse_query};
    use logstore_types::TableSchema;
    use rand::SeedableRng;

    #[test]
    fn all_templates_parse_and_bind() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let schema = TableSchema::request_log();
        let qs = tenant_queries(TenantId(42), Timestamp(0), Timestamp(48 * 3600 * 1000), &mut rng);
        assert_eq!(qs.len(), 8);
        for sql in &qs {
            let parsed = parse_query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let bound = analyze::bind(&parsed, &schema).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let scope = analyze::QueryScope::extract(&bound);
            assert_eq!(scope.tenant, Some(TenantId(42)), "{sql}");
        }
    }

    #[test]
    fn templates_cover_aggregates_and_fulltext() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let qs = tenant_queries(TenantId(1), Timestamp(0), Timestamp(1_000_000), &mut rng);
        assert!(qs.iter().any(|q| q.contains("CONTAINS")));
        assert!(qs.iter().any(|q| q.contains("GROUP BY")));
        assert!(qs.iter().any(|q| q.contains("COUNT(*)")));
        assert!(qs.iter().any(|q| q.contains("SUM(latency)")), "wide aggregate template");
        assert!(qs.iter().any(|q| q.contains("TIMEBUCKET")), "time-bucket template");
    }
}
