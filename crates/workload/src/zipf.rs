//! The YCSB Zipfian generator.
//!
//! Port of the rejection-free Zipfian sampler used by YCSB (Gray et al.,
//! "Quickly Generating Billion-Record Synthetic Databases"): draws ranks in
//! `[0, n)` where rank `k` has probability proportional to `1/(k+1)^θ`.
//! `θ = 0` degenerates to the uniform distribution (the paper sweeps
//! θ ∈ {0, 0.2, ..., 0.99}).

use rand::Rng;

/// A Zipfian(θ) sampler over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a sampler over `n` items with skew `theta` (`0 <= theta < 1`).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2.min(n), theta);
        let alpha = if theta > 0.0 { 1.0 / (1.0 - theta) } else { 1.0 };
        let eta = if n >= 2 {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan)
        } else {
            1.0
        };
        Zipfian { n, theta, alpha, zetan, eta, zeta2theta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The exact probability weight of rank `k` (0-based): `(1/(k+1))^θ`
    /// normalized — used to compute deterministic per-tenant rates.
    pub fn weight(&self, k: u64) -> f64 {
        assert!(k < self.n);
        (1.0 / (k as f64 + 1.0).powf(self.theta)) / self.zetan
    }

    /// Underlying (unused beyond construction, exposed for diagnostics).
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: u64, draws: usize) -> Vec<u64> {
        let z = Zipfian::new(n, theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.next(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn theta_zero_is_uniform() {
        let counts = histogram(0.0, 10, 100_000);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform draw count {c} out of band");
        }
    }

    #[test]
    fn high_theta_is_heavily_skewed() {
        let counts = histogram(0.99, 1000, 100_000);
        // Rank 0 should dwarf rank 100.
        assert!(counts[0] > 20 * counts[100].max(1), "head {} tail {}", counts[0], counts[100]);
        // Head mass: top-10 of 1000 tenants should hold a large share.
        // Analytically the top-10 of Zipf(0.99, 1000) hold ≈ 39% of mass.
        let head: u64 = counts[..10].iter().sum();
        assert!(head as f64 > 0.35 * 100_000.0, "top-10 hold only {head}");
    }

    #[test]
    fn draws_stay_in_range() {
        let z = Zipfian::new(7, 0.7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 7);
        }
    }

    #[test]
    fn empirical_matches_analytic_weights() {
        let z = Zipfian::new(100, 0.8);
        let counts = histogram(0.8, 100, 200_000);
        for k in [0u64, 1, 10, 50] {
            let expected = z.weight(k) * 200_000.0;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() < expected.max(200.0) * 0.35,
                "rank {k}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let z = Zipfian::new(500, 0.99);
        let total: f64 = (0..500).map(|k| z.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.next(&mut rng), 0);
        }
    }
}
