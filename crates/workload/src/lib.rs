//! Workload generation (paper §6.1).
//!
//! The paper's evaluation drives LogStore with the YCSB framework: 1000
//! tenants whose traffic follows a Zipfian distribution with skew parameter
//! θ (`weight(k) ∝ (1/k)^θ`), θ = 0.99 matching production skew. This crate
//! reimplements that workload from scratch:
//!
//! * [`zipf`] — the YCSB Zipfian number generator.
//! * [`spec`] — tenant populations, per-tenant rates and skew sweeps.
//! * [`records`] — realistic `request_log` record synthesis.
//! * [`queries`] — the six per-tenant query templates of §6.3.

#![forbid(unsafe_code)]

pub mod queries;
pub mod records;
pub mod spec;
pub mod zipf;

pub use records::LogRecordGenerator;
pub use spec::WorkloadSpec;
pub use zipf::Zipfian;
