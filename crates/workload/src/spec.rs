//! Workload specifications: tenant populations and rate assignment.

use crate::zipf::Zipfian;
use logstore_types::TenantId;
use rand::Rng;
use std::collections::HashMap;

/// A multi-tenant workload: `tenants` tenants with Zipfian(θ) traffic.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of tenants (the paper uses 1000).
    pub tenants: u64,
    /// Skew parameter θ (0 = uniform, 0.99 = production-like).
    pub theta: f64,
}

impl WorkloadSpec {
    /// Creates a spec.
    pub fn new(tenants: u64, theta: f64) -> Self {
        assert!(tenants > 0);
        WorkloadSpec { tenants, theta }
    }

    /// The paper's evaluation population: 1000 tenants at θ.
    pub fn paper(theta: f64) -> Self {
        Self::new(1000, theta)
    }

    /// The sampler for this spec.
    pub fn sampler(&self) -> Zipfian {
        Zipfian::new(self.tenants, self.theta)
    }

    /// Deterministic per-tenant rates splitting `total_rate` by the exact
    /// Zipfian weights. Tenant `k+1` gets weight `(1/(k+1))^θ` (tenant ids
    /// are 1-based ranks: tenant 1 is the largest, matching Figure 2's
    /// "tenant rank id").
    pub fn tenant_rates(&self, total_rate: u64) -> HashMap<TenantId, u64> {
        let z = self.sampler();
        (0..self.tenants)
            .map(|k| {
                let rate = (total_rate as f64 * z.weight(k)).round() as u64;
                (TenantId(k + 1), rate)
            })
            .collect()
    }

    /// Samples the tenant of one log record (1-based id).
    pub fn sample_tenant<R: Rng + ?Sized>(&self, z: &Zipfian, rng: &mut R) -> TenantId {
        TenantId(z.next(rng) + 1)
    }

    /// All tenant ids of the population.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        (1..=self.tenants).map(TenantId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_split_total_and_rank_monotone() {
        let spec = WorkloadSpec::paper(0.99);
        let rates = spec.tenant_rates(1_000_000);
        assert_eq!(rates.len(), 1000);
        let total: u64 = rates.values().sum();
        assert!((999_000..=1_001_000).contains(&total), "rounding drift: {total}");
        // Monotone: tenant 1 >= tenant 2 >= ... (spot-check).
        assert!(rates[&TenantId(1)] > rates[&TenantId(10)]);
        assert!(rates[&TenantId(10)] >= rates[&TenantId(100)]);
        assert!(rates[&TenantId(100)] >= rates[&TenantId(999)]);
    }

    #[test]
    fn uniform_rates_are_flat() {
        let spec = WorkloadSpec::new(100, 0.0);
        let rates = spec.tenant_rates(100_000);
        for rate in rates.values() {
            assert_eq!(*rate, 1000);
        }
    }

    #[test]
    fn production_like_skew_shape() {
        // At θ=0.99 with 1000 tenants, the top tenant holds a few percent
        // and the head dominates — Figure 2/11's shape.
        let spec = WorkloadSpec::paper(0.99);
        let rates = spec.tenant_rates(1_000_000);
        let top: u64 = (1..=10).map(|k| rates[&TenantId(k)]).sum();
        let tail: u64 = (901..=1000).map(|k| rates[&TenantId(k)]).sum();
        assert!(top > 10 * tail, "head {top} vs tail {tail} not skewed enough");
    }

    #[test]
    fn tenant_ids_are_one_based() {
        let spec = WorkloadSpec::new(3, 0.5);
        assert_eq!(spec.tenant_ids(), vec![TenantId(1), TenantId(2), TenantId(3)]);
    }
}
