//! Synthetic `request_log` records.
//!
//! Generates realistic application-log rows for the evaluation: per-tenant
//! IP pools, a fixed API surface, long-tailed latencies, a small failure
//! rate, and log lines whose text correlates with the other fields (so
//! full-text queries like `log CONTAINS 'timeout'` select meaningful rows).

use crate::spec::WorkloadSpec;
use crate::zipf::Zipfian;
use logstore_types::{LogRecord, TenantId, Timestamp, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The API surface log lines reference.
pub const APIS: &[&str] = &[
    "/api/v1/users",
    "/api/v1/orders",
    "/api/v1/products",
    "/api/v1/search",
    "/api/v1/login",
    "/api/v1/payments",
    "/api/v2/metrics",
    "/healthz",
];

const STATUS_WORDS: &[&str] = &["ok", "accepted", "cached", "redirected"];
const FAIL_WORDS: &[&str] = &["timeout", "refused", "error", "unavailable"];

/// Tenant-scoped address formatting: a /16 per tenant, so different
/// tenants never share addresses (tenant isolation is observable in the
/// data itself).
pub fn format_ip(tenant: TenantId, idx: u32) -> String {
    format!("10.{}.{}.{}", tenant.raw() % 250, idx / 250, idx % 250 + 1)
}

/// The dominant ("session") address of `tenant` around `ts` — the address
/// the generator emits for 80% of that tenant's records in the ~10-minute
/// window containing `ts`. Query harnesses use this to build realistic
/// selective filters.
pub fn session_ip(tenant: TenantId, ts: Timestamp, ips_per_tenant: u32) -> String {
    let bucket = (ts.millis().div_euclid(600_000)) as u64;
    let h = bucket
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(tenant.raw().wrapping_mul(0xd134_2543_de82_ef95));
    format_ip(tenant, ((h >> 33) % u64::from(ips_per_tenant.max(1))) as u32)
}

/// Deterministic record generator.
pub struct LogRecordGenerator {
    rng: StdRng,
    /// Distinct source IPs per tenant.
    ips_per_tenant: u32,
    /// Probability that a request failed.
    fail_rate: f64,
}

impl LogRecordGenerator {
    /// Creates a generator with paper-ish defaults (32 IPs/tenant, 2% fail).
    pub fn new(seed: u64) -> Self {
        LogRecordGenerator { rng: StdRng::seed_from_u64(seed), ips_per_tenant: 32, fail_rate: 0.02 }
    }

    /// Overrides the per-tenant IP pool size.
    pub fn with_ips_per_tenant(mut self, n: u32) -> Self {
        self.ips_per_tenant = n.max(1);
        self
    }

    /// Generates one record for `tenant` at `ts`.
    pub fn record(&mut self, tenant: TenantId, ts: Timestamp) -> LogRecord {
        // Client activity is bursty: within a ~10-minute session window one
        // address dominates a tenant's traffic, with a 20% background of
        // other clients. This temporal clustering is what makes per-field
        // indexes + block skipping effective on real logs (a given IP's
        // records concentrate in a few column blocks).
        let ip = if self.rng.gen_bool(0.2) {
            let idx = self.rng.gen_range(0..self.ips_per_tenant);
            format_ip(tenant, idx)
        } else {
            session_ip(tenant, ts, self.ips_per_tenant)
        };
        let api = APIS[self.rng.gen_range(0..APIS.len())];
        // Long-tailed latency: mostly fast, occasional stragglers.
        let base: f64 = self.rng.gen_range(1.0..20.0);
        let tail: f64 =
            if self.rng.gen_bool(0.05) { self.rng.gen_range(100.0..2000.0) } else { 0.0 };
        let latency = (base + tail) as i64;
        let fail = self.rng.gen_bool(self.fail_rate);
        let word = if fail {
            FAIL_WORDS[self.rng.gen_range(0..FAIL_WORDS.len())]
        } else {
            STATUS_WORDS[self.rng.gen_range(0..STATUS_WORDS.len())]
        };
        let log = format!(
            "{} {} from {} in {}ms status={}",
            if fail { "FAIL" } else { "GET" },
            api,
            ip,
            latency,
            word
        );
        LogRecord::new(
            tenant,
            ts,
            vec![
                Value::Str(ip),
                Value::Str(api.to_string()),
                Value::I64(latency),
                Value::Bool(fail),
                Value::Str(log),
            ],
        )
    }

    /// Generates a time-ordered history: `count` records between `start`
    /// and `end`, tenants drawn from `spec`'s Zipfian.
    pub fn history(
        &mut self,
        spec: &WorkloadSpec,
        count: usize,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<LogRecord> {
        let z: Zipfian = spec.sampler();
        let span = (end - start).max(1);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let ts = start + (span * i as i64 / count.max(1) as i64);
            let tenant = spec.sample_tenant(&z, &mut self.rng);
            out.push(self.record(tenant, ts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore_types::TableSchema;

    #[test]
    fn records_match_schema() {
        let schema = TableSchema::request_log();
        let mut g = LogRecordGenerator::new(1);
        for i in 0..100 {
            let r = g.record(TenantId(i % 5 + 1), Timestamp(i as i64));
            r.validate(&schema).unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LogRecordGenerator::new(7).record(TenantId(1), Timestamp(0));
        let b = LogRecordGenerator::new(7).record(TenantId(1), Timestamp(0));
        assert_eq!(a, b);
    }

    #[test]
    fn tenants_have_disjoint_ip_space() {
        let mut g = LogRecordGenerator::new(2);
        let r1 = g.record(TenantId(1), Timestamp(0));
        let r2 = g.record(TenantId(2), Timestamp(0));
        let ip1 = r1.fields[0].as_str().unwrap();
        let ip2 = r2.fields[0].as_str().unwrap();
        assert!(ip1.starts_with("10.1."));
        assert!(ip2.starts_with("10.2."));
    }

    #[test]
    fn fail_flag_correlates_with_log_text() {
        let mut g = LogRecordGenerator::new(3);
        let mut saw_fail = false;
        for i in 0..2000 {
            let r = g.record(TenantId(1), Timestamp(i));
            let fail = r.fields[3].as_bool().unwrap();
            let log = r.fields[4].as_str().unwrap();
            if fail {
                saw_fail = true;
                assert!(log.starts_with("FAIL"), "failed request log: {log}");
            } else {
                assert!(log.starts_with("GET"));
            }
        }
        assert!(saw_fail, "2000 records at 2% fail rate should include failures");
    }

    #[test]
    fn history_is_time_ordered_and_skewed() {
        let spec = WorkloadSpec::new(100, 0.99);
        let mut g = LogRecordGenerator::new(4);
        let history = g.history(&spec, 5000, Timestamp(0), Timestamp(1_000_000));
        assert_eq!(history.len(), 5000);
        assert!(history.windows(2).all(|w| w[0].ts <= w[1].ts));
        let tenant1 = history.iter().filter(|r| r.tenant_id == TenantId(1)).count();
        let tenant90 = history.iter().filter(|r| r.tenant_id == TenantId(90)).count();
        assert!(tenant1 > 5 * tenant90.max(1), "t1={tenant1} t90={tenant90}");
    }
}
