//! Seed → schedule expansion.

use logstore_core::CrashPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a simulation schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// Ingest `rows` fresh records for `tenant`.
    Ingest {
        /// Target tenant.
        tenant: u64,
        /// Batch size.
        rows: usize,
    },
    /// Force a full build pass (drain → upload → ack on every shard).
    FlushAll,
    /// Run the build pass only for shards over the flush threshold.
    FlushIfNeeded,
    /// One compaction pass (merge runs of small LogBlocks) followed by a
    /// GC pass over the tombstones it produced. Row-preserving, so the
    /// acked-rows oracle is unaffected.
    Compact,
    /// One traffic-control tick (may rebalance and flush vacated routes).
    ControlTick,
    /// Differential-check one tenant's queries against the oracle.
    CheckQueries {
        /// Tenant to check.
        tenant: u64,
    },
    /// Open an OSS fault window: in-scope (write) operations start failing
    /// with this probability until cleared.
    FaultWindow {
        /// Per-operation failure probability.
        probability: f64,
    },
    /// Close the fault window.
    ClearFaults,
    /// Arm a simulated crash at `point` after `countdown` further visits.
    ArmCrash {
        /// Protocol point to crash at.
        point: CrashPoint,
        /// Visits of `point` to let pass before firing (0 = next).
        countdown: u64,
    },
    /// Open a control-plane network fault window: controller RPCs start
    /// seeing seeded drops / duplicates / reordering until cleared.
    NetFault {
        /// Per-message drop probability.
        drop: f64,
        /// Per-message duplication probability.
        dup: f64,
        /// Allow out-of-order delivery.
        reorder: bool,
    },
    /// Restore a perfect control-plane network.
    ClearNetFaults,
    /// Kill the controller leader. With `during_rebalance`, arm the kill
    /// to fire right after the next rebalancing tick commits instead of
    /// immediately — the "leader dies mid-rebalance" scenario.
    KillController {
        /// Defer the kill to the next rebalance commit.
        during_rebalance: bool,
    },
    /// Revive killed controller replicas and heal their partitions.
    HealControllers,
    /// Run the full invariant battery now.
    CheckInvariants,
}

/// A complete, seed-derived episode schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPlan {
    /// The seed this plan (and its episode) derives from.
    pub seed: u64,
    /// The schedule.
    pub ops: Vec<SimOp>,
}

impl SimPlan {
    /// Expands `seed` into a schedule. The same seed always yields the
    /// same plan.
    pub fn from_seed(seed: u64) -> SimPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51_17_7e_57);
        let tenant_count: u64 = rng.gen_range(2..=4);
        let op_count: usize = rng.gen_range(40..=70);
        let mut ops = Vec::with_capacity(op_count + 1);
        for _ in 0..op_count {
            let roll: u32 = rng.gen_range(0..100);
            let op = match roll {
                0..=41 => SimOp::Ingest {
                    tenant: rng.gen_range(1..=tenant_count),
                    rows: rng.gen_range(5..=80),
                },
                42..=48 => SimOp::FlushAll,
                49..=54 => SimOp::FlushIfNeeded,
                55..=58 => SimOp::Compact,
                59..=61 => SimOp::ControlTick,
                62..=70 => SimOp::CheckQueries { tenant: rng.gen_range(1..=tenant_count) },
                71..=75 => SimOp::FaultWindow { probability: rng.gen_range(0.1..0.45) },
                76..=79 => SimOp::ClearFaults,
                80..=88 => SimOp::ArmCrash {
                    point: CrashPoint::ALL[rng.gen_range(0..CrashPoint::ALL.len())],
                    countdown: rng.gen_range(0..3),
                },
                // Drop rates stay modest: the client retransmit budget is
                // generous but an episode runs hundreds of RPCs.
                89..=90 => SimOp::NetFault {
                    drop: rng.gen_range(0.02..0.15),
                    dup: rng.gen_range(0.0..0.25),
                    reorder: rng.gen_bool(0.5),
                },
                91 => SimOp::ClearNetFaults,
                92..=93 => SimOp::KillController { during_rebalance: rng.gen_bool(0.5) },
                94 => SimOp::HealControllers,
                _ => SimOp::CheckInvariants,
            };
            ops.push(op);
        }
        ops.push(SimOp::CheckInvariants);
        SimPlan { seed, ops }
    }

    /// This plan without [`SimOp::ControlTick`] steps. The balancer's plan
    /// is equivalent across runs but not guaranteed byte-stable (snapshot
    /// assembly iterates hash maps), so trace-comparison tests drop ticks;
    /// invariant checking keeps them.
    pub fn without_control_ticks(mut self) -> SimPlan {
        self.ops.retain(|op| !matches!(op, SimOp::ControlTick));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(SimPlan::from_seed(7), SimPlan::from_seed(7));
        assert_ne!(SimPlan::from_seed(7), SimPlan::from_seed(8));
    }

    #[test]
    fn plans_always_end_with_a_check() {
        for seed in 0..32 {
            let plan = SimPlan::from_seed(seed);
            assert_eq!(plan.ops.last(), Some(&SimOp::CheckInvariants));
            assert!(plan.ops.len() >= 41);
        }
    }

    #[test]
    fn control_tick_filter_drops_only_ticks() {
        // Find a seed whose plan contains a tick, then filter it.
        let seed = (0..1000)
            .find(|&s| SimPlan::from_seed(s).ops.iter().any(|op| matches!(op, SimOp::ControlTick)))
            .expect("some seed yields a ControlTick");
        let plan = SimPlan::from_seed(seed);
        let filtered = plan.clone().without_control_ticks();
        assert!(filtered.ops.len() < plan.ops.len());
        assert!(!filtered.ops.iter().any(|op| matches!(op, SimOp::ControlTick)));
    }
}
