//! Deterministic whole-engine simulation testing for LogStore.
//!
//! One `u64` seed expands into a [`SimPlan`]: a schedule that interleaves
//! multi-tenant ingest, forced and threshold flushes, traffic-control
//! ticks, queries, OSS fault windows and **simulated crashes** at named
//! points of the archive protocol ([`logstore_core::CrashPoint`]). An
//! [`Episode`] drives a real engine through the schedule while maintaining
//! an in-memory oracle of every acknowledged row; a crash drops the engine
//! mid-protocol and reopens it from disk against the same (surviving) OSS
//! and metadata store, exactly like a node restart.
//!
//! After every recovery — and on demand — the harness checks:
//!
//! * **No acknowledged row is lost** and **no row is duplicated** (row
//!   identity is a unique id the harness hides in the `latency` column).
//! * Rows from a batch whose ingest crashed mid-call are *in doubt*: they
//!   may survive (the WAL covered them) or not, but each must resolve to
//!   exactly zero or one copy.
//! * Query results are **bit-identical** at `parallelism` 1 and the full
//!   pool width, and `COUNT(*)` / predicate counts equal the oracle's.
//! * Shard accounting holds: `buffered == appended − archived`.
//! * At episode end, after one clean flush, every tenant's LogBlock rows
//!   on OSS sum to exactly its acknowledged row count.
//!
//! Every failure carries the seed and a replay hint
//! (`SIMTEST_SEED=<seed> cargo test -p logstore-simtest`); the same seed
//! replays the same episode.

#![forbid(unsafe_code)]

mod crash;
mod episode;
mod plan;

pub use crash::ArmedCrashes;
pub use episode::{Episode, EpisodeReport, SimFailure};
pub use plan::{SimOp, SimPlan};
