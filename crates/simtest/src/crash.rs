//! The crash injector: an armable [`CrashHooks`] implementation.

use logstore_core::{CrashHooks, CrashPoint, SimCrash};
use logstore_sync::OrderedMutex;

/// Crash-point injector handed to every engine incarnation of an episode.
///
/// At most one crash is armed at a time: `(point, countdown)` fires a
/// [`SimCrash`] panic the `countdown`-th time the pipeline reaches
/// `point` (0 = the very next time). Firing disarms the injector first,
/// so the recovery that follows — and anything after it — runs clean
/// until the schedule arms the next crash.
pub struct ArmedCrashes {
    armed: OrderedMutex<Option<(CrashPoint, u64)>>,
    fired: OrderedMutex<Vec<CrashPoint>>,
}

impl Default for ArmedCrashes {
    fn default() -> Self {
        Self::new()
    }
}

impl ArmedCrashes {
    /// A fresh, disarmed injector.
    pub fn new() -> Self {
        ArmedCrashes {
            armed: OrderedMutex::new("simtest.crash.armed", None),
            fired: OrderedMutex::new("simtest.crash.fired", Vec::new()),
        }
    }

    /// Arms a crash: panic on the `countdown`-th future visit of `point`.
    pub fn arm(&self, point: CrashPoint, countdown: u64) {
        *self.armed.lock() = Some((point, countdown));
    }

    /// Disarms any pending crash.
    pub fn disarm(&self) {
        *self.armed.lock() = None;
    }

    /// Every crash fired so far, in order.
    pub fn fired(&self) -> Vec<CrashPoint> {
        self.fired.lock().clone()
    }
}

impl CrashHooks for ArmedCrashes {
    fn reached(&self, point: CrashPoint) {
        let mut armed = self.armed.lock();
        match armed.as_mut() {
            Some((p, countdown)) if *p == point => {
                if *countdown == 0 {
                    *armed = None;
                    drop(armed);
                    self.fired.lock().push(point);
                    std::panic::panic_any(SimCrash(point));
                }
                *countdown -= 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_countdown_and_disarms() {
        let crashes = ArmedCrashes::new();
        crashes.arm(CrashPoint::AfterDrain, 2);
        crashes.reached(CrashPoint::AfterDrain);
        crashes.reached(CrashPoint::AfterUpload); // other points don't count down
        crashes.reached(CrashPoint::AfterDrain);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crashes.reached(CrashPoint::AfterDrain)
        }));
        let payload = unwound.unwrap_err();
        let crash = payload.downcast_ref::<SimCrash>().expect("SimCrash payload");
        assert_eq!(crash.0, CrashPoint::AfterDrain);
        assert_eq!(crashes.fired(), vec![CrashPoint::AfterDrain]);
        // Disarmed: the same point no longer fires.
        crashes.reached(CrashPoint::AfterDrain);
    }
}
