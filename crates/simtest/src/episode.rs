//! Episode execution: engine lifecycle, oracle, invariant battery.

use crate::crash::ArmedCrashes;
use crate::plan::{SimOp, SimPlan};
use logstore_core::{
    ClusterConfig, CrashHooks, CrashPoint, LogStore, MetadataStore, OpenParts, QueryOptions,
    SimCrash, Store,
};
use logstore_oss::{
    FaultScope, FaultyStore, LatencyModel, MemoryStore, ObjectStore, RetryPolicy, RetryingStore,
    SimulatedOss,
};
use logstore_types::{LogRecord, TenantId, Timestamp, Value};
use logstore_workload::LogRecordGenerator;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An invariant violation (or harness-level error) with everything needed
/// to reproduce it.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The episode's seed.
    pub seed: u64,
    /// Schedule step index at which the violation surfaced.
    pub step: usize,
    /// What went wrong.
    pub message: String,
    /// The episode's event trace up to the failure.
    pub trace: Vec<String>,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "simulation invariant violated at step {} (seed {}): {}",
            self.step, self.seed, self.message
        )?;
        writeln!(f, "replay: SIMTEST_SEED={} cargo test -p logstore-simtest", self.seed)?;
        writeln!(f, "trace ({} events):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimFailure {}

/// What a completed episode did.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct EpisodeReport {
    /// Schedule steps executed.
    pub ops: usize,
    /// Simulated crashes fired (each followed by a recovery).
    pub crashes: u64,
    /// The crash points that fired, in order.
    pub crash_points: Vec<CrashPoint>,
    /// OSS faults the fault layer injected.
    pub faults_injected: u64,
    /// Rows acknowledged to the oracle over the episode.
    pub rows_acked: u64,
    /// Invariant batteries run (scheduled + post-recovery + final).
    pub checks: u64,
    /// LogBlocks on OSS at episode end.
    pub blocks: usize,
    /// The full event trace (deterministic for a seed, modulo control
    /// ticks — see [`SimPlan::without_control_ticks`]).
    pub trace: Vec<String>,
}

/// Outcome of one engine call under crash injection.
enum Outcome<T> {
    /// The call returned (possibly an engine error).
    Done(logstore_types::Result<T>),
    /// A simulated crash unwound the call; the engine is dropped.
    Crashed(CrashPoint),
}

static EPISODE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Keeps simulated crashes out of stderr: a [`SimCrash`] panic is an
/// *expected* control-flow event of every episode, so the default hook's
/// message + backtrace for it is pure noise (and with hundreds of soak
/// episodes, megabytes of it). Real panics still print normally.
fn silence_sim_crash_panics() {
    static SILENCE: std::sync::Once = std::sync::Once::new();
    SILENCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimCrash>().is_none() {
                default_hook(info);
            }
        }));
    });
}

/// One seeded, schedule-driven run of the full engine.
///
/// The episode owns the "world outside the node": the OSS stack and the
/// metadata store survive simulated crashes, the engine and its caches do
/// not, and the WAL directory on disk is the node's durable local state.
pub struct Episode {
    seed: u64,
    config: ClusterConfig,
    data_dir: std::path::PathBuf,
    store: Arc<Store>,
    metadata: Arc<MetadataStore>,
    crashes: Arc<ArmedCrashes>,
    engine: Option<LogStore>,
    /// Acknowledged rows per tenant, keyed by the unique id each record
    /// carries in its `latency` column.
    oracle: BTreeMap<u64, BTreeMap<i64, LogRecord>>,
    /// Rows whose ingest call crashed mid-flight: present after recovery
    /// (the WAL covered them) or gone, never duplicated.
    in_doubt: BTreeMap<i64, LogRecord>,
    tenants: BTreeSet<u64>,
    generator: LogRecordGenerator,
    clock_ms: i64,
    next_uid: i64,
    report: EpisodeReport,
}

impl Episode {
    /// Runs `plan` end to end: every scheduled op, then the final clean
    /// flush and accounting battery.
    pub fn run(plan: &SimPlan) -> Result<EpisodeReport, SimFailure> {
        let mut episode = Episode::new(plan.seed)?;
        for (step, op) in plan.ops.iter().enumerate() {
            episode.apply(step, op)?;
        }
        episode.finish(plan.ops.len())
    }

    /// Builds the world and opens the first engine incarnation.
    pub fn new(seed: u64) -> Result<Self, SimFailure> {
        silence_sim_crash_panics();
        let data_dir = std::env::temp_dir().join(format!(
            "logstore-simtest-{}-{}-{}",
            std::process::id(),
            seed,
            EPISODE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let mut config = ClusterConfig::for_testing();
        config.seed = seed;
        config.data_dir = Some(data_dir.clone());
        // Writes-scoped faults: uploads fail, queries keep working — and
        // (critically for replay) reads never advance the fault layer's
        // op counter or rng.
        config.oss_fault_scope = FaultScope::Writes;
        // Small thresholds so threshold flushes fire and drains span
        // several chunks (multi-block commits, partial-prefix crashes).
        config.rowstore_flush_bytes = 24 * 1024;
        config.max_rows_per_logblock = 48;
        config.block_rows = 16;
        let store: Arc<Store> = Arc::new(RetryingStore::new(
            SimulatedOss::new(
                FaultyStore::new(MemoryStore::new(), FaultScope::Writes, 0.0, seed),
                LatencyModel::zero(),
                seed,
            ),
            RetryPolicy::none(),
            seed,
        ));
        let metadata = Arc::new(MetadataStore::new());
        let crashes = Arc::new(ArmedCrashes::new());
        let mut episode = Episode {
            seed,
            config,
            data_dir,
            store,
            metadata,
            crashes,
            engine: None,
            oracle: BTreeMap::new(),
            in_doubt: BTreeMap::new(),
            tenants: BTreeSet::new(),
            generator: LogRecordGenerator::new(seed ^ 0xfeed),
            clock_ms: 0,
            next_uid: 0,
            report: EpisodeReport::default(),
        };
        episode.reopen(0)?;
        Ok(episode)
    }

    /// The live engine (test sabotage hooks reach through this).
    pub fn engine(&self) -> &LogStore {
        self.engine.as_ref().expect("episode engine is open")
    }

    /// The episode-owned metadata store.
    pub fn metadata(&self) -> &Arc<MetadataStore> {
        &self.metadata
    }

    /// Test-only sabotage: re-ingests an already-acknowledged row without
    /// telling the oracle — a synthetic exactly-once bug the next
    /// [`SimOp::CheckQueries`] on that tenant must catch as a duplicate.
    pub fn inject_duplicate_row(&mut self, tenant: u64) {
        let row = self
            .oracle
            .get(&tenant)
            .and_then(|rows| rows.values().next())
            .cloned()
            .expect("tenant has acknowledged rows to duplicate");
        self.engine().ingest(vec![row]).expect("sabotage ingest");
    }

    /// Applies one scheduled op.
    pub fn apply(&mut self, step: usize, op: &SimOp) -> Result<(), SimFailure> {
        self.report.ops += 1;
        match op {
            SimOp::Ingest { tenant, rows } => {
                self.tenants.insert(*tenant);
                let batch: Vec<LogRecord> = (0..*rows).map(|_| self.make_record(*tenant)).collect();
                let cloned = batch.clone();
                match self.guarded(move |engine| engine.ingest(cloned)) {
                    Outcome::Done(Ok(r)) => {
                        if r.rejected != 0 {
                            return Err(self.failure(
                                step,
                                format!(
                                    "{} rows hit backpressure; harness sizing is wrong",
                                    r.rejected
                                ),
                            ));
                        }
                        if r.failed != 0 {
                            // The harness injects no WAL or replication
                            // faults, so a degraded append is a real bug.
                            return Err(self.failure(
                                step,
                                format!(
                                    "{} rows failed to append: {}",
                                    r.failed,
                                    r.first_failure.as_deref().unwrap_or("(no detail)")
                                ),
                            ));
                        }
                        let acked = self.oracle.entry(*tenant).or_default();
                        for row in batch {
                            acked.insert(uid_of(&row), row);
                        }
                        self.report.rows_acked += *rows as u64;
                        self.trace(step, format!("ingest t{tenant} rows={rows} acked"));
                    }
                    Outcome::Done(Err(e)) => {
                        return Err(self.failure(step, format!("ingest failed terminally: {e}")));
                    }
                    Outcome::Crashed(point) => {
                        for row in batch {
                            self.in_doubt.insert(uid_of(&row), row);
                        }
                        self.trace(step, format!("ingest t{tenant} rows={rows} CRASH {point:?}"));
                        self.recover(step, point)?;
                    }
                }
            }
            SimOp::FlushAll | SimOp::FlushIfNeeded => {
                let force = matches!(op, SimOp::FlushAll);
                let label = if force { "flush" } else { "flush-if-needed" };
                match self.guarded(
                    move |engine| {
                        if force {
                            engine.flush()
                        } else {
                            engine.flush_if_needed()
                        }
                    },
                ) {
                    Outcome::Done(Ok(report)) => {
                        self.trace(step, format!("{label} archived={}", report.rows_archived));
                    }
                    Outcome::Done(Err(_)) => {
                        // Fault-window upload failure: rows restored to the
                        // row store, re-archived later. Legal.
                        self.trace(step, format!("{label} degraded (faults)"));
                    }
                    Outcome::Crashed(point) => {
                        self.trace(step, format!("{label} CRASH {point:?}"));
                        self.recover(step, point)?;
                    }
                }
            }
            SimOp::Compact => {
                match self.guarded(|engine| engine.compact().map(|r| (r, engine.gc()))) {
                    Outcome::Done(Ok((compact, gc))) => {
                        self.trace(
                            step,
                            format!(
                                "compact runs={} merged={} races={} gc del={} kept={} orphans={}",
                                compact.runs_committed,
                                compact.blocks_merged,
                                compact.runs_lost_races,
                                gc.deleted,
                                gc.retained,
                                gc.orphans_swept
                            ),
                        );
                    }
                    Outcome::Done(Err(_)) => {
                        // A merged-block upload lost to the fault window;
                        // the sources stay mapped, the intent is aborted to
                        // a tombstone. Legal.
                        self.trace(step, "compact degraded (faults)".to_string());
                    }
                    Outcome::Crashed(point) => {
                        self.trace(step, format!("compact CRASH {point:?}"));
                        self.recover(step, point)?;
                    }
                }
            }
            SimOp::ControlTick => match self.guarded(|engine| engine.control_tick()) {
                Outcome::Done(Ok(action)) => {
                    self.trace(step, format!("control-tick {action:?}"));
                }
                Outcome::Done(Err(_)) => {
                    // A vacated-route flush lost to the fault window; the
                    // rows went back to their old shard. Legal.
                    self.trace(step, "control-tick degraded (faults)".to_string());
                }
                Outcome::Crashed(point) => {
                    self.trace(step, format!("control-tick CRASH {point:?}"));
                    self.recover(step, point)?;
                }
            },
            SimOp::CheckQueries { tenant } => {
                self.trace(step, format!("check-queries t{tenant}"));
                self.check_tenant(step, *tenant, false)?;
            }
            SimOp::FaultWindow { probability } => {
                self.fault_layer().set_probability(*probability);
                self.trace(step, format!("fault-window p={probability:.2}"));
            }
            SimOp::ClearFaults => {
                self.fault_layer().set_probability(0.0);
                self.fault_layer().clear_faults();
                self.trace(step, "clear-faults".to_string());
            }
            SimOp::ArmCrash { point, countdown } => {
                self.crashes.arm(*point, *countdown);
                self.trace(step, format!("arm-crash {point:?} countdown={countdown}"));
            }
            SimOp::NetFault { drop, dup, reorder } => {
                self.engine().shared().controller.set_net_faults(*drop, *dup, *reorder);
                self.trace(
                    step,
                    format!("net-fault drop={drop:.2} dup={dup:.2} reorder={reorder}"),
                );
            }
            SimOp::ClearNetFaults => {
                self.engine().shared().controller.clear_net_faults();
                self.trace(step, "clear-net-faults".to_string());
            }
            SimOp::KillController { during_rebalance } => {
                let controller = &self.engine().shared().controller;
                if *during_rebalance {
                    controller.arm_kill_on_rebalance();
                    self.trace(step, "kill-controller armed (fires on next rebalance)".to_string());
                } else {
                    let killed = controller.kill_controller_leader();
                    self.trace(step, format!("kill-controller killed={killed:?}"));
                }
            }
            SimOp::HealControllers => {
                self.engine().shared().controller.heal_controllers();
                self.trace(step, "heal-controllers".to_string());
            }
            SimOp::CheckInvariants => {
                self.trace(step, "check-invariants".to_string());
                self.check_all(step, false)?;
            }
        }
        Ok(())
    }

    /// Ends the episode: disarm, clear faults, one clean flush, then the
    /// final battery plus OSS accounting (every acknowledged row on OSS
    /// exactly once, nothing left buffered).
    pub fn finish(mut self, step: usize) -> Result<EpisodeReport, SimFailure> {
        self.crashes.disarm();
        self.fault_layer().set_probability(0.0);
        self.fault_layer().clear_faults();
        // The control plane also ends clean: killed controller replicas
        // revive, partitions heal, network faults clear — the final flush
        // and accounting run against a converged control plane.
        self.engine().shared().controller.heal_controllers();
        self.engine().shared().controller.clear_net_faults();
        match self.guarded(|engine| engine.flush()) {
            Outcome::Done(Ok(_)) => {}
            Outcome::Done(Err(e)) => {
                return Err(self.failure(step, format!("clean final flush failed: {e}")));
            }
            Outcome::Crashed(point) => {
                return Err(self.failure(step, format!("crash fired while disarmed: {point:?}")));
            }
        }
        self.trace(step, "final clean flush".to_string());
        self.check_all(step, false)?;
        let engine = self.engine();
        for worker in engine.shared().worker_snapshot() {
            for shard in worker.shard_ids() {
                let buffered = worker
                    .buffered_rows(shard)
                    .map_err(|e| self.plain_failure(step, format!("buffered_rows: {e}")))?;
                if buffered != 0 {
                    return Err(self.failure(
                        step,
                        format!("{shard} still buffers {buffered} rows after a clean forced flush"),
                    ));
                }
            }
        }
        for (&tenant, acked) in &self.oracle {
            let on_oss: u64 =
                self.metadata.all_blocks(TenantId(tenant)).iter().map(|e| e.rows).sum();
            if on_oss != acked.len() as u64 {
                return Err(self.plain_failure(
                    step,
                    format!(
                        "tenant {tenant}: {on_oss} rows on OSS vs {} acknowledged — \
                         archive accounting broke",
                        acked.len()
                    ),
                ));
            }
        }
        // One clean GC pass, then OSS object accounting: with faults off,
        // every tombstone and crash-orphaned upload must be deletable, and
        // the surviving object set must mirror the LogBlock map exactly —
        // an extra object is a leak, a missing one is a dangling map entry.
        let gc = match self.guarded(|engine| Ok(engine.gc())) {
            Outcome::Done(Ok(gc)) => gc,
            Outcome::Done(Err(e)) => {
                return Err(self.failure(step, format!("clean final gc failed: {e}")));
            }
            Outcome::Crashed(point) => {
                return Err(self.failure(step, format!("crash fired while disarmed: {point:?}")));
            }
        };
        self.trace(
            step,
            format!(
                "final gc deleted={} retained={} orphans={}",
                gc.deleted, gc.retained, gc.orphans_swept
            ),
        );
        if gc.retained != 0 {
            return Err(self.plain_failure(
                step,
                format!("clean final gc retained {} tombstones", gc.retained),
            ));
        }
        if !self.metadata.tombstones().is_empty() || !self.metadata.pending_paths().is_empty() {
            return Err(self.plain_failure(
                step,
                format!(
                    "episode ends with {} tombstones and {} pending paths outstanding",
                    self.metadata.tombstones().len(),
                    self.metadata.pending_paths().len()
                ),
            ));
        }
        let mapped: BTreeSet<String> = self
            .tenants
            .iter()
            .flat_map(|&t| self.metadata.all_blocks(TenantId(t)))
            .map(|e| e.path)
            .collect();
        let on_oss: BTreeSet<String> = self
            .fault_layer()
            .inner()
            .list("tenants/")
            .map_err(|e| self.plain_failure(step, format!("raw OSS list failed: {e}")))?
            .into_iter()
            .collect();
        if let Some(leaked) = on_oss.difference(&mapped).next() {
            return Err(
                self.plain_failure(step, format!("OSS object {leaked} leaked (not in any map)"))
            );
        }
        if let Some(dangling) = mapped.difference(&on_oss).next() {
            return Err(
                self.plain_failure(step, format!("mapped LogBlock {dangling} missing from OSS"))
            );
        }
        self.report.faults_injected = self.fault_layer().injected();
        self.report.blocks = self.engine().block_count();
        Ok(std::mem::take(&mut self.report))
    }

    /// Runs `f` against the live engine, converting a [`SimCrash`] unwind
    /// into [`Outcome::Crashed`] (dropping the engine). Non-simulated
    /// panics propagate — those are real bugs.
    fn guarded<T>(&mut self, f: impl FnOnce(&LogStore) -> logstore_types::Result<T>) -> Outcome<T> {
        let engine = self.engine.as_ref().expect("episode engine is open");
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(engine))) {
            Ok(result) => Outcome::Done(result),
            Err(payload) => match payload.downcast_ref::<SimCrash>() {
                Some(&SimCrash(point)) => {
                    self.engine = None;
                    Outcome::Crashed(point)
                }
                None => std::panic::resume_unwind(payload),
            },
        }
    }

    /// Recovery: reopen the engine from disk and run the post-recovery
    /// battery (with in-doubt reconciliation).
    fn recover(&mut self, step: usize, point: CrashPoint) -> Result<(), SimFailure> {
        self.report.crashes += 1;
        self.report.crash_points.push(point);
        self.reopen(step)?;
        self.trace(step, format!("recovered from {point:?}"));
        self.check_all(step, true)
    }

    fn reopen(&mut self, step: usize) -> Result<(), SimFailure> {
        let parts = OpenParts {
            store: Some(Arc::clone(&self.store)),
            metadata: Some(Arc::clone(&self.metadata)),
            hooks: Some(Arc::clone(&self.crashes) as Arc<dyn CrashHooks>),
        };
        let engine = LogStore::open_with(self.config.clone(), parts)
            .map_err(|e| self.plain_failure(step, format!("engine reopen failed: {e}")))?;
        self.engine = Some(engine);
        Ok(())
    }

    /// The full battery: every tenant's differential checks plus shard
    /// accounting. With `reconcile`, engine rows unknown to the oracle may
    /// be promoted from the in-doubt set; whatever stays in doubt
    /// afterwards provably never survived and is forgotten.
    fn check_all(&mut self, step: usize, reconcile: bool) -> Result<(), SimFailure> {
        self.report.checks += 1;
        let tenants: Vec<u64> = self.tenants.iter().copied().collect();
        for tenant in tenants {
            self.check_tenant(step, tenant, reconcile)?;
        }
        if reconcile {
            self.in_doubt.clear();
        }
        // No dangling map entry: every mapped LogBlock must be backed by a
        // live object on raw OSS. Probed beneath the fault and metrics
        // layers so the check perturbs neither replay determinism nor
        // modelled costs — a compaction or GC that deleted an object
        // before (or without) swapping it out of the map is caught here.
        let raw = self.fault_layer().inner();
        for tenant in self.tenants.iter().copied() {
            for entry in self.metadata.all_blocks(TenantId(tenant)) {
                if raw.head(&entry.path).is_err() {
                    return Err(self.plain_failure(
                        step,
                        format!(
                            "tenant {tenant}: mapped LogBlock {} has no OSS object — \
                             GC deleted a live block",
                            entry.path
                        ),
                    ));
                }
            }
        }
        self.check_counters(step)
    }

    /// One tenant's differential battery.
    fn check_tenant(
        &mut self,
        step: usize,
        tenant: u64,
        reconcile: bool,
    ) -> Result<(), SimFailure> {
        let engine = self.engine.as_ref().expect("episode engine is open");
        let sql = format!("SELECT latency FROM request_log WHERE tenant_id = {tenant}");
        let sequential = engine
            .query_with_options(&sql, &QueryOptions::default().with_parallelism(1))
            .map_err(|e| self.plain_failure(step, format!("sequential query failed: {e}")))?;
        let parallel = engine
            .query_with_options(&sql, &QueryOptions::default())
            .map_err(|e| self.plain_failure(step, format!("parallel query failed: {e}")))?;
        if sequential.result != parallel.result {
            return Err(self.plain_failure(
                step,
                format!("tenant {tenant}: parallel result differs from sequential reference"),
            ));
        }
        // Aggregation-pushdown differential: partial aggregate states
        // merged across sources must reproduce the row-materializing
        // (pushdown-off) plan bit for bit, and COUNT(*) must agree with
        // the materialized row count.
        let agg_sql = format!(
            "SELECT COUNT(*), MIN(latency), MAX(latency), SUM(latency) \
             FROM request_log WHERE tenant_id = {tenant}"
        );
        let pushed = engine
            .query_with_options(&agg_sql, &QueryOptions::default())
            .map_err(|e| self.plain_failure(step, format!("pushdown query failed: {e}")))?;
        let transported = engine
            .query_with_options(
                &agg_sql,
                &QueryOptions { use_pushdown: false, ..QueryOptions::default() },
            )
            .map_err(|e| self.plain_failure(step, format!("pushdown-off query failed: {e}")))?;
        if pushed.result != transported.result {
            return Err(self.plain_failure(
                step,
                format!("tenant {tenant}: pushdown result differs from row-materializing plan"),
            ));
        }
        let expected_count = Value::U64(sequential.result.rows.len() as u64);
        if pushed.result.rows.first().and_then(|r| r.first()) != Some(&expected_count) {
            return Err(self.plain_failure(
                step,
                format!("tenant {tenant}: COUNT(*) disagrees with materialized row count"),
            ));
        }
        let mut uids = Vec::with_capacity(sequential.result.rows.len());
        for row in &sequential.result.rows {
            match row.first() {
                Some(Value::I64(uid)) => uids.push(*uid),
                other => {
                    return Err(self.plain_failure(
                        step,
                        format!("tenant {tenant}: unexpected uid cell {other:?}"),
                    ));
                }
            }
        }
        uids.sort_unstable();
        for pair in uids.windows(2) {
            if pair[0] == pair[1] {
                return Err(self.plain_failure(
                    step,
                    format!("tenant {tenant}: row uid {} appears more than once", pair[0]),
                ));
            }
        }
        let engine_uids: BTreeSet<i64> = uids.into_iter().collect();
        // Phantoms / in-doubt promotion.
        let mut promoted = Vec::new();
        for &uid in &engine_uids {
            let acked = self.oracle.get(&tenant).is_some_and(|m| m.contains_key(&uid));
            if acked {
                continue;
            }
            match self.in_doubt.get(&uid) {
                Some(row) if reconcile && row.tenant_id == TenantId(tenant) => promoted.push(uid),
                _ => {
                    return Err(self.plain_failure(
                        step,
                        format!("tenant {tenant}: engine returned unacknowledged row uid {uid}"),
                    ));
                }
            }
        }
        for uid in promoted {
            let row = self.in_doubt.remove(&uid).expect("promoted uid is in doubt");
            self.oracle.entry(tenant).or_default().insert(uid, row);
            self.report.rows_acked += 1;
            self.trace(step, format!("promoted in-doubt uid {uid} (t{tenant})"));
        }
        // Loss.
        if let Some(acked) = self.oracle.get(&tenant) {
            for uid in acked.keys() {
                if !engine_uids.contains(uid) {
                    return Err(self.plain_failure(
                        step,
                        format!("tenant {tenant}: acknowledged row uid {uid} LOST"),
                    ));
                }
            }
        }
        // Aggregate differentials against the oracle.
        let acked_rows = self.oracle.get(&tenant);
        let expect_count = acked_rows.map_or(0, BTreeMap::len) as u64;
        let expect_failed = acked_rows
            .map_or(0, |rows| rows.values().filter(|r| r.fields[3] == Value::Bool(true)).count())
            as u64;
        let count_sql = format!("SELECT COUNT(*) FROM request_log WHERE tenant_id = {tenant}");
        let failed_sql =
            format!("SELECT COUNT(*) FROM request_log WHERE tenant_id = {tenant} AND fail = true");
        let engine = self.engine.as_ref().expect("episode engine is open");
        for (sql, expected, what) in
            [(count_sql, expect_count, "COUNT(*)"), (failed_sql, expect_failed, "fail=true count")]
        {
            let result = engine
                .query(&sql)
                .map_err(|e| self.plain_failure(step, format!("{what} query failed: {e}")))?;
            let got = match result.rows.first().and_then(|r| r.first()) {
                Some(Value::U64(n)) => *n,
                Some(Value::I64(n)) => *n as u64,
                other => {
                    return Err(self.plain_failure(
                        step,
                        format!("tenant {tenant}: {what} returned {other:?}"),
                    ));
                }
            };
            if got != expected {
                return Err(self.plain_failure(
                    step,
                    format!("tenant {tenant}: {what} = {got}, oracle says {expected}"),
                ));
            }
        }
        Ok(())
    }

    /// `buffered == appended − archived` on every durable shard.
    fn check_counters(&mut self, step: usize) -> Result<(), SimFailure> {
        let engine = self.engine.as_ref().expect("episode engine is open");
        let workers = engine.shared().worker_snapshot();
        for worker in workers {
            for shard in worker.shard_ids() {
                let counters = worker
                    .shard_counters(shard)
                    .map_err(|e| self.plain_failure(step, format!("shard_counters: {e}")))?;
                let Some((appended, archived)) = counters else { continue };
                let buffered = worker
                    .buffered_rows(shard)
                    .map_err(|e| self.plain_failure(step, format!("buffered_rows: {e}")))?
                    as u64;
                let expected = appended.checked_sub(archived).ok_or_else(|| {
                    self.plain_failure(
                        step,
                        format!("{shard}: archived {archived} exceeds appended {appended}"),
                    )
                })?;
                if buffered != expected {
                    return Err(self.plain_failure(
                        step,
                        format!(
                            "{shard}: buffered {buffered} != appended {appended} − archived {archived}"
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn make_record(&mut self, tenant: u64) -> LogRecord {
        self.clock_ms += 1;
        let mut record = self.generator.record(TenantId(tenant), Timestamp(self.clock_ms));
        let uid = self.next_uid;
        self.next_uid += 1;
        // The latency column doubles as the row's identity: unique per
        // episode, so loss and duplication are individually attributable.
        record.fields[2] = Value::I64(uid);
        record
    }

    fn fault_layer(&self) -> &FaultyStore<MemoryStore> {
        self.store.inner().inner()
    }

    fn trace(&mut self, step: usize, line: String) {
        self.report.trace.push(format!("[{step:03}] {line}"));
    }

    fn failure(&self, step: usize, message: String) -> SimFailure {
        self.plain_failure(step, message)
    }

    fn plain_failure(&self, step: usize, message: String) -> SimFailure {
        SimFailure { seed: self.seed, step, message, trace: self.report.trace.clone() }
    }
}

fn uid_of(record: &LogRecord) -> i64 {
    match record.fields[2] {
        Value::I64(uid) => uid,
        ref other => unreachable!("harness records carry I64 uids, found {other:?}"),
    }
}

impl Drop for Episode {
    fn drop(&mut self) {
        // The engine holds WAL file handles; drop it before the sweep.
        self.engine = None;
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}
