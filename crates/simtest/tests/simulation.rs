//! The simulation suites.
//!
//! Reproduce any failure with the seed printed in its message:
//! `SIMTEST_SEED=<seed> cargo test -p logstore-simtest`.

use logstore_core::CrashPoint;
use logstore_simtest::{Episode, SimOp, SimPlan};
use std::collections::BTreeSet;

/// Crash points that live in the compaction/GC protocol: reaching them
/// takes a [`SimOp::Compact`] with a guaranteed-compactable run (two
/// adjacent small LogBlocks of one tenant), not a flush.
fn is_compact_point(point: CrashPoint) -> bool {
    matches!(
        point,
        CrashPoint::CompactPlanned
            | CrashPoint::CompactUploaded
            | CrashPoint::CompactCommitted
            | CrashPoint::BeforeGcDelete
    )
}

/// Ops that leave tenant 1 with two adjacent sub-threshold LogBlocks
/// (30 < 48 rows each), the minimal input the compaction planner accepts.
fn compactable_run_setup() -> Vec<SimOp> {
    vec![
        SimOp::FlushAll,
        SimOp::Ingest { tenant: 1, rows: 30 },
        SimOp::FlushAll,
        SimOp::Ingest { tenant: 1, rows: 30 },
        SimOp::FlushAll,
    ]
}

/// Fixed CI sweep, overridable to a single seed via `SIMTEST_SEED`.
fn sweep_seeds() -> Vec<u64> {
    match std::env::var("SIMTEST_SEED") {
        Ok(s) => {
            vec![s.parse().unwrap_or_else(|_| panic!("SIMTEST_SEED must be a u64, got {s:?}"))]
        }
        Err(_) => vec![1, 2, 3, 7, 11, 23, 42, 20260807],
    }
}

fn run_or_die(plan: &SimPlan) -> logstore_simtest::EpisodeReport {
    Episode::run(plan).unwrap_or_else(|failure| panic!("{failure}"))
}

#[test]
fn seeded_episode_sweep() {
    for seed in sweep_seeds() {
        let report = run_or_die(&SimPlan::from_seed(seed));
        println!(
            "seed {seed}: {} ops, {} crashes {:?}, {} faults, {} rows acked, {} checks, {} blocks",
            report.ops,
            report.crashes,
            report.crash_points,
            report.faults_injected,
            report.rows_acked,
            report.checks,
            report.blocks
        );
        assert!(report.checks > 0, "seed {seed}: no invariant battery ran");
    }
}

/// The acceptance episode: a sustained OSS fault window (p ≥ 0.25) plus
/// crashes at many distinct protocol points, each followed by recovery,
/// with zero acknowledged-row loss and oracle-identical query results.
#[test]
fn acceptance_faults_and_crashes() {
    let mut ops = vec![
        SimOp::Ingest { tenant: 1, rows: 120 },
        SimOp::Ingest { tenant: 2, rows: 120 },
        SimOp::FaultWindow { probability: 0.3 },
        SimOp::FlushAll,
        SimOp::Ingest { tenant: 1, rows: 60 },
        SimOp::FlushIfNeeded,
        SimOp::CheckQueries { tenant: 1 },
        SimOp::ClearFaults,
    ];
    // One crash per protocol point, each preceded by fresh rows so the
    // flush actually drains (and the armed point is reached). Compaction
    // points additionally need a compactable run on disk and a Compact
    // trigger — a flush never visits them.
    for point in CrashPoint::ALL {
        ops.push(SimOp::Ingest { tenant: 1, rows: 70 });
        ops.push(SimOp::Ingest { tenant: 2, rows: 30 });
        if is_compact_point(point) {
            ops.extend(compactable_run_setup());
            ops.push(SimOp::ArmCrash { point, countdown: 0 });
            ops.push(SimOp::Compact);
        } else {
            ops.push(SimOp::ArmCrash { point, countdown: 0 });
            ops.push(if point == CrashPoint::AfterWalAppend {
                SimOp::Ingest { tenant: 1, rows: 40 }
            } else {
                SimOp::FlushAll
            });
        }
        ops.push(SimOp::CheckQueries { tenant: 1 });
    }
    // Faults and crashes together: crash mid-protocol while uploads are
    // also failing with p = 0.25.
    ops.extend([
        SimOp::FaultWindow { probability: 0.25 },
        SimOp::Ingest { tenant: 2, rows: 90 },
        SimOp::ArmCrash { point: CrashPoint::AfterDrain, countdown: 0 },
        SimOp::FlushAll,
        SimOp::Ingest { tenant: 1, rows: 50 },
        SimOp::FlushAll,
        SimOp::ClearFaults,
        SimOp::CheckQueries { tenant: 1 },
        SimOp::CheckQueries { tenant: 2 },
        SimOp::CheckInvariants,
    ]);
    let report = run_or_die(&SimPlan { seed: 0xacce97, ops });
    assert!(report.crashes >= 6, "expected one crash per point, got {:?}", report.crash_points);
    let distinct: BTreeSet<CrashPoint> = report.crash_points.iter().copied().collect();
    assert!(distinct.len() >= 3, "need ≥3 distinct crash points, got {distinct:?}");
    assert!(report.faults_injected >= 1, "the fault window never actually failed an op");
    assert!(report.rows_acked >= 500);
    assert!(report.blocks > 0);
}

/// Focused sweep over every crash point, several seeds each, with the
/// group-commit WAL as the durable path (it is the only durable path).
/// Each episode ingests, arms exactly one point, triggers it (via ingest
/// for the WAL-append point, via flush for the archive-pipeline points),
/// recovers and runs the full differential battery — so a torn or
/// misframed group tail at any protocol point shows up as loss,
/// duplication or a counter mismatch.
#[test]
fn per_crash_point_group_commit_sweep() {
    for point in CrashPoint::ALL {
        for seed in [5u64, 17, 29] {
            let trigger = if point == CrashPoint::AfterWalAppend {
                SimOp::Ingest { tenant: 1, rows: 48 }
            } else if is_compact_point(point) {
                SimOp::Compact
            } else {
                SimOp::FlushAll
            };
            let mut ops =
                vec![SimOp::Ingest { tenant: 1, rows: 96 }, SimOp::Ingest { tenant: 2, rows: 64 }];
            if is_compact_point(point) {
                ops.extend(compactable_run_setup());
            }
            ops.extend([
                SimOp::ArmCrash { point, countdown: 0 },
                trigger,
                SimOp::CheckQueries { tenant: 1 },
                SimOp::CheckQueries { tenant: 2 },
                SimOp::Ingest { tenant: 1, rows: 32 },
                SimOp::FlushAll,
                SimOp::CheckInvariants,
            ]);
            let report = run_or_die(&SimPlan { seed: seed ^ (point as u64) << 8, ops });
            assert_eq!(
                report.crash_points,
                vec![point],
                "seed {seed}: expected exactly one crash at {point:?}"
            );
        }
    }
}

/// The controller-fault episode: network faults on the control plane,
/// a leader killed outright, a leader killed mid-rebalance (armed to fire
/// right after the next rebalance commits), heals in between — while the
/// full exactly-once / differential battery keeps running. The final
/// battery runs against a healed, converged control plane.
#[test]
fn acceptance_controller_faults() {
    let ops = vec![
        SimOp::Ingest { tenant: 1, rows: 120 },
        SimOp::Ingest { tenant: 2, rows: 80 },
        // RPCs under a lossy, duplicating, reordering control network.
        SimOp::NetFault { drop: 0.12, dup: 0.2, reorder: true },
        SimOp::Ingest { tenant: 1, rows: 60 },
        SimOp::ControlTick,
        SimOp::CheckQueries { tenant: 1 },
        SimOp::ClearNetFaults,
        // Kill the leader outright; the next RPCs ride the election.
        SimOp::KillController { during_rebalance: false },
        SimOp::Ingest { tenant: 3, rows: 90 },
        SimOp::FlushAll,
        SimOp::CheckQueries { tenant: 3 },
        SimOp::HealControllers,
        // Kill the next leader mid-rebalance: the kill arms now and fires
        // the moment a tick actually commits a rebalance.
        SimOp::KillController { during_rebalance: true },
        SimOp::Ingest { tenant: 1, rows: 100 },
        SimOp::Ingest { tenant: 2, rows: 40 },
        SimOp::ControlTick,
        SimOp::ControlTick,
        SimOp::CheckQueries { tenant: 1 },
        SimOp::CheckQueries { tenant: 2 },
        SimOp::HealControllers,
        SimOp::FlushAll,
        SimOp::CheckInvariants,
    ];
    let report = run_or_die(&SimPlan { seed: 0xc7_a1f5, ops });
    assert!(report.rows_acked >= 490);
    assert!(report.checks > 0);
    assert!(
        report.trace.iter().any(|l| l.contains("kill-controller killed=Some")),
        "the outright kill must have found a leader: {:#?}",
        report.trace
    );
}

/// Same seed, same trace: the episode is a pure function of its seed.
/// Control ticks are filtered — the balancer's *decisions* are checked by
/// the invariant battery, but its snapshot assembly iterates hash maps and
/// is not byte-stable across runs.
#[test]
fn determinism_same_seed_same_trace() {
    let plan = SimPlan::from_seed(777).without_control_ticks();
    let first = run_or_die(&plan);
    let second = run_or_die(&plan);
    assert_eq!(first, second, "same plan must replay to an identical report");
    assert!(first.trace.len() >= plan.ops.len());
}

/// An injected exactly-once bug must be caught, and the failure must name
/// the seed and the replay command.
#[test]
fn harness_catches_injected_violation() {
    let seed = 424_242;
    let mut episode = Episode::new(seed).unwrap_or_else(|f| panic!("{f}"));
    episode.apply(0, &SimOp::Ingest { tenant: 1, rows: 60 }).unwrap_or_else(|f| panic!("{f}"));
    episode.apply(1, &SimOp::FlushAll).unwrap_or_else(|f| panic!("{f}"));
    episode.inject_duplicate_row(1);
    let failure = episode
        .apply(2, &SimOp::CheckQueries { tenant: 1 })
        .expect_err("the duplicate must be detected");
    assert!(
        failure.message.contains("more than once"),
        "expected a duplication finding, got: {}",
        failure.message
    );
    let rendered = failure.to_string();
    assert!(rendered.contains(&format!("seed {seed}")), "failure must name the seed");
    assert!(
        rendered.contains(&format!("SIMTEST_SEED={seed}")),
        "failure must print the replay command"
    );
}

/// Soak: many seeds, run explicitly via
/// `cargo test -p logstore-simtest -- --ignored` (optionally
/// `SIMTEST_SOAK=<n>` to size the sweep).
#[test]
#[ignore = "soak sweep; run with --ignored (SIMTEST_SOAK=<n> to size)"]
fn soak_seed_sweep() {
    let n: u64 = std::env::var("SIMTEST_SOAK").ok().and_then(|s| s.parse().ok()).unwrap_or(500);
    for seed in 0..n {
        let report = run_or_die(&SimPlan::from_seed(seed));
        if seed % 50 == 0 {
            println!("seed {seed}: {} crashes, {} rows", report.crashes, report.rows_acked);
        }
    }
}
