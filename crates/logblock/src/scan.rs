//! The multi-level data-skipping scan (paper §5.1, Figure 8).
//!
//! Given a conjunction of predicates over one LogBlock, evaluation proceeds
//! in the paper's order:
//!
//! 1. **Column-level SMA** — if any predicate cannot match the column's
//!    min/max, the whole block yields nothing (Fig 8 ②).
//! 2. **Index lookup** — predicates on indexed columns resolve to row-id
//!    sets by inverted/BKD lookup without touching column data (Fig 8 ③).
//! 3. **Block-level SMA** — remaining predicates skip column blocks whose
//!    min/max excludes them (Fig 8 ④, the un-indexed `latency` case).
//! 4. **Scan** — surviving blocks are decompressed and filtered row by row;
//!    the per-predicate row-id sets are intersected (Fig 8's "merging the
//!    rowid set") and the matching rows loaded.
//!
//! `use_skipping = false` disables steps 1–3 (the Figure 15 baseline).

use crate::column::{ColumnData, ColumnVec};
use crate::pack::RangeSource;
use crate::reader::LogBlockReader;
use logstore_index::bkd::u64_to_ord;
use logstore_index::tokenizer::tokenize;
use logstore_index::RowIdSet;
use logstore_types::{CmpOp, ColumnPredicate, DataType, Error, Result, Value};
use std::cmp::Ordering;

/// Counters describing how much work a scan did (drives Figure 15's
/// with/without-skipping comparison and EXPERIMENTS.md reporting).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScanStats {
    /// Scans answered purely from the column-level SMA (block excluded).
    pub pruned_by_column_sma: u64,
    /// Column blocks skipped via block-level SMA.
    pub blocks_pruned: u64,
    /// Column blocks decompressed and scanned.
    pub blocks_scanned: u64,
    /// Index structures loaded and probed.
    pub index_lookups: u64,
    /// Rows matched by the conjunction.
    pub rows_matched: u64,
}

impl ScanStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.pruned_by_column_sma += other.pruned_by_column_sma;
        self.blocks_pruned += other.blocks_pruned;
        self.blocks_scanned += other.blocks_scanned;
        self.index_lookups += other.index_lookups;
        self.rows_matched += other.rows_matched;
    }
}

/// Decode-volume counters for the vectorized scan path. Kept separate from
/// [`ScanStats`] so they can ride on `QueryExecution` as engine deltas
/// without entering the bit-identical `QueryStats` contract.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DecodeStats {
    /// Rows decoded into typed batches.
    pub rows_decoded: u64,
    /// Approximate decoded bytes (typed buffers + null bitsets).
    pub bytes_decoded: u64,
    /// Column-block batches run through vectorized predicate evaluation.
    pub batches_evaluated: u64,
}

impl DecodeStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.rows_decoded += other.rows_decoded;
        self.bytes_decoded += other.bytes_decoded;
        self.batches_evaluated += other.batches_evaluated;
    }

    /// Records one decoded batch.
    pub fn record_batch(&mut self, batch: &ColumnVec) {
        self.rows_decoded += batch.len() as u64;
        self.bytes_decoded += batch.approx_bytes();
        self.batches_evaluated += 1;
    }
}

/// Maps a comparison operator to its accepted [`Ordering`]s, hoisting the
/// per-row operator branch out of batch loops.
fn ord_accepts(op: CmpOp) -> fn(Ordering) -> bool {
    match op {
        CmpOp::Eq => |o| o == Ordering::Equal,
        CmpOp::Ne => |o| o != Ordering::Equal,
        CmpOp::Lt => |o| o == Ordering::Less,
        CmpOp::Le => |o| o != Ordering::Greater,
        CmpOp::Gt => |o| o == Ordering::Greater,
        CmpOp::Ge => |o| o != Ordering::Less,
        CmpOp::Contains => |_| false,
    }
}

/// `Value::total_cmp`'s numeric cross-type rule, replicated for typed loops.
fn cmp_i64_u64(a: i64, b: u64) -> Ordering {
    if a < 0 {
        Ordering::Less
    } else {
        (a as u64).cmp(&b)
    }
}

/// Evaluates `cell op literal` over a decoded batch, inserting the row id
/// `base + i` of every match into `out`. Exactly equivalent to calling
/// [`ColumnPredicate::matches`] on each materialized cell (the row-at-a-time
/// oracle), but with the operator and literal-type dispatch hoisted out of
/// the loop and no per-row `Value` construction.
pub fn eval_batch(batch: &ColumnVec, op: CmpOp, literal: &Value, base: u32, out: &mut RowIdSet) {
    // NULL on either side never matches.
    if literal.is_null() {
        return;
    }
    let n = batch.len();
    let accepts = ord_accepts(op);
    match (batch.data(), literal) {
        (ColumnData::I64(vals), Value::I64(b)) if op != CmpOp::Contains => {
            for (i, v) in vals.iter().enumerate() {
                if !batch.is_null(i) && accepts(v.cmp(b)) {
                    out.insert(base + i as u32);
                }
            }
        }
        (ColumnData::I64(vals), Value::U64(b)) if op != CmpOp::Contains => {
            for (i, v) in vals.iter().enumerate() {
                if !batch.is_null(i) && accepts(cmp_i64_u64(*v, *b)) {
                    out.insert(base + i as u32);
                }
            }
        }
        (ColumnData::U64(vals), Value::U64(b)) if op != CmpOp::Contains => {
            for (i, v) in vals.iter().enumerate() {
                if !batch.is_null(i) && accepts(v.cmp(b)) {
                    out.insert(base + i as u32);
                }
            }
        }
        (ColumnData::U64(vals), Value::I64(b)) if op != CmpOp::Contains => {
            for (i, v) in vals.iter().enumerate() {
                if !batch.is_null(i) && accepts(cmp_i64_u64(*b, *v).reverse()) {
                    out.insert(base + i as u32);
                }
            }
        }
        (ColumnData::Str { .. }, Value::Str(needle)) if op == CmpOp::Contains => {
            // `contains_term` semantics with the needle lowered once.
            let needle_lc = needle.to_ascii_lowercase();
            if needle_lc.is_empty() {
                return;
            }
            for i in 0..n {
                let Some(hay) = batch.str_at(i) else { continue };
                if hay
                    .split(|c: char| !c.is_ascii_alphanumeric())
                    .any(|tok| tok.eq_ignore_ascii_case(&needle_lc))
                {
                    out.insert(base + i as u32);
                }
            }
        }
        (ColumnData::Str { .. }, Value::Str(b)) => {
            // `str` ordering is byte-wise lexicographic, so compare payload
            // slices directly.
            let rhs = b.as_str();
            for i in 0..n {
                let Some(s) = batch.str_at(i) else { continue };
                if accepts(s.cmp(rhs)) {
                    out.insert(base + i as u32);
                }
            }
        }
        (ColumnData::Bool(bits), Value::Bool(b)) if op != CmpOp::Contains => {
            for i in 0..n {
                if !batch.is_null(i) && accepts((bits[i / 8] & (1 << (i % 8)) != 0).cmp(b)) {
                    out.insert(base + i as u32);
                }
            }
        }
        // Every remaining combination is cross-type with distinct
        // `type_rank`s (same-rank pairs are all handled above), so
        // `total_cmp` yields one constant ordering for every non-null cell:
        // all non-null rows match, or none do. CONTAINS on anything but
        // (string, string) never matches.
        (data, _) => {
            if op == CmpOp::Contains {
                return;
            }
            let representative = match data {
                ColumnData::I64(_) => Value::I64(0),
                ColumnData::U64(_) => Value::U64(0),
                ColumnData::Bool(_) => Value::Bool(false),
                ColumnData::Str { .. } => Value::Str(String::new()),
            };
            if accepts(representative.total_cmp(literal)) {
                for i in 0..n {
                    if !batch.is_null(i) {
                        out.insert(base + i as u32);
                    }
                }
            }
        }
    }
}

/// Can this predicate be answered by the column's index?
fn index_capable(kind: logstore_types::IndexKind, dtype: DataType, op: CmpOp) -> bool {
    use logstore_types::IndexKind;
    match (kind, dtype) {
        // Keyword-style columns answer equality (exact terms) and CONTAINS.
        (IndexKind::Inverted, DataType::String) => matches!(op, CmpOp::Eq | CmpOp::Contains),
        // Free-text columns carry tokens only: CONTAINS, never equality.
        (IndexKind::FullText, DataType::String) => op == CmpOp::Contains,
        (IndexKind::Bkd, DataType::Int64 | DataType::UInt64) => {
            matches!(op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
        }
        _ => false,
    }
}

/// Maps a comparison against a numeric literal to an inclusive ord-space
/// range, or `None` when the predicate cannot match any value of the
/// column's type (e.g. `uint64 < 0`).
fn numeric_range(dtype: DataType, op: CmpOp, literal: &Value) -> Result<Option<(i64, i64)>> {
    // Express the literal on the column's ord axis, saturating out-of-domain
    // literals to the domain edge with a flag for which side they fell off.
    let (ord, below, above) = match dtype {
        DataType::Int64 => match literal {
            Value::I64(v) => (*v, false, false),
            Value::U64(v) => match i64::try_from(*v) {
                Ok(v) => (v, false, false),
                Err(_) => (i64::MAX, false, true),
            },
            _ => return Err(Error::invalid("numeric predicate with non-numeric literal")),
        },
        DataType::UInt64 => match literal {
            Value::U64(v) => (u64_to_ord(*v), false, false),
            Value::I64(v) if *v >= 0 => (u64_to_ord(*v as u64), false, false),
            Value::I64(_) => (u64_to_ord(0), true, false),
            _ => return Err(Error::invalid("numeric predicate with non-numeric literal")),
        },
        _ => return Err(Error::invalid("numeric range on non-numeric column")),
    };
    let range = match (op, below, above) {
        // Literal below the domain: x > lit / x >= lit / x != lit are all
        // true, x < lit / x <= lit / x == lit are all false.
        (CmpOp::Gt | CmpOp::Ge, true, _) => Some((i64::MIN, i64::MAX)),
        (_, true, _) => None,
        (CmpOp::Lt | CmpOp::Le, _, true) => Some((i64::MIN, i64::MAX)),
        (_, _, true) => None,
        (CmpOp::Eq, _, _) => Some((ord, ord)),
        (CmpOp::Lt, _, _) => ord.checked_sub(1).map(|hi| (i64::MIN, hi)),
        (CmpOp::Le, _, _) => Some((i64::MIN, ord)),
        (CmpOp::Gt, _, _) => ord.checked_add(1).map(|lo| (lo, i64::MAX)),
        (CmpOp::Ge, _, _) => Some((ord, i64::MAX)),
        (CmpOp::Ne | CmpOp::Contains, _, _) => {
            return Err(Error::Internal("non-range op in numeric_range".into()))
        }
    };
    Ok(range)
}

/// Evaluates a conjunction of predicates over one LogBlock, returning the
/// matching row ids. Row-at-a-time `Value` evaluation — kept as the oracle
/// for [`evaluate_predicates_vec`].
pub fn evaluate_predicates<S: RangeSource>(
    reader: &LogBlockReader<S>,
    predicates: &[ColumnPredicate],
    use_skipping: bool,
    stats: &mut ScanStats,
) -> Result<RowIdSet> {
    evaluate_predicates_impl(reader, predicates, use_skipping, stats, None)
}

/// Vectorized predicate evaluation: identical pruning/index structure to
/// [`evaluate_predicates`], but surviving blocks decode into reusable typed
/// [`ColumnVec`] batches and predicates run via [`eval_batch`] selection
/// bitmaps (which then intersect with the index row-id sets). Decode volume
/// is recorded in `decode`.
pub fn evaluate_predicates_vec<S: RangeSource>(
    reader: &LogBlockReader<S>,
    predicates: &[ColumnPredicate],
    use_skipping: bool,
    stats: &mut ScanStats,
    decode: &mut DecodeStats,
) -> Result<RowIdSet> {
    evaluate_predicates_impl(reader, predicates, use_skipping, stats, Some(decode))
}

fn evaluate_predicates_impl<S: RangeSource>(
    reader: &LogBlockReader<S>,
    predicates: &[ColumnPredicate],
    use_skipping: bool,
    stats: &mut ScanStats,
    mut decode: Option<&mut DecodeStats>,
) -> Result<RowIdSet> {
    let n = reader.row_count();
    let mut result = RowIdSet::full(n);
    if predicates.is_empty() {
        stats.rows_matched += u64::from(n);
        return Ok(result);
    }

    // Resolve columns up front so unknown columns fail loudly.
    let mut resolved = Vec::with_capacity(predicates.len());
    for p in predicates {
        let col = reader
            .schema()
            .column_index(&p.column)
            .ok_or_else(|| Error::invalid(format!("unknown column '{}'", p.column)))?;
        resolved.push((col, p));
    }

    if use_skipping {
        // Step 1: column-level SMA pruning (Fig 8 ②).
        for (col, p) in &resolved {
            if !reader.meta().columns[*col].sma.may_match(p.op, &p.value) {
                stats.pruned_by_column_sma += 1;
                return Ok(RowIdSet::empty(n));
            }
        }
    }

    // Steps 2–4 per predicate, cheapest evidence first: block SMAs can
    // prove blocks entirely in (`always_matches`) or out (`may_match`,
    // Fig 8 ④) without touching data; only blocks the SMA cannot decide
    // need the column index (Fig 8 ③) or a scan (Fig 8 ⑤).
    // One scratch batch shared across predicates: consecutive predicates on
    // same-typed columns reuse its buffers.
    let mut scratch = ColumnVec::default();
    for (col, p) in &resolved {
        let dtype = reader.schema().columns[*col].data_type;
        let blocks = reader.meta().columns[*col].blocks.clone();

        #[derive(PartialEq)]
        enum Verdict {
            NoMatch,
            AllMatch,
            Undecided,
        }
        let verdicts: Vec<Verdict> = if use_skipping {
            blocks
                .iter()
                .map(|bm| {
                    if !bm.sma.may_match(p.op, &p.value) {
                        Verdict::NoMatch
                    } else if bm.sma.always_matches(p.op, &p.value) {
                        Verdict::AllMatch
                    } else {
                        Verdict::Undecided
                    }
                })
                .collect()
        } else {
            blocks.iter().map(|_| Verdict::Undecided).collect()
        };
        let undecided = verdicts.iter().filter(|v| **v == Verdict::Undecided).count();

        // Use the column index only when it is capable for this operator
        // and the SMA left a substantial share of blocks undecided — for a
        // couple of boundary blocks (the typical `ts` range case), scanning
        // them beats fetching the whole-column index from OSS.
        let kind = reader.meta().columns[*col].index;
        // String equality on long literals cannot use the inverted index:
        // values beyond MAX_EXACT_LEN carry no exact term (see
        // `logstore_index::inverted::MAX_EXACT_LEN`).
        let exact_indexable = !(dtype == DataType::String
            && p.op == CmpOp::Eq
            && p.value.as_str().is_some_and(|s| s.len() > logstore_index::inverted::MAX_EXACT_LEN));
        let use_index = use_skipping
            && index_capable(kind, dtype, p.op)
            && exact_indexable
            && undecided * 4 > blocks.len().max(1);
        if use_index {
            stats.index_lookups += 1;
            let ids = match dtype {
                DataType::String => match p.op {
                    CmpOp::Eq => {
                        let Some(s) = p.value.as_str() else {
                            return Err(Error::invalid("string equality with non-string literal"));
                        };
                        reader.index_lookup_exact(*col, s)?
                    }
                    CmpOp::Contains => {
                        let Some(needle) = p.value.as_str() else {
                            return Err(Error::invalid("CONTAINS with non-string literal"));
                        };
                        let tokens: Vec<String> = tokenize(needle).collect();
                        // CONTAINS matches a single whole term (see
                        // `contains_term`); multi-token or empty needles
                        // match nothing, same as the scan path.
                        match tokens.as_slice() {
                            [tok] if *tok == needle.to_ascii_lowercase() => {
                                reader.index_lookup_token(*col, tok)?
                            }
                            _ => Vec::new(),
                        }
                    }
                    _ => unreachable!("index_capable gated"),
                },
                DataType::Int64 | DataType::UInt64 => match numeric_range(dtype, p.op, &p.value)? {
                    Some((lo, hi)) => reader.index_query_range(*col, lo, hi)?,
                    None => Vec::new(),
                },
                DataType::Bool => unreachable!("index_capable gated"),
            };
            result.intersect_with(&RowIdSet::from_iter(n, ids));
        } else {
            let mut matched = RowIdSet::empty(n);
            for ((bi, bm), verdict) in blocks.iter().enumerate().zip(&verdicts) {
                let block_end = bm.row_start + bm.row_count;
                match verdict {
                    Verdict::NoMatch => {
                        stats.blocks_pruned += 1;
                    }
                    Verdict::AllMatch => {
                        matched.insert_range(bm.row_start, block_end);
                    }
                    Verdict::Undecided => {
                        // If everything in this block is already excluded by
                        // earlier predicates, decoding it cannot add matches.
                        if use_skipping && !result.any_in_range(bm.row_start, block_end) {
                            stats.blocks_pruned += 1;
                            continue;
                        }
                        stats.blocks_scanned += 1;
                        match decode.as_deref_mut() {
                            Some(d) => {
                                reader.read_block_vec(*col, bi, &mut scratch)?;
                                d.record_batch(&scratch);
                                eval_batch(&scratch, p.op, &p.value, bm.row_start, &mut matched);
                            }
                            None => {
                                let values = reader.read_block_values(*col, bi)?;
                                for (off, v) in values.iter().enumerate() {
                                    if p.matches(v) {
                                        matched.insert(bm.row_start + off as u32);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            result.intersect_with(&matched);
        }
        if result.is_empty() {
            return Ok(result);
        }
    }

    stats.rows_matched += u64::from(result.count());
    Ok(result)
}

/// Materializes the rows of `ids` with the named projection columns.
pub fn fetch_rows<S: RangeSource>(
    reader: &LogBlockReader<S>,
    ids: &RowIdSet,
    projection: &[String],
) -> Result<Vec<Vec<Value>>> {
    let cols: Vec<usize> = projection
        .iter()
        .map(|name| {
            reader
                .schema()
                .column_index(name)
                .ok_or_else(|| Error::invalid(format!("unknown column '{name}'")))
        })
        .collect::<Result<_>>()?;
    reader.read_rows(&ids.to_vec(), &cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LogBlockBuilder;
    use logstore_codec::Compression;
    use logstore_types::TableSchema;

    /// 200 rows: ts 1000..1200, ip cycles 0..5, latency = i % 500,
    /// fail = (i % 10 == 0), log mentions "error" on failures.
    fn block() -> LogBlockReader<Vec<u8>> {
        let mut b =
            LogBlockBuilder::with_options(TableSchema::request_log(), Compression::LzHigh, 32);
        for i in 0..200u32 {
            let fail = i % 10 == 0;
            b.add_row(&[
                Value::U64(u64::from(i % 3)),
                Value::I64(1000 + i64::from(i)),
                Value::from(format!("192.168.0.{}", i % 5)),
                Value::from("/api/query"),
                Value::I64(i64::from(i) % 500),
                Value::Bool(fail),
                Value::from(if fail {
                    format!("req {i} error timeout")
                } else {
                    format!("req {i} ok")
                }),
            ])
            .unwrap();
        }
        LogBlockReader::open(b.finish().unwrap()).unwrap()
    }

    fn eval(preds: &[ColumnPredicate], skipping: bool) -> (Vec<u32>, ScanStats) {
        let r = block();
        let mut stats = ScanStats::default();
        let ids = evaluate_predicates(&r, preds, skipping, &mut stats).unwrap();
        // The vectorized path must agree bit-for-bit with the row path,
        // including ScanStats (decode counters are separate by design).
        let mut vstats = ScanStats::default();
        let mut decode = DecodeStats::default();
        let vids = evaluate_predicates_vec(&r, preds, skipping, &mut vstats, &mut decode).unwrap();
        assert_eq!(vids.to_vec(), ids.to_vec(), "vectorized ids diverge for {preds:?}");
        assert_eq!(vstats, stats, "vectorized ScanStats diverge for {preds:?}");
        assert_eq!(decode.batches_evaluated, stats.blocks_scanned);
        (ids.to_vec(), stats)
    }

    fn naive(preds: &[ColumnPredicate]) -> Vec<u32> {
        let r = block();
        let schema = r.schema().clone();
        let mut out = Vec::new();
        for id in 0..r.row_count() {
            let rows = r.read_rows(&[id], &(0..schema.width()).collect::<Vec<_>>()).unwrap();
            let row = &rows[0];
            if preds.iter().all(|p| {
                let c = schema.column_index(&p.column).unwrap();
                p.matches(&row[c])
            }) {
                out.push(id);
            }
        }
        out
    }

    #[test]
    fn empty_conjunction_matches_all() {
        let (ids, _) = eval(&[], true);
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn paper_example_query_matches_naive() {
        // The Fig 8 walk-through: ts range + ip equality + latency >= + fail =.
        let preds = vec![
            ColumnPredicate::new("ts", CmpOp::Ge, 1050i64),
            ColumnPredicate::new("ts", CmpOp::Le, 1150i64),
            ColumnPredicate::new("ip", CmpOp::Eq, "192.168.0.1"),
            ColumnPredicate::new("latency", CmpOp::Ge, 100i64),
            ColumnPredicate::new("fail", CmpOp::Eq, false),
        ];
        let expect = naive(&preds);
        assert!(!expect.is_empty());
        let (with, s_with) = eval(&preds, true);
        let (without, s_without) = eval(&preds, false);
        assert_eq!(with, expect);
        assert_eq!(without, expect);
        assert!(s_with.index_lookups > 0);
        assert!(
            s_with.blocks_scanned < s_without.blocks_scanned,
            "skipping must scan fewer blocks: {} vs {}",
            s_with.blocks_scanned,
            s_without.blocks_scanned
        );
    }

    #[test]
    fn column_sma_prunes_whole_block() {
        let preds = vec![ColumnPredicate::new("ts", CmpOp::Gt, 99_999i64)];
        let (ids, stats) = eval(&preds, true);
        assert!(ids.is_empty());
        assert_eq!(stats.pruned_by_column_sma, 1);
        assert_eq!(stats.blocks_scanned, 0);
        assert_eq!(stats.index_lookups, 0);
    }

    #[test]
    fn contains_uses_inverted_index() {
        let preds = vec![ColumnPredicate::new("log", CmpOp::Contains, "error")];
        let (ids, stats) = eval(&preds, true);
        assert_eq!(ids, (0..200).filter(|i| i % 10 == 0).collect::<Vec<u32>>());
        assert_eq!(stats.index_lookups, 1);
        assert_eq!(stats.blocks_scanned, 0);
        assert_eq!(ids, naive(&preds));
    }

    #[test]
    fn multi_token_contains_matches_scan_semantics() {
        let preds = vec![ColumnPredicate::new("log", CmpOp::Contains, "error timeout")];
        assert_eq!(naive(&preds), Vec::<u32>::new());
        let (ids, _) = eval(&preds, true);
        assert!(ids.is_empty());
    }

    #[test]
    fn ne_falls_back_to_scan() {
        let preds = vec![ColumnPredicate::new("ip", CmpOp::Ne, "192.168.0.1")];
        let (ids, stats) = eval(&preds, true);
        assert_eq!(ids, naive(&preds));
        assert_eq!(stats.index_lookups, 0);
        assert!(stats.blocks_scanned > 0);
    }

    #[test]
    fn unindexed_latency_prunes_by_block_sma() {
        // latency = i % 500 over 200 rows, blocks of 32 — every block spans
        // a distinct latency range, so latency >= 190 prunes early blocks.
        let preds = vec![ColumnPredicate::new("latency", CmpOp::Ge, 190i64)];
        let (ids, stats) = eval(&preds, true);
        assert_eq!(ids, naive(&preds));
        assert!(stats.blocks_pruned > 0, "expected block-level pruning");
    }

    #[test]
    fn uint64_tenant_predicates() {
        let preds = vec![ColumnPredicate::new("tenant_id", CmpOp::Eq, 1u64)];
        let (ids, _) = eval(&preds, true);
        assert_eq!(ids, naive(&preds));
        // Negative literal on unsigned column: Ge matches everything,
        // Eq matches nothing.
        let ge = vec![ColumnPredicate::new("tenant_id", CmpOp::Ge, -5i64)];
        let (ids, _) = eval(&ge, true);
        assert_eq!(ids.len(), 200);
        let eq = vec![ColumnPredicate::new("tenant_id", CmpOp::Eq, -5i64)];
        let (ids, _) = eval(&eq, true);
        assert!(ids.is_empty());
    }

    #[test]
    fn unknown_column_is_error() {
        let r = block();
        let mut stats = ScanStats::default();
        let preds = vec![ColumnPredicate::new("nope", CmpOp::Eq, 1i64)];
        assert!(evaluate_predicates(&r, &preds, true, &mut stats).is_err());
    }

    #[test]
    fn fetch_rows_projection() {
        let r = block();
        let mut stats = ScanStats::default();
        let preds = vec![ColumnPredicate::new("ts", CmpOp::Eq, 1005i64)];
        let ids = evaluate_predicates(&r, &preds, true, &mut stats).unwrap();
        let rows = fetch_rows(&r, &ids, &["log".to_string(), "latency".to_string()]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("req 5 ok"));
        assert_eq!(rows[0][1], Value::I64(5));
    }

    #[test]
    fn skipping_and_naive_agree_on_many_shapes() {
        let cases: Vec<Vec<ColumnPredicate>> = vec![
            vec![ColumnPredicate::new("fail", CmpOp::Eq, true)],
            vec![ColumnPredicate::new("latency", CmpOp::Lt, 10i64)],
            vec![
                ColumnPredicate::new("ts", CmpOp::Gt, 1100i64),
                ColumnPredicate::new("fail", CmpOp::Eq, true),
            ],
            vec![ColumnPredicate::new("api", CmpOp::Eq, "/api/query")],
            vec![ColumnPredicate::new("api", CmpOp::Eq, "/api/other")],
            vec![
                ColumnPredicate::new("log", CmpOp::Contains, "ok"),
                ColumnPredicate::new("tenant_id", CmpOp::Ne, 0u64),
            ],
        ];
        for preds in cases {
            let expect = naive(&preds);
            let (with, _) = eval(&preds, true);
            let (without, _) = eval(&preds, false);
            assert_eq!(with, expect, "skipping mismatch for {preds:?}");
            assert_eq!(without, expect, "baseline mismatch for {preds:?}");
        }
    }
}
