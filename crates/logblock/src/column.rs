//! Column block encoding (Fig 4 ⑤: bitset + compressed data).
//!
//! Each column block stores a null bitset followed by the type-specific
//! value encoding, both in compression frames:
//!
//! ```text
//! varint bitset_frame_len | bitset frame (RLE) | data frame (column codec)
//! ```
//!
//! Null slots keep a placeholder in the value encoding (0 / empty string)
//! so row ids stay positional; the bitset is authoritative for NULL-ness.

use logstore_codec::varint::{put_uvarint, read_uvarint};
use logstore_codec::{compress, decompress, delta, Compression};
use logstore_types::{DataType, Error, Result, Value};

/// Hard cap for a decoded data frame (decompression-bomb guard).
const MAX_DATA_BYTES: usize = 1 << 30;

/// Encodes one column block.
pub fn encode_block(
    dtype: DataType,
    values: &[Value],
    compression: Compression,
) -> Result<Vec<u8>> {
    let n = values.len();
    let mut bitset = vec![0u8; n.div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            bitset[i / 8] |= 1 << (i % 8);
        }
    }
    let data = match dtype {
        DataType::Int64 => {
            let nums: Vec<i64> = values
                .iter()
                .map(|v| match v {
                    Value::Null => Ok(0),
                    other => other
                        .as_i64()
                        .ok_or_else(|| Error::invalid("non-int64 value in int64 column")),
                })
                .collect::<Result<_>>()?;
            delta::encode_i64(&nums)
        }
        DataType::UInt64 => {
            let nums: Vec<u64> = values
                .iter()
                .map(|v| match v {
                    Value::Null => Ok(0),
                    other => other
                        .as_u64()
                        .ok_or_else(|| Error::invalid("non-uint64 value in uint64 column")),
                })
                .collect::<Result<_>>()?;
            delta::encode_u64(&nums)
        }
        DataType::Bool => {
            let mut bits = vec![0u8; n.div_ceil(8)];
            for (i, v) in values.iter().enumerate() {
                match v {
                    Value::Bool(true) => bits[i / 8] |= 1 << (i % 8),
                    Value::Bool(false) | Value::Null => {}
                    _ => return Err(Error::invalid("non-bool value in bool column")),
                }
            }
            bits
        }
        DataType::String => {
            let mut buf = Vec::new();
            for v in values {
                match v {
                    Value::Null => put_uvarint(&mut buf, 0),
                    Value::Str(s) => {
                        put_uvarint(&mut buf, s.len() as u64);
                        buf.extend_from_slice(s.as_bytes());
                    }
                    _ => return Err(Error::invalid("non-string value in string column")),
                }
            }
            buf
        }
    };

    let bitset_frame = compress(Compression::Rle, &bitset);
    let data_frame = compress(compression, &data);
    let mut out = Vec::with_capacity(bitset_frame.len() + data_frame.len() + 4);
    put_uvarint(&mut out, bitset_frame.len() as u64);
    out.extend_from_slice(&bitset_frame);
    out.extend_from_slice(&data_frame);
    Ok(out)
}

/// Decodes one column block into positional values.
pub fn decode_block(dtype: DataType, bytes: &[u8], row_count: u32) -> Result<Vec<Value>> {
    let n = row_count as usize;
    let mut pos = 0;
    let bitset_len = read_uvarint(bytes, &mut pos)? as usize;
    let bitset_frame = bytes
        .get(pos..pos + bitset_len)
        .ok_or_else(|| Error::corruption("bitset frame truncated"))?;
    let data_frame = &bytes[pos + bitset_len..];
    let bitset = decompress(bitset_frame, n.div_ceil(8))?;
    if bitset.len() != n.div_ceil(8) {
        return Err(Error::corruption("bitset length mismatch"));
    }
    let is_null = |i: usize| bitset[i / 8] & (1 << (i % 8)) != 0;
    let data = decompress(data_frame, MAX_DATA_BYTES)?;

    let mut out = Vec::with_capacity(n);
    match dtype {
        DataType::Int64 => {
            let nums = delta::decode_i64(&data, n)?;
            if nums.len() != n {
                return Err(Error::corruption("int64 block row count mismatch"));
            }
            for (i, v) in nums.into_iter().enumerate() {
                out.push(if is_null(i) { Value::Null } else { Value::I64(v) });
            }
        }
        DataType::UInt64 => {
            let nums = delta::decode_u64(&data, n)?;
            if nums.len() != n {
                return Err(Error::corruption("uint64 block row count mismatch"));
            }
            for (i, v) in nums.into_iter().enumerate() {
                out.push(if is_null(i) { Value::Null } else { Value::U64(v) });
            }
        }
        DataType::Bool => {
            if data.len() != n.div_ceil(8) {
                return Err(Error::corruption("bool block length mismatch"));
            }
            for i in 0..n {
                out.push(if is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i / 8] & (1 << (i % 8)) != 0)
                });
            }
        }
        DataType::String => {
            let mut dpos = 0;
            for i in 0..n {
                let len = read_uvarint(&data, &mut dpos)? as usize;
                let end = dpos
                    .checked_add(len)
                    .ok_or_else(|| Error::corruption("string length overflow"))?;
                let s = data
                    .get(dpos..end)
                    .ok_or_else(|| Error::corruption("string block truncated"))?;
                dpos = end;
                if is_null(i) {
                    out.push(Value::Null);
                } else {
                    let s = std::str::from_utf8(s)
                        .map_err(|_| Error::corruption("invalid utf-8 in string block"))?;
                    out.push(Value::Str(s.to_string()));
                }
            }
            if dpos != data.len() {
                return Err(Error::corruption("trailing bytes in string block"));
            }
        }
    }
    Ok(out)
}

/// A decoded column block in typed, batch-oriented layout.
///
/// Unlike [`decode_block`], which materializes one boxed [`Value`] per row,
/// a `ColumnVec` keeps the whole block in flat typed buffers (`Vec<i64>`,
/// bit-packed bools, a byte arena plus offsets for strings) so predicate
/// evaluation and aggregation can run over the batch without per-row
/// allocation. Buffers are reused across blocks via [`decode_block_into`].
#[derive(Debug, Default)]
pub struct ColumnVec {
    len: usize,
    /// Null bitset, same layout as the on-disk bitset: bit `i` set ⇒ NULL.
    nulls: Vec<u8>,
    data: ColumnData,
}

/// Typed payload of a [`ColumnVec`].
#[derive(Debug)]
pub enum ColumnData {
    /// `Int64` values (placeholder 0 in NULL slots).
    I64(Vec<i64>),
    /// `UInt64` values (placeholder 0 in NULL slots).
    U64(Vec<u64>),
    /// Bit-packed booleans, bit `i` = row `i`.
    Bool(Vec<u8>),
    /// String payload arena plus per-row `(start, end)` byte ranges.
    Str {
        /// The decompressed data frame (varint lengths interleaved with
        /// payload bytes; `ranges` point past the varints).
        data: Vec<u8>,
        /// Byte range of each row's payload within `data`.
        ranges: Vec<(u32, u32)>,
    },
}

impl Default for ColumnData {
    fn default() -> Self {
        ColumnData::I64(Vec::new())
    }
}

impl ColumnVec {
    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The typed payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls[i / 8] & (1 << (i % 8)) != 0
    }

    /// Materializes one cell (test oracle and row-loading fallback).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(vs) => Value::I64(vs[i]),
            ColumnData::U64(vs) => Value::U64(vs[i]),
            ColumnData::Bool(bits) => Value::Bool(bits[i / 8] & (1 << (i % 8)) != 0),
            ColumnData::Str { data, ranges } => {
                let (start, end) = ranges[i];
                match std::str::from_utf8(&data[start as usize..end as usize]) {
                    Ok(s) => Value::Str(s.to_string()),
                    // Decode validated every non-null slice; unreachable in
                    // practice, but stay total rather than panic.
                    Err(_) => Value::Null,
                }
            }
        }
    }

    /// The non-null string payload of row `i`, if this is a string batch.
    /// Slices were UTF-8-validated at decode time.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match &self.data {
            ColumnData::Str { data, ranges } if !self.is_null(i) => {
                let (start, end) = ranges[i];
                std::str::from_utf8(&data[start as usize..end as usize]).ok()
            }
            _ => None,
        }
    }

    /// Approximate decoded footprint in bytes (drives `bytes_decoded`).
    pub fn approx_bytes(&self) -> u64 {
        let payload = match &self.data {
            ColumnData::I64(vs) => vs.len() * 8,
            ColumnData::U64(vs) => vs.len() * 8,
            ColumnData::Bool(bits) => bits.len(),
            ColumnData::Str { data, ranges } => data.len() + ranges.len() * 8,
        };
        (payload + self.nulls.len()) as u64
    }
}

/// Decodes one column block into `out`, reusing its buffers when the typed
/// variant already matches. The vectorized counterpart of [`decode_block`]
/// (which remains the row-at-a-time oracle).
pub fn decode_block_into(
    dtype: DataType,
    bytes: &[u8],
    row_count: u32,
    out: &mut ColumnVec,
) -> Result<()> {
    let n = row_count as usize;
    let mut pos = 0;
    let bitset_len = read_uvarint(bytes, &mut pos)? as usize;
    let bitset_frame = bytes
        .get(pos..pos + bitset_len)
        .ok_or_else(|| Error::corruption("bitset frame truncated"))?;
    let data_frame = &bytes[pos + bitset_len..];
    let bitset = decompress(bitset_frame, n.div_ceil(8))?;
    if bitset.len() != n.div_ceil(8) {
        return Err(Error::corruption("bitset length mismatch"));
    }
    let data = decompress(data_frame, MAX_DATA_BYTES)?;

    // A failed decode must not leave a half-written batch readable.
    out.len = 0;
    match dtype {
        DataType::Int64 => {
            let vals = match &mut out.data {
                ColumnData::I64(vals) => vals,
                _ => {
                    out.data = ColumnData::I64(Vec::new());
                    match &mut out.data {
                        ColumnData::I64(vals) => vals,
                        _ => unreachable!("just assigned"),
                    }
                }
            };
            delta::decode_i64_into(&data, n, vals)?;
            if vals.len() != n {
                return Err(Error::corruption("int64 block row count mismatch"));
            }
        }
        DataType::UInt64 => {
            let vals = match &mut out.data {
                ColumnData::U64(vals) => vals,
                _ => {
                    out.data = ColumnData::U64(Vec::new());
                    match &mut out.data {
                        ColumnData::U64(vals) => vals,
                        _ => unreachable!("just assigned"),
                    }
                }
            };
            delta::decode_u64_into(&data, n, vals)?;
            if vals.len() != n {
                return Err(Error::corruption("uint64 block row count mismatch"));
            }
        }
        DataType::Bool => {
            if data.len() != n.div_ceil(8) {
                return Err(Error::corruption("bool block length mismatch"));
            }
            out.data = ColumnData::Bool(data);
        }
        DataType::String => {
            let mut ranges = match std::mem::take(&mut out.data) {
                ColumnData::Str { mut ranges, .. } => {
                    ranges.clear();
                    ranges
                }
                _ => Vec::new(),
            };
            ranges.reserve(n);
            let mut dpos = 0;
            for i in 0..n {
                let len = read_uvarint(&data, &mut dpos)? as usize;
                let end = dpos
                    .checked_add(len)
                    .ok_or_else(|| Error::corruption("string length overflow"))?;
                let s = data
                    .get(dpos..end)
                    .ok_or_else(|| Error::corruption("string block truncated"))?;
                let is_null = bitset[i / 8] & (1 << (i % 8)) != 0;
                if !is_null {
                    std::str::from_utf8(s)
                        .map_err(|_| Error::corruption("invalid utf-8 in string block"))?;
                }
                ranges.push((dpos as u32, end as u32));
                dpos = end;
            }
            if dpos != data.len() {
                return Err(Error::corruption("trailing bytes in string block"));
            }
            out.data = ColumnData::Str { data, ranges };
        }
    }
    out.len = n;
    out.nulls = bitset;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(dtype: DataType, values: Vec<Value>) {
        // One ColumnVec across codecs/types exercises buffer reuse.
        let mut batch = ColumnVec::default();
        for c in Compression::all() {
            let enc = encode_block(dtype, &values, c).unwrap();
            let dec = decode_block(dtype, &enc, values.len() as u32).unwrap();
            assert_eq!(dec, values, "codec {c}");
            decode_block_into(dtype, &enc, values.len() as u32, &mut batch).unwrap();
            assert_eq!(batch.len(), values.len(), "codec {c}");
            let cells: Vec<Value> = (0..batch.len()).map(|i| batch.value(i)).collect();
            assert_eq!(cells, values, "vectorized decode mismatch, codec {c}");
        }
    }

    #[test]
    fn int64_with_nulls() {
        roundtrip(
            DataType::Int64,
            vec![Value::I64(5), Value::Null, Value::I64(-10), Value::I64(i64::MAX)],
        );
    }

    #[test]
    fn uint64_with_nulls() {
        roundtrip(DataType::UInt64, vec![Value::U64(u64::MAX), Value::Null, Value::U64(0)]);
    }

    #[test]
    fn bool_with_nulls() {
        roundtrip(
            DataType::Bool,
            vec![Value::Bool(true), Value::Null, Value::Bool(false), Value::Bool(true)],
        );
    }

    #[test]
    fn strings_with_nulls_and_empties() {
        roundtrip(
            DataType::String,
            vec![Value::from("hello"), Value::Null, Value::from(""), Value::from("wörld ünïcode")],
        );
    }

    #[test]
    fn empty_block() {
        roundtrip(DataType::Int64, vec![]);
        roundtrip(DataType::String, vec![]);
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(encode_block(DataType::Int64, &[Value::from("x")], Compression::None).is_err());
        assert!(encode_block(DataType::Bool, &[Value::I64(1)], Compression::None).is_err());
        assert!(encode_block(DataType::String, &[Value::Bool(true)], Compression::None).is_err());
    }

    #[test]
    fn wrong_row_count_rejected() {
        let values = vec![Value::I64(1), Value::I64(2)];
        let enc = encode_block(DataType::Int64, &values, Compression::None).unwrap();
        assert!(decode_block(DataType::Int64, &enc, 3).is_err());
    }

    #[test]
    fn corrupted_block_rejected() {
        let values = vec![Value::from("abc"); 50];
        let enc = encode_block(DataType::String, &values, Compression::LzHigh).unwrap();
        assert!(decode_block(DataType::String, &enc[..enc.len() / 2], 50).is_err());
        assert!(decode_block(DataType::String, &[], 50).is_err());
    }

    fn arb_typed(dtype: DataType) -> impl Strategy<Value = Value> {
        match dtype {
            DataType::Int64 => prop_oneof![
                3 => any::<i64>().prop_map(Value::I64),
                1 => Just(Value::Null)
            ]
            .boxed(),
            DataType::UInt64 => prop_oneof![
                3 => any::<u64>().prop_map(Value::U64),
                1 => Just(Value::Null)
            ]
            .boxed(),
            DataType::Bool => prop_oneof![
                3 => any::<bool>().prop_map(Value::Bool),
                1 => Just(Value::Null)
            ]
            .boxed(),
            DataType::String => prop_oneof![
                3 => "[a-z0-9 /=.]{0,24}".prop_map(Value::Str),
                1 => Just(Value::Null)
            ]
            .boxed(),
        }
    }

    fn arb_typed_block() -> impl Strategy<Value = (DataType, Vec<Value>)> {
        (0usize..4).prop_flat_map(|dt_idx| {
            let dtype =
                [DataType::Int64, DataType::UInt64, DataType::Bool, DataType::String][dt_idx];
            proptest::collection::vec(arb_typed(dtype), 0..200)
                .prop_map(move |values| (dtype, values))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_all_types_roundtrip(case in arb_typed_block()) {
            let (dtype, values) = case;
            roundtrip(dtype, values);
        }
    }
}
