//! Building LogBlocks from rows.
//!
//! The data builder on each worker drains the row store and feeds rows (all
//! belonging to one tenant, in timestamp order) into a [`LogBlockBuilder`],
//! which cuts column blocks every `block_rows` rows, maintains SMAs at both
//! granularities, builds the per-column indexes and finally emits one packed
//! object ready for upload.

use crate::column::encode_block;
use crate::meta::{
    col_member, index_data_member, index_member, BlockMeta, ColumnMeta, LogBlockMeta, META_MEMBER,
};
use crate::pack::PackWriter;
use logstore_codec::Compression;
use logstore_index::bkd::u64_to_ord;
use logstore_index::{BkdWriter, InvertedIndexWriter, Sma};
use logstore_types::{DataType, Error, IndexKind, Result, TableSchema, Value};

/// Default rows per column block.
pub const DEFAULT_BLOCK_ROWS: usize = 4096;

enum IndexState {
    None,
    Inverted(InvertedIndexWriter),
    /// Tokens only — no whole-value exact terms (free-text columns).
    FullText(InvertedIndexWriter),
    Bkd(BkdWriter),
}

struct ColumnState {
    pending: Vec<Value>,
    data: Vec<u8>,
    blocks: Vec<BlockMeta>,
    sma: Sma,
    index: IndexState,
}

/// Accumulates rows and serializes a LogBlock pack.
pub struct LogBlockBuilder {
    schema: TableSchema,
    compression: Compression,
    block_rows: usize,
    columns: Vec<ColumnState>,
    row_count: u32,
}

impl LogBlockBuilder {
    /// Creates a builder with the default compression and block size.
    pub fn new(schema: TableSchema) -> Self {
        Self::with_options(schema, Compression::default(), DEFAULT_BLOCK_ROWS)
    }

    /// Creates a builder with explicit compression and rows-per-block.
    pub fn with_options(schema: TableSchema, compression: Compression, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block_rows must be positive");
        let columns = schema
            .columns
            .iter()
            .map(|c| ColumnState {
                pending: Vec::with_capacity(block_rows.min(4096)),
                data: Vec::new(),
                blocks: Vec::new(),
                sma: Sma::new(),
                index: match c.index {
                    IndexKind::None => IndexState::None,
                    IndexKind::Inverted => IndexState::Inverted(InvertedIndexWriter::new()),
                    IndexKind::FullText => IndexState::FullText(InvertedIndexWriter::new()),
                    IndexKind::Bkd => IndexState::Bkd(BkdWriter::new()),
                },
            })
            .collect();
        LogBlockBuilder { schema, compression, block_rows, columns, row_count: 0 }
    }

    /// The schema being built against.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Rows added so far.
    pub fn row_count(&self) -> u32 {
        self.row_count
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Appends one row (positional, matching the schema).
    pub fn add_row(&mut self, row: &[Value]) -> Result<()> {
        self.schema.check_row(row)?;
        if self.row_count == u32::MAX {
            return Err(Error::invalid("logblock row limit reached"));
        }
        let row_id = self.row_count;
        for (state, (value, col)) in
            self.columns.iter_mut().zip(row.iter().zip(&self.schema.columns))
        {
            match &mut state.index {
                IndexState::None => {}
                IndexState::Inverted(w) => {
                    if let Value::Str(s) = value {
                        w.add(row_id, s);
                    }
                }
                IndexState::FullText(w) => {
                    if let Value::Str(s) = value {
                        w.add_text(row_id, s);
                    }
                }
                IndexState::Bkd(w) => {
                    if !value.is_null() {
                        let ord = match col.data_type {
                            DataType::Int64 => value
                                .as_i64()
                                .ok_or_else(|| Error::invalid("int64 column with non-int value"))?,
                            DataType::UInt64 => u64_to_ord(value.as_u64().ok_or_else(|| {
                                Error::invalid("uint64 column with non-uint value")
                            })?),
                            _ => return Err(Error::invalid("bkd index on non-numeric column")),
                        };
                        w.add(ord, row_id);
                    }
                }
            }
            state.pending.push(value.clone());
        }
        self.row_count += 1;
        if self.columns[0].pending.len() >= self.block_rows {
            self.cut_blocks()?;
        }
        Ok(())
    }

    fn cut_blocks(&mut self) -> Result<()> {
        let n = self.columns[0].pending.len();
        if n == 0 {
            return Ok(());
        }
        let row_start = self.row_count - n as u32;
        for (state, col) in self.columns.iter_mut().zip(&self.schema.columns) {
            debug_assert_eq!(state.pending.len(), n, "columns out of step");
            let mut sma = Sma::new();
            for v in &state.pending {
                sma.update(v);
            }
            let encoded = encode_block(col.data_type, &state.pending, self.compression)?;
            let offset = state.data.len() as u64;
            state.data.extend_from_slice(&encoded);
            state.sma.merge(&sma);
            state.blocks.push(BlockMeta {
                row_start,
                row_count: n as u32,
                sma,
                offset,
                len: encoded.len() as u64,
            });
            state.pending.clear();
        }
        Ok(())
    }

    /// Serializes the LogBlock into pack bytes.
    pub fn finish(mut self) -> Result<Vec<u8>> {
        self.cut_blocks()?;
        let mut pack = PackWriter::new();
        let mut column_metas = Vec::with_capacity(self.columns.len());
        let mut index_payloads = Vec::with_capacity(self.columns.len());
        for (state, col) in self.columns.into_iter().zip(&self.schema.columns) {
            let index_bytes = match state.index {
                IndexState::None => None,
                IndexState::Inverted(w) | IndexState::FullText(w) => Some(w.finish_split()),
                IndexState::Bkd(w) => Some(w.finish_split()),
            };
            column_metas.push(ColumnMeta {
                compression: self.compression,
                sma: state.sma,
                index: col.index,
                blocks: state.blocks,
            });
            index_payloads.push((index_bytes, state.data));
        }
        let meta =
            LogBlockMeta { schema: self.schema, row_count: self.row_count, columns: column_metas };
        pack.add(META_MEMBER, meta.serialize())?;
        for (i, (index_bytes, data)) in index_payloads.into_iter().enumerate() {
            if let Some((dict, blob)) = index_bytes {
                pack.add(index_member(i), dict)?;
                pack.add(index_data_member(i), blob)?;
            }
            pack.add(col_member(i), data)?;
        }
        Ok(pack.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackReader;

    fn sample_row(t: u64, ts: i64, ip: &str, latency: i64) -> Vec<Value> {
        vec![
            Value::U64(t),
            Value::I64(ts),
            Value::from(ip),
            Value::from("/api/v1"),
            Value::I64(latency),
            Value::Bool(latency > 200),
            Value::from(format!("request from {ip} took {latency}ms")),
        ]
    }

    #[test]
    fn builds_non_empty_pack() {
        let mut b =
            LogBlockBuilder::with_options(TableSchema::request_log(), Compression::LzHigh, 16);
        for i in 0..100 {
            b.add_row(&sample_row(1, 1000 + i, "10.0.0.1", i)).unwrap();
        }
        assert_eq!(b.row_count(), 100);
        let bytes = b.finish().unwrap();
        let pack = PackReader::open(bytes).unwrap();
        // meta + 7 columns + 5 indexes x 2 members each (latency is
        // unindexed by choice, bool columns carry no index).
        assert_eq!(pack.members().len(), 1 + 7 + 5 * 2);
        assert!(pack.entry("index.4").is_none(), "latency must be unindexed");
        assert!(pack.entry("index.5").is_none(), "bool fail column has no index");
        let meta = LogBlockMeta::deserialize(&pack.read_member(META_MEMBER).unwrap()).unwrap();
        assert_eq!(meta.row_count, 100);
        // 100 rows at 16 rows/block = 7 blocks per column.
        assert_eq!(meta.columns[0].blocks.len(), 7);
        assert_eq!(meta.columns[0].blocks[6].row_count, 4);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut b = LogBlockBuilder::new(TableSchema::request_log());
        assert!(b.add_row(&[Value::I64(1)]).is_err());
        let mut bad = sample_row(1, 1, "x", 1);
        bad[0] = Value::from("not-a-tenant");
        assert!(b.add_row(&bad).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn empty_builder_finishes() {
        let b = LogBlockBuilder::new(TableSchema::request_log());
        let bytes = b.finish().unwrap();
        let pack = PackReader::open(bytes).unwrap();
        let meta = LogBlockMeta::deserialize(&pack.read_member(META_MEMBER).unwrap()).unwrap();
        assert_eq!(meta.row_count, 0);
        assert!(meta.columns.iter().all(|c| c.blocks.is_empty()));
    }

    #[test]
    fn time_range_tracks_ts_column() {
        let mut b = LogBlockBuilder::new(TableSchema::request_log());
        for ts in [500i64, 100, 900] {
            b.add_row(&sample_row(1, ts, "ip", 1)).unwrap();
        }
        let bytes = b.finish().unwrap();
        let pack = PackReader::open(bytes).unwrap();
        let meta = LogBlockMeta::deserialize(&pack.read_member(META_MEMBER).unwrap()).unwrap();
        let r = meta.time_range().unwrap();
        assert_eq!(r.start.millis(), 100);
        assert_eq!(r.end.millis(), 900);
    }
}
